"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so the
PEP 517 editable-install path (which shells out to ``bdist_wheel``) is
unavailable; this ``setup.py`` enables the legacy ``pip install -e .
--no-use-pep517 --no-build-isolation`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
