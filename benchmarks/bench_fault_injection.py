"""F-faults — behaviour and cost of deterministic fault injection.

Two contracts ride on this sweep:

* **graceful degradation** — as injected node-crash and link-loss rates
  climb, a topology-transparent schedule loses throughput *smoothly*
  (section 6's robustness story: the schedule itself never has to be
  recomputed, dead neighbours simply stop being heard);
* **near-zero overhead when off** — the fault-tolerant runtime
  (:mod:`repro.service.runtime`) replaces the old ``pool.map`` fan-out,
  and a healthy batch must not pay meaningfully for the machinery
  (target < 5% on the inline path; asserted loosely here because CI
  boxes are noisy).
"""

import time

from repro.analysis.tables import Table
from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule
from repro.core.planner import (
    candidate_sources,
    duty_budget_fraction,
    duty_grid,
)
from repro.faults import FaultPlan
from repro.service.provision import task_from_point
from repro.service.runtime import RuntimeConfig, _evaluate, execute_tasks
from repro.simulation.engine import Simulator
from repro.simulation.topology import grid
from repro.simulation.traffic import SaturatedTraffic

#: (node_crash_rate, node_recover_rate, link_loss) — escalating adversity.
FAULT_LEVELS = [
    (0.0, 0.0, 0.0),
    (0.0, 0.0, 0.1),
    (0.005, 0.1, 0.1),
    (0.01, 0.1, 0.3),
    (0.02, 0.05, 0.5),
]


def _run_level(topo, sched, crash, recover, loss, frames=2):
    plan = FaultPlan(seed=9, node_crash_rate=crash, node_recover_rate=recover,
                     link_loss=loss)
    sim = Simulator(topo, sched, SaturatedTraffic(topo),
                    faults=plan if plan.simulation_active else None)
    start = time.perf_counter()
    metrics = sim.run(frames=frames)
    elapsed = time.perf_counter() - start
    return metrics, elapsed


def test_simulation_degrades_gracefully(benchmark, report):
    topo = grid(4, 4)
    sched = construct(polynomial_schedule(16, 4), 4, 3, 6)

    table = Table("crash", "recover", "loss", "successes", "link_losses",
                  "down_frac", "slots_per_sec",
                  title="Saturated grid(4,4) under escalating injected faults")
    rows = []
    for crash, recover, loss in FAULT_LEVELS:
        metrics, elapsed = _run_level(topo, sched, crash, recover, loss)
        successes = sum(metrics.successes.values())
        rows.append((crash, loss, successes))
        table.row(crash=crash, recover=recover, loss=loss,
                  successes=successes, link_losses=metrics.link_losses,
                  down_frac=round(metrics.node_down_fraction(topo.n), 4),
                  slots_per_sec=int(metrics.slots / elapsed))
    report(table, "fault_injection_simulation")

    # Time the heaviest level under pytest-benchmark for trend tracking.
    worst = FAULT_LEVELS[-1]
    benchmark.pedantic(lambda: _run_level(topo, sched, *worst),
                       rounds=3, iterations=1)

    # Graceful degradation: faults cost throughput monotonically-ish but
    # never zero it out below total loss, and the clean level is lossless.
    clean = rows[0][2]
    assert all(successes < clean for _, _, successes in rows[1:])
    assert all(successes > 0 for _, _, successes in rows)
    assert _run_level(topo, sched, 0, 0, 0)[0].link_losses == 0


def test_runtime_overhead_when_no_faults_fire(benchmark, report):
    n, d = 12, 2
    points = duty_grid(n, d, duty_budget_fraction(0.5),
                       candidate_sources(n, d))
    tasks = [task_from_point(p, n, d, False) for p in points]

    def old_path():
        # The pre-runtime fan-out: evaluate in submission order, no
        # statuses, no retries, no checkpoints (inline variant).
        return {t.key(): _evaluate(t) for t in tasks}

    def new_path():
        return execute_tasks(tasks, config=RuntimeConfig(jobs=1)).plans

    rounds = 5
    old_best = min(_timed(old_path) for _ in range(rounds))
    new_best = min(_timed(new_path) for _ in range(rounds))
    assert new_path() == old_path()  # identical results, richer semantics

    overhead = new_best / old_best - 1.0
    table = Table("path", "best_seconds", "overhead",
                  title=f"Healthy-batch runtime overhead ({len(tasks)} grid "
                        "evaluations, inline)")
    table.row(path="pool.map (old)", best_seconds=round(old_best, 4),
              overhead="-")
    table.row(path="runtime (new)", best_seconds=round(new_best, 4),
              overhead=f"{overhead:+.1%}")
    report(table, "fault_injection_runtime_overhead")

    benchmark.pedantic(new_path, rounds=3, iterations=1)
    # Target is < 5%; assert loosely so a noisy shared CI box cannot
    # flake the suite while still catching a genuine regression.
    assert overhead < 0.5


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
