"""E2 — Theorem 2: the closed form vs the literal Definition 2 sum.

The closed form must agree *exactly* (rational arithmetic) on every random
schedule; the benchmark also contrasts the two evaluation costs, which is
the closed form's practical payoff (O(L) vs O(n^2 C(n-2, D-1) L)).
"""

from repro.analysis.experiments import random_schedule, thm2_validation
from repro.core.throughput import average_throughput, average_throughput_bruteforce

import numpy as np


def test_thm2_agreement(benchmark, report):
    table = benchmark.pedantic(
        lambda: thm2_validation(trials=12, n=7, length=6, d=3),
        rounds=3, iterations=1)
    assert all(r["equal"] for r in table.rows)
    report(table, "thm2_closed_form")


def test_thm2_closed_form_speed(benchmark):
    sched = random_schedule(10, 12, np.random.default_rng(0))
    result = benchmark(lambda: average_throughput(sched, 4))
    assert result == average_throughput_bruteforce(sched, 4)


def test_thm2_bruteforce_speed(benchmark):
    sched = random_schedule(10, 12, np.random.default_rng(0))
    benchmark.pedantic(
        lambda: average_throughput_bruteforce(sched, 4), rounds=3, iterations=1)
