"""E-serve — the schedule server under loopback load: latency + coalescing.

A :class:`~repro.serve.server.BackgroundServer` is driven by a threaded
load generator through the real HTTP client — full wire round trips, not
in-process shortcuts.  Two workloads against a cold server each:

* **hot-key** — every client asks for the *same* ``(n, D, duty)`` class,
  the worst case an admission queue faces and the best case for
  single-flight coalescing.  Contract: the planner constructs exactly
  what one cold request costs — concurrent duplicates share the flight,
  sequential re-asks hit the plan cache.
* **uniform** — clients spread over six disjoint classes, the
  cache-friendly steady state.  Contract: total construction work equals
  one cold batch over the six classes — no class is ever re-evaluated.

The table reports p50/p99 latency per workload plus the coalescing hit
rate observed by the server's own metrics; the JSON summary headline is
the hot-key p99 in milliseconds, and a per-workload sidecar lands in
``benchmarks/results/serve_load.json``.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter

import repro.core.planner as planner_mod
from repro.analysis.tables import Table
from repro.obs import context as _context
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler, parse_collapsed, sample_profile
from repro.obs.tracing import Tracer, set_default_tracer, span
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer, FlightRecorder, ServeConfig
from repro.service.api import ProvisionRequest, provision_batch
from repro.service.store import ScheduleStore

HOT_DOC = {"n": 12, "d": 2, "max_duty": 0.5}
# Disjoint eval-key spaces: distinct (n, D, balanced) per class, so the
# construction count of a cold batch is an exact workload baseline.
UNIFORM_DOCS = [
    {"n": 9, "d": 3, "max_duty": 0.8},
    {"n": 10, "d": 2, "max_duty": 0.6},
    {"n": 12, "d": 2, "max_duty": 0.5},
    {"n": 12, "d": 2, "max_duty": 0.5, "balanced": True},
    {"n": 15, "d": 2, "max_duty": 0.4},
    {"n": 16, "d": 3, "max_duty": 0.5},
]
THREADS = 8
REQUESTS_PER_THREAD = 6


class _ConstructionCounter:
    """Count real substrate constructions, thread-safely."""

    def __init__(self):
        self.count = 0
        self._lock = threading.Lock()
        self._real = None

    def __enter__(self):
        self._real = planner_mod.construct_detailed

        def counting(*args, **kwargs):
            with self._lock:
                self.count += 1
            return self._real(*args, **kwargs)

        planner_mod.construct_detailed = counting
        return self

    def __exit__(self, *exc_info):
        planner_mod.construct_detailed = self._real


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _baseline_constructions(tmp_path, docs):
    """Construction cost of one cold batch over *docs*."""
    requests = [ProvisionRequest.from_dict(doc) for doc in docs]
    with _ConstructionCounter() as counter:
        results = provision_batch(
            requests, store=ScheduleStore(tmp_path / "baseline"), jobs=1)
    assert all(r.error is None for r in results)
    return counter.count


def _drive(client, docs):
    """One load-generator thread: request each doc, record latencies."""
    latencies = []
    for doc in docs:
        start = perf_counter()
        results = client.provision([doc], include_schedules=False)
        latencies.append(perf_counter() - start)
        assert "error" not in results[0]
    return latencies


def _run_workload(tmp_path, name, per_thread_docs):
    """Spin up a cold server, push the workload, return the stats row."""
    registry = MetricsRegistry()
    store = ScheduleStore(tmp_path / f"cache-{name}", registry=registry)
    config = ServeConfig(port=0, jobs=4, max_inflight=THREADS * 2)
    wall_start = perf_counter()
    with _ConstructionCounter() as counter, \
            BackgroundServer(config, store=store,
                             registry=registry) as bs:
        client = ServeClient(bs.host, bs.port, retries=3, backoff_base=0.01)
        with ThreadPoolExecutor(THREADS) as pool:
            futures = [pool.submit(_drive, client, docs)
                       for docs in per_thread_docs]
            latencies = sorted(lat for f in futures for lat in f.result())
    wall = perf_counter() - wall_start
    coalesce = registry.get("repro_serve_coalesce_total")
    led = coalesce.value(result="led") if coalesce is not None else 0
    joined = coalesce.value(result="joined") if coalesce is not None else 0
    return {
        "workload": name,
        "requests": len(latencies),
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
        "constructions": counter.count,
        "flights": int(led),
        "coalesce_joined": int(joined),
        "coalesce_hit_rate": joined / (led + joined) if led + joined else 0.0,
        "wall_s": wall,
    }


def test_serve_loopback_load(report, headline, tmp_path):
    hot_cost = _baseline_constructions(tmp_path / "hot", [HOT_DOC])
    uniform_cost = _baseline_constructions(tmp_path / "uni", UNIFORM_DOCS)

    hot = _run_workload(
        tmp_path, "hot-key",
        [[HOT_DOC] * REQUESTS_PER_THREAD for _ in range(THREADS)])
    uniform = _run_workload(
        tmp_path, "uniform",
        [[UNIFORM_DOCS[(t + k) % len(UNIFORM_DOCS)]
          for k in range(REQUESTS_PER_THREAD)] for t in range(THREADS)])

    # Hot-key contract: 48 requests cost exactly one cold evaluation —
    # concurrent duplicates coalesced, sequential re-asks cache-hit.
    assert hot["constructions"] == hot_cost
    assert hot["coalesce_joined"] > 0
    # Uniform contract: six classes cost exactly one cold batch.
    assert uniform["constructions"] == uniform_cost

    table = Table("workload", "requests", "p50_ms", "p99_ms",
                  "constructions", "flights", "coalesce_joined",
                  "coalesce_hit_rate", "wall_s",
                  title=f"Loopback serve load ({THREADS} threads x "
                        f"{REQUESTS_PER_THREAD} requests, jobs=4; cold "
                        f"costs: hot={hot_cost}, uniform={uniform_cost})")
    for row in (hot, uniform):
        table.row(**{k: (round(v, 3) if isinstance(v, float) else v)
                     for k, v in row.items()})
    report(table, "serve_load")
    headline("hot_key_p99_ms", hot["p99_ms"])

    # The machine-readable per-workload summary (alongside the module's
    # repro-bench-summary sidecar, which carries only the headline).
    summary = {
        "benchmark": "bench_serve",
        "format": "repro-serve-load",
        "version": 1,
        "baselines": {"hot-key": hot_cost, "uniform": uniform_cost},
        "workloads": [hot, uniform],
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "serve_load.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n")


def _trace_machinery_once(flights, hist_series):
    """Exactly the correlation work one warm request adds to the serve
    path: a trace scope, the request/plan/lead spans, a flight record
    with its hop timeline, and one exemplar-bearing observation."""
    with _context.trace_context("ab" * 8, "cd" * 8):
        flight = flights.begin("/plan")
        flight.trace_id = "ab" * 8
        flight.hop("admit", inflight=1)
        with span("serve.request", endpoint="/plan"):
            flight.hop("coalesce", outcome="led", leader_trace_id=None)
            flight.hop("pool.submit")
            with span("serve.plan", n=12, d=2):
                with span("serve.coalesce.lead"):
                    pass
            flight.hop("pool.done", seconds=0.0)
        flights.finish(flight, 200)
    hist_series.observe(0.001, trace_id="ab" * 8)


def test_tracing_overhead_within_budget(report, headline, tmp_path):
    """The correlation machinery must cost < 5% of a warm request."""
    registry = MetricsRegistry()
    store = ScheduleStore(tmp_path / "cache-overhead", registry=registry)
    with BackgroundServer(ServeConfig(port=0, jobs=2), store=store,
                          registry=registry) as bs:
        client = ServeClient(bs.host, bs.port, retries=1)
        client.provision([HOT_DOC], include_schedules=False)  # cold fill
        latencies = []
        for _ in range(40):
            start = perf_counter()
            client.provision([HOT_DOC], include_schedules=False)
            latencies.append(perf_counter() - start)
    warm_p50 = _quantile(sorted(latencies), 0.50)

    # Micro-measure the added work directly (an A/B run over loopback
    # HTTP would drown a few microseconds in scheduler noise).
    tracer = Tracer()
    old = set_default_tracer(tracer)
    try:
        flights = FlightRecorder(128)
        series = MetricsRegistry().histogram(
            "h_seconds", "overhead probe",
            exemplars=True).labels(endpoint="/plan")
        iterations = 2000
        start = perf_counter()
        for _ in range(iterations):
            _trace_machinery_once(flights, series)
        per_request = (perf_counter() - start) / iterations
    finally:
        set_default_tracer(old)

    overhead = per_request / warm_p50
    assert overhead <= 0.05, (
        f"tracing machinery costs {per_request * 1e6:.1f}us/request = "
        f"{overhead:.1%} of the warm p50 ({warm_p50 * 1e3:.2f}ms); "
        f"budget is 5%")

    table = Table("warm_p50_ms", "trace_cost_us", "overhead_pct",
                  title="Correlation-machinery overhead on the warm "
                        "provision path")
    table.row(warm_p50_ms=round(warm_p50 * 1e3, 3),
              trace_cost_us=round(per_request * 1e6, 2),
              overhead_pct=round(overhead * 100, 3))
    report(table, "serve_trace_overhead")
    headline("tracing_overhead_pct", overhead * 100)


def test_sampling_profiler_overhead(report, headline, tmp_path):
    """The 100 hz sampler must cost < 5% of the warm provision path.

    The sampler charges the program one frame walk per pass, so its
    steady-state overhead is ``hz * per_pass_cost`` seconds of GIL time
    per wall second.  The pass cost is micro-measured directly (an A/B
    p50 comparison over loopback HTTP would drown ~10us of sampling in
    scheduler noise), then a profiled warm run checks end-to-end that
    the profile sees the serve stack at all.
    """
    registry = MetricsRegistry()
    store = ScheduleStore(tmp_path / "cache-prof", registry=registry)
    with BackgroundServer(ServeConfig(port=0, jobs=2), store=store,
                          registry=registry) as bs:
        client = ServeClient(bs.host, bs.port, retries=1)
        client.provision([HOT_DOC], include_schedules=False)  # cold fill
        latencies = []
        for _ in range(40):
            start = perf_counter()
            client.provision([HOT_DOC], include_schedules=False)
            latencies.append(perf_counter() - start)

        # Pass cost with the serve tier's real thread population (event
        # loop + worker pool + client threads) still alive.
        profiler = SamplingProfiler(hz=100)
        passes = 200
        start = perf_counter()
        for _ in range(passes):
            profiler.sample_once()
        per_pass = (perf_counter() - start) / passes

        # End-to-end: the warm path profiled live still yields stacks.
        with sample_profile(hz=100) as live:
            for _ in range(10):
                client.provision([HOT_DOC], include_schedules=False)
        live_profile = live.stop()
    warm_p50 = _quantile(sorted(latencies), 0.50)

    # hz walks per second, each stealing per_pass seconds of GIL time:
    # the fraction of a warm request the sampler can possibly eat.
    overhead = 100 * per_pass
    assert overhead <= 0.05, (
        f"sampling at 100 hz costs {per_pass * 1e6:.1f}us/pass = "
        f"{overhead:.1%} of wall time; budget is 5%")
    assert live_profile.samples > 0
    assert parse_collapsed(live_profile.collapsed())

    table = Table("warm_p50_ms", "pass_cost_us", "overhead_pct",
                  "live_samples",
                  title="Sampling-profiler overhead at 100 hz on the warm "
                        "provision path")
    table.row(warm_p50_ms=round(warm_p50 * 1e3, 3),
              pass_cost_us=round(per_pass * 1e6, 2),
              overhead_pct=round(overhead * 100, 3),
              live_samples=live_profile.samples)
    report(table, "serve_profiler_overhead")
    headline("profiler_overhead_pct", overhead * 100)
