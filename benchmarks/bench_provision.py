"""E-service — the provisioning service: warm-cache batches and jobs parity.

The deployment story is "compute `<T, R>` once, flash it to motes"; the
service layer makes that literal for repeated workloads.  This sweep
provisions a mixed batch of ``(n, D, duty)`` requests through
:func:`repro.service.api.provision_batch` twice against one schedule
store and asserts the service's two contracts:

* a **warm batch performs zero constructions** — every plan is a
  content-addressed cache hit (counted by intercepting the planner's
  ``construct_detailed``), which is what turns the planner's hot path
  into a lookup;
* the **process-pool path is bit-identical to the sequential path** —
  merging is deterministic in grid order, so ``--jobs`` is a pure
  speed knob.
"""

from repro.analysis.tables import Table
from repro.service.api import ProvisionRequest, provision_batch
from repro.service.store import ScheduleStore

REQUESTS = [
    ProvisionRequest(12, 2, 0.5),
    ProvisionRequest(15, 2, 0.4),
    ProvisionRequest(15, 2, 0.6),
    ProvisionRequest(16, 3, 0.5),
    ProvisionRequest(12, 2, 0.5, balanced=True),
]


def test_provision_batch_warm(benchmark, report, tmp_path, monkeypatch):
    store = ScheduleStore(tmp_path / "cache")
    cold = provision_batch(REQUESTS, store=store, jobs=1)

    import repro.core.planner as planner_mod
    calls = []
    real = planner_mod.construct_detailed
    monkeypatch.setattr(planner_mod, "construct_detailed",
                        lambda *a, **kw: calls.append(a) or real(*a, **kw))

    warm = benchmark.pedantic(
        lambda: provision_batch(REQUESTS,
                                store=ScheduleStore(store.cache_dir), jobs=1),
        rounds=3, iterations=1)
    # The service contract: a warm batch is pure lookups.
    assert calls == []
    assert all(r.from_cache for r in warm)
    assert [r.plan for r in warm] == [r.plan for r in cold]

    table = Table("n", "D", "max_duty", "balanced", "family", "alpha_t",
                  "alpha_r", "L", "duty", "throughput",
                  title="Provisioned batch (warm run: zero constructions, "
                        f"{len(store)} store entries)")
    for res in warm:
        req, plan = res.request, res.plan
        table.row(n=req.n, D=req.d, max_duty=str(req.max_duty),
                  balanced=req.balanced, family=plan.family,
                  alpha_t=plan.alpha_t, alpha_r=plan.alpha_r,
                  L=plan.frame_length, duty=float(plan.duty_cycle),
                  throughput=float(plan.throughput))
    report(table, "provision_batch")


def test_provision_jobs_parity(benchmark):
    sequential = provision_batch(REQUESTS, jobs=1)
    parallel = benchmark.pedantic(
        lambda: provision_batch(REQUESTS, jobs=4), rounds=1, iterations=1)
    assert [r.plan for r in parallel] == [r.plan for r in sequential]
