"""E8 — model validation: the simulator reproduces the analysis exactly.

Saturated worst-case traffic on a random D-regular topology: every directed
link's simulated successes per frame must equal the analytic |T(x, y, S)|,
for both the non-sleeping source and the constructed duty-cycled schedule.
"""

from repro.analysis.experiments import sim_validation


def test_sim_validation(benchmark, report):
    table = benchmark.pedantic(
        lambda: sim_validation(n=26, d=3, alpha_t=4, alpha_r=8, frames=3),
        rounds=3, iterations=1)
    assert all(r["exact_match"] for r in table.rows)
    duty = next(r for r in table.rows if r["schedule"] == "constructed")
    full = next(r for r in table.rows if r["schedule"] == "non-sleeping")
    assert duty["awake_fraction"] < full["awake_fraction"] == 1.0
    report(table, "sim_validation")
