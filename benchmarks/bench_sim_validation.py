"""E8 — model validation: the simulator reproduces the analysis exactly.

Saturated worst-case traffic on a random D-regular topology: every directed
link's simulated successes per frame must equal the analytic |T(x, y, S)|,
for both the non-sleeping source and the constructed duty-cycled schedule.

The second half micro-benches the saturated-mode hot path: the vectorized
kernel must beat the scalar slot loop by at least 3x on an n=100 frame
sweep, and an uninstrumented run must leave the observability layer
completely untouched (no counters, no gauges, no spans).
"""

from time import perf_counter

from repro.analysis import Table
from repro.analysis.experiments import sim_validation
from repro.core.nonsleeping import tdma_schedule
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.obs.tracing import Tracer, set_default_tracer
from repro.simulation.engine import Simulator
from repro.simulation.topology import worst_case_regular
from repro.simulation.traffic import SaturatedTraffic

MIN_KERNEL_SPEEDUP = 3.0


def test_sim_validation(benchmark, report):
    table = benchmark.pedantic(
        lambda: sim_validation(n=26, d=3, alpha_t=4, alpha_r=8, frames=3),
        rounds=3, iterations=1)
    assert all(r["exact_match"] for r in table.rows)
    duty = next(r for r in table.rows if r["schedule"] == "constructed")
    full = next(r for r in table.rows if r["schedule"] == "non-sleeping")
    assert duty["awake_fraction"] < full["awake_fraction"] == 1.0
    report(table, "sim_validation")


def test_vectorized_kernel_speedup(report, headline):
    n, d, frames = 100, 4, 5
    topo = worst_case_regular(n, d, seed=7)
    sched = tdma_schedule(n)

    # Swap in fresh observability defaults so the cleanliness assertion
    # below cannot be polluted by earlier benchmarks in the process.
    registry, tracer = MetricsRegistry(), Tracer()
    old_registry = set_default_registry(registry)
    old_tracer = set_default_tracer(tracer)
    try:
        scalar = Simulator(topo, sched, SaturatedTraffic(topo),
                           instrument=False, vectorize=False)
        started = perf_counter()
        ms = scalar.run(frames)
        scalar_s = perf_counter() - started

        fast = Simulator(topo, sched, SaturatedTraffic(topo),
                         instrument=False)
        assert fast._vector_eligible
        started = perf_counter()
        mf = fast.run(frames)
        kernel_s = perf_counter() - started

        # The uninstrumented fast path never touches the default
        # registry or tracer — sweeps pay zero observability tax.
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert tracer.spans == []
    finally:
        set_default_registry(old_registry)
        set_default_tracer(old_tracer)

    assert dict(ms.successes) == dict(mf.successes)
    assert ms.slots == mf.slots == frames * sched.frame_length
    speedup = scalar_s / kernel_s
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"vectorized kernel only {speedup:.1f}x faster than the scalar "
        f"loop ({kernel_s:.4f}s vs {scalar_s:.4f}s); "
        f"need {MIN_KERNEL_SPEEDUP}x")
    headline("kernel_speedup_x", speedup)

    table = Table("engine", "slots", "seconds", "speedup",
                  title=f"Saturated-mode kernel, n={n} D={d} "
                        f"frames={frames}")
    table.row(engine="scalar", slots=ms.slots,
              seconds=round(scalar_s, 4), speedup=1.0)
    table.row(engine="vectorized", slots=mf.slots,
              seconds=round(kernel_s, 4), speedup=round(speedup, 2))
    report(table, "sim_kernel")
