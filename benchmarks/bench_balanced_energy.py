"""E10 — the section 7 balanced-energy variant.

Regenerates the plain-vs-balanced comparison: the balanced divisions must
equalize every node's transmit share exactly and must not reduce the Jain
fairness of simulated energy drain; the price is a longer frame.
"""

from repro.analysis.experiments import balanced_energy_study


def test_balanced_energy(benchmark, report):
    table = benchmark.pedantic(
        lambda: balanced_energy_study(n=25, d=4, alpha_t=3, alpha_r=10,
                                      frames=2),
        rounds=2, iterations=1)
    rows = {r["variant"]: r for r in table.rows}
    assert rows["balanced"]["tx_share_equal"]
    assert not rows["plain"]["tx_share_equal"]
    assert rows["balanced"]["jain_energy"] >= rows["plain"]["jain_energy"]
    assert rows["balanced"]["frame"] >= rows["plain"]["frame"]
    report(table, "balanced_energy")
