"""Benchmark-harness plumbing.

Every benchmark regenerates one paper artefact (see DESIGN.md's experiment
index): it times the regeneration with pytest-benchmark, asserts the
artefact's claim, prints the regenerated table, and persists it as CSV
under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Print a result table to the real stdout and persist it as CSV."""

    def _report(table, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        table.to_csv(RESULTS_DIR / f"{name}.csv")
        sys.stdout.write("\n" + table.render() + "\n")

    return _report
