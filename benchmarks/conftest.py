"""Benchmark-harness plumbing.

Every benchmark regenerates one paper artefact (see DESIGN.md's experiment
index): it times the regeneration with pytest-benchmark, asserts the
artefact's claim, prints the regenerated table, and persists it as CSV
under ``benchmarks/results/``.

Alongside the CSV artefacts, an autouse fixture writes one
machine-readable JSON summary per benchmark module to
``benchmarks/results/<module>.json``::

    {
      "benchmark": "bench_provision",
      "format": "repro-bench-summary",
      "version": 1,
      "results": [
        {"name": "test_provision_batch_warm",
         "key": "test_provision_batch_warm", "params": {},
         "wall_clock_s": 1.23,
         "headline": {"metric": "warm_batch_mean_s", "value": 0.004}},
        ...
      ]
    }

``key`` is the row's stable identity (test name plus sorted params) —
what ``repro obs bench-diff`` matches baseline and current rows on.

``wall_clock_s`` is the whole test's ``perf_counter`` duration.  The
``headline`` metric defaults to pytest-benchmark's mean round time when
the test used the ``benchmark`` fixture; a test can override it through
the :func:`headline` fixture (``headline("plans_per_s", 123.4)``).  The
file is rewritten after every test in the module, so an aborted run
still leaves a valid partial summary.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path
from time import perf_counter

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Per-module accumulated result rows, flushed to JSON after every test.
_SUMMARIES: dict[str, list[dict]] = defaultdict(list)


@pytest.fixture
def report():
    """Print a result table to the real stdout and persist it as CSV."""

    def _report(table, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        table.to_csv(RESULTS_DIR / f"{name}.csv")
        sys.stdout.write("\n" + table.render() + "\n")

    return _report


@pytest.fixture
def headline():
    """Let a benchmark name its headline metric for the JSON summary.

    Usage::

        def test_scale(benchmark, headline):
            ...
            headline("constructions_per_s", rate)

    The last call wins; without any call the summary falls back to
    pytest-benchmark's mean round time (when available).
    """
    slot: dict = {}

    def _headline(metric: str, value: float) -> None:
        slot["metric"] = metric
        slot["value"] = float(value)

    _headline.slot = slot
    return _headline


def _benchmark_headline(fixture) -> dict | None:
    """pytest-benchmark's mean round time, when the fixture was used."""
    try:
        return {"metric": "benchmark_mean_s",
                "value": float(fixture.stats.stats.mean)}
    except Exception:  # noqa: BLE001 - stats shape varies across versions
        return None


def _flush_summary(module: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "benchmark": module,
        "format": "repro-bench-summary",
        "version": 1,
        "results": _SUMMARIES[module],
    }
    (RESULTS_DIR / f"{module}.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture(autouse=True)
def _json_summary(request, headline):
    """Time every benchmark test and append it to the module's JSON summary."""
    # Grab the benchmark fixture object now: by our teardown it is
    # already finalized and unavailable, but its stats survive on it.
    bench = (request.getfixturevalue("benchmark")
             if "benchmark" in request.fixturenames else None)
    started = perf_counter()
    yield
    wall = perf_counter() - started
    params = {}
    callspec = getattr(request.node, "callspec", None)
    if callspec is not None:
        params = {k: v if isinstance(v, (int, float, str, bool)) else repr(v)
                  for k, v in callspec.params.items()}
    name = request.node.originalname or request.node.name
    # Stable row identity for the bench-history gate (repro.obs.bench):
    # the same test+params must produce the same key on every run.
    key = name if not params else \
        f"{name}[{','.join(f'{k}={params[k]}' for k in sorted(params))}]"
    row = {
        "name": name,
        "key": key,
        "params": params,
        "wall_clock_s": round(wall, 6),
        "headline": (dict(headline.slot) if headline.slot
                     else _benchmark_headline(bench)),
    }
    module = request.node.module.__name__.rsplit(".", 1)[-1]
    _SUMMARIES[module].append(row)
    _flush_summary(module)
