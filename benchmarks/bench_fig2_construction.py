"""E5 — Figure 2 + Theorems 6-7: the construction on every substrate family.

Regenerates the per-family construction table (frame lengths vs Theorem 7's
exact formula and bound, transparency of source and output) and separately
times the construction kernel alone at growing n.
"""

import pytest

from repro.analysis.experiments import fig2_construction
from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule


def test_fig2_families(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig2_construction(n=15, d=2, alpha_t=3, alpha_r=5),
        rounds=3, iterations=1)
    for r in table.rows:
        assert r["alpha_caps_ok"]
        assert r["source_tt"] is True
        assert r["constructed_tt"] is True
        assert r["L_constructed"] == r["formula_exact"] <= r["formula_bound"]
    report(table, "fig2_construction")


@pytest.mark.parametrize("n", [25, 64, 125, 343])
def test_construction_kernel_scaling(benchmark, n):
    """The Figure 2 algorithm itself (no verification) vs n."""
    d = 3
    source = polynomial_schedule(n, d)
    built = benchmark(lambda: construct(source, d, 4, max(8, n // 4)))
    assert built.is_alpha_schedule(4, max(8, n // 4))
