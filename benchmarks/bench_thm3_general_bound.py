"""E3 — Theorem 3: the general average-throughput upper bound over (n, D).

Regenerates the bound table (optimizer alpha_T*, tight bound Thr*, loose
closed-form bound) and asserts the two structural claims: alpha_T*
maximizes g, and the loose bound dominates the tight one.
"""

from repro.analysis.experiments import thm3_sweep


def test_thm3_sweep(benchmark, report):
    table = benchmark(
        lambda: thm3_sweep(ns=(10, 16, 25, 40, 64, 100), ds=(2, 3, 4, 6)))
    assert all(r["maximizer_verified"] for r in table.rows)
    assert all(r["loose_dominates"] for r in table.rows)
    report(table, "thm3_general_bound")
