"""E1 — Figure 1: sleeping without losing throughput on a fixed topology.

Regenerates the reconstructed Figure 1 example (6-ring under TDMA with
neighbour-only listening) and asserts its claim: identical per-link
guaranteed successes at half the awake time.
"""

from repro.analysis.experiments import fig1_example


def test_fig1_example(benchmark, report):
    table, info = benchmark(fig1_example)
    assert info["all_links_equal"]
    assert info["duty_cycle_duty"] == 0.5
    assert info["duty_cycle_non_sleeping"] == 1.0
    report(table, "fig1_example")
