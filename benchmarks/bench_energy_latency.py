"""E9 — the introduction's motivation, measured.

Light Poisson traffic on a grid: always-on TDMA vs naive 1-of-k duty
cycling vs slotted p-persistent ALOHA vs the paper's constructed schedule.
Asserts the motivating ordering — naive duty cycling collapses from
collision concentration, the unscheduled ALOHA delivers but never sleeps,
and the topology-transparent construction keeps delivery at a fraction of
the energy of either always-on scheme.
"""

from repro.analysis.experiments import energy_latency_study


def test_energy_latency(benchmark, report):
    table = benchmark.pedantic(
        lambda: energy_latency_study(rows=5, cols=5, rate=0.01, frames=40),
        rounds=2, iterations=1)
    rows = {r["scheme"]: r for r in table.rows}
    tdma, naive, tt, aloha = (rows["always-on TDMA"], rows["naive 1-of-k"],
                              rows["constructed TT"], rows["slotted ALOHA"])
    assert tdma["collisions"] == 0
    assert naive["collisions"] > 10 * tt["collisions"]
    assert naive["delivery_ratio"] < 0.7 < tt["delivery_ratio"]
    assert tt["awake_fraction"] < 0.5 < tdma["awake_fraction"]
    assert tt["mj_per_delivered"] < tdma["mj_per_delivered"]
    # ALOHA delivers fine at light load but never sleeps: worst energy.
    assert aloha["delivery_ratio"] > 0.9
    assert aloha["awake_fraction"] == 1.0
    assert aloha["mj_per_delivered"] > 3 * tt["mj_per_delivered"]
    report(table, "energy_latency")
