"""E12 — substrate comparison and checker ablation.

Part 1 regenerates the frame-length table of every source family over
(n, D).  Part 2 is the DESIGN.md ablation: the cost of the exact
topology-transparency decision (bitmask branch-and-bound) vs the
definitional subset enumeration, and vs the sampled refuter.
"""

import numpy as np
import pytest

from repro.analysis.experiments import substrate_scale
from repro.core.nonsleeping import polynomial_schedule
from repro.core.transparency import (
    is_topology_transparent,
    satisfies_requirement3,
)


def test_substrate_scale(benchmark, report):
    table = benchmark(
        lambda: substrate_scale(ns=(10, 25, 50, 100), ds=(2, 3, 5)))
    for r in table.rows:
        lengths = {k: r[f"{k}_L"] for k in ("tdma", "polynomial", "projective")}
        if r["steiner_L"] != "-":
            lengths["steiner"] = r["steiner_L"]
        assert r[f"{r['best']}_L"] == min(lengths.values())
    report(table, "substrate_scale")


@pytest.mark.parametrize("n", [9, 16, 25])
def test_exact_checker_scaling(benchmark, n):
    sched = polynomial_schedule(n, 2)
    assert benchmark(lambda: is_topology_transparent(sched, 2))


def test_definitional_checker_cost(benchmark):
    """The ablation baseline: Requirement 3 by subset enumeration."""
    sched = polynomial_schedule(9, 2)
    assert benchmark.pedantic(lambda: satisfies_requirement3(sched, 2),
                              rounds=3, iterations=1)


def test_sampled_checker_cost(benchmark):
    sched = polynomial_schedule(25, 2)
    rng = np.random.default_rng(0)
    assert benchmark(
        lambda: is_topology_transparent(sched, 2, method="sampled",
                                        samples=500, rng=rng))
