"""E4 — Theorem 4: the (alpha_T, alpha_R) upper bound across energy budgets.

Regenerates the bound surface over the two energy knobs and asserts its
shape: linear growth in alpha_R, saturation in alpha_T at ~ (n - D)/D.
"""

from fractions import Fraction

from repro.analysis.experiments import thm4_sweep


def test_thm4_sweep(benchmark, report):
    table = benchmark(
        lambda: thm4_sweep(n=30, d=3, alpha_ts=(1, 2, 4, 6, 9, 12),
                           alpha_rs=(2, 4, 8, 12, 18)))
    rows = table.rows
    # Linear in alpha_R at fixed alpha_T.
    by_at = {}
    for r in rows:
        by_at.setdefault(r["alpha_t"], []).append(r)
    for at, group in by_at.items():
        base = group[0]
        for r in group[1:]:
            assert Fraction(r["bound"], base["bound"]) == \
                Fraction(r["alpha_r"], base["alpha_r"])
    # Saturation: alpha_T = 9 and alpha_T = 12 rows coincide (alpha = 9).
    nine = {r["alpha_r"]: r["bound"] for r in rows if r["alpha_t"] == 9}
    twelve = {r["alpha_r"]: r["bound"] for r in rows if r["alpha_t"] == 12}
    assert nine == twelve
    report(table, "thm4_duty_bound")
