"""E16 — general (alpha_T, alpha_R) analysis vs the equal-split baseline.

The paper's stated difference from Dukes/Colbourn/Syrotiuk (FAWN'06) is
generality: that work focuses on schedules with equal per-slot transmitter
and receiver counts.  At a fixed awake budget the sweep shows what the
generality buys: the throughput-optimal split is asymmetric (receivers
heavy) once the budget exceeds ``2(n-D)/D``, and the equal split pays a
measurable throughput penalty.
"""

from repro.analysis.experiments import split_ratio_study


def test_split_ratio(benchmark, report):
    table = benchmark.pedantic(
        lambda: split_ratio_study(n=30, d=3, budget=12),
        rounds=2, iterations=1)
    rows = table.rows
    equal = next(r for r in rows if r["equal_split"])
    best = next(r for r in rows if r["best_split"])
    # The paper's generality pays: the best split is NOT the equal one,
    # and it is receiver-heavy.
    assert not equal["best_split"]
    assert best["alpha_r"] > best["alpha_t"]
    assert best["constructed_throughput"] > equal["constructed_throughput"]
    report(table, "split_ratio")
