"""E9 companion — topology churn: transparency vs colouring TDMA.

Regenerates the dynamic-topology study: after in-class rewiring, the
topology-transparent schedule keeps delivering while the topology-dependent
colouring starts colliding.
"""

from repro.analysis.experiments import dynamic_topology_study


def test_dynamic_topology(benchmark, report):
    table = benchmark.pedantic(lambda: dynamic_topology_study(slots=8000),
                               rounds=2, iterations=1)
    rows = {(r["scheme"], r["phase"]): r for r in table.rows}
    assert rows[("constructed TT", "after")]["delivery_ratio"] > 0.95
    assert rows[("d2-colouring", "before")]["collisions"] == 0
    assert rows[("d2-colouring", "after")]["collisions"] > 0
    report(table, "dynamic_topology")
