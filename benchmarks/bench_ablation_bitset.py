"""Ablations of DESIGN.md's called-out design choices.

1. **Slot-set representation**: Python-int bitmasks vs NumPy boolean rows
   for the exact transparency decision (same algorithm, different set
   algebra).  The production code uses bitmasks; this quantifies why.
2. **Division strategy** in Figure 2: contiguous vs balanced chunking —
   construction cost and frame-length overhead.
3. **Source family**: polynomial vs MOLS/transversal-design frame lengths
   at orders where the prime-power constraint binds.
"""

import pytest

from repro.core.construction import construct
from repro.core.matrixcheck import matrix_is_topology_transparent
from repro.core.nonsleeping import mols_schedule, polynomial_schedule
from repro.core.transparency import is_topology_transparent


@pytest.mark.parametrize("n", [9, 16, 25])
def test_bitmask_checker(benchmark, n):
    sched = polynomial_schedule(n, 2)
    assert benchmark(lambda: is_topology_transparent(sched, 2))


@pytest.mark.parametrize("n", [9, 16, 25])
def test_matrix_checker(benchmark, n):
    sched = polynomial_schedule(n, 2)
    assert benchmark.pedantic(
        lambda: matrix_is_topology_transparent(sched, 2),
        rounds=3, iterations=1)


@pytest.mark.parametrize("balanced", [False, True],
                         ids=["contiguous", "balanced"])
def test_division_strategy_cost(benchmark, balanced):
    source = polynomial_schedule(49, 3)
    built = benchmark(lambda: construct(source, 3, 3, 10, balanced=balanced))
    assert built.is_alpha_schedule(3, 10)


def test_division_strategy_frame_overhead(benchmark, report):
    """Not a timing: records the frame-length price of exact balance."""
    from repro.analysis.tables import Table

    def build():
        table = Table("n", "D", "alpha_t", "alpha_r", "L_contiguous",
                      "L_balanced", "overhead",
                      title="Balanced-division frame-length overhead")
        for n, d, at, ar in [(25, 3, 4, 10), (25, 4, 3, 10), (49, 3, 3, 10)]:
            source = polynomial_schedule(n, d)
            plain = construct(source, d, at, ar, balanced=False).frame_length
            bal = construct(source, d, at, ar, balanced=True).frame_length
            table.row(n=n, D=d, alpha_t=at, alpha_r=ar, L_contiguous=plain,
                      L_balanced=bal, overhead=bal / plain)
            assert bal >= plain
        return table

    report(benchmark.pedantic(build, rounds=2, iterations=1),
           "ablation_division")


def test_family_frame_lengths(benchmark, report):
    """MOLS fills the non-prime-power gaps the polynomial family cannot."""
    from repro.analysis.tables import Table

    def build():
        table = Table("n", "D", "polynomial_L", "mols_L", "mols_wins",
                      title="Polynomial vs transversal-design frame lengths")
        for n, d in [(36, 2), (100, 2), (81, 2), (100, 3), (144, 2)]:
            poly = polynomial_schedule(n, d).frame_length
            td = mols_schedule(n, d).frame_length
            table.row(n=n, D=d, polynomial_L=poly, mols_L=td,
                      mols_wins=td < poly)
        return table

    report(benchmark.pedantic(build, rounds=2, iterations=1),
           "ablation_families")
