"""E14/E15 — the two assumptions the paper's guarantee rests on, probed.

* **Drift** (E14): the paper assumes slot synchrony (section 1).  With
  zero offset the simulator must reproduce the analytic guarantee exactly;
  bounded clock offsets then erode it — the decay the table records is the
  synchronization quality a real deployment must buy.
* **Mobility** (E15): the reason for topology transparency.  One schedule
  serves every snapshot of a random-waypoint field; every epoch must have
  every directed link served within a frame.
"""

from repro.analysis.experiments import drift_robustness_study, mobility_study


def test_drift_robustness(benchmark, report):
    table = benchmark.pedantic(lambda: drift_robustness_study(frames=3),
                               rounds=2, iterations=1)
    rows = {r["max_offset"]: r for r in table.rows}
    assert rows[0]["survival"] == 1.0          # perfect sync == the theory
    assert rows[0]["successes"] == rows[0]["expected_synchronous"]
    assert all(rows[o]["survival"] < 1.0 for o in rows if o != 0)
    report(table, "drift_robustness")


def test_mobility_transparency(benchmark, report):
    table = benchmark.pedantic(lambda: mobility_study(epochs=5),
                               rounds=2, iterations=1)
    assert all(r["all_links_guaranteed"] for r in table.rows)
    report(table, "mobility_transparency")
