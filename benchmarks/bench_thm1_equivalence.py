"""E11 — Theorem 1: Requirement 2 <=> Requirement 3.

Times both definitional checkers over a batch of random schedules and
asserts their verdicts coincide on every one.
"""

from repro.analysis.experiments import thm1_equivalence


def test_thm1_equivalence(benchmark, report):
    table = benchmark.pedantic(
        lambda: thm1_equivalence(trials=30, n=6, length=8, d=2),
        rounds=3, iterations=1)
    assert all(r["agree"] for r in table.rows)
    report(table, "thm1_equivalence")
