"""E-chaos — the serve tier under injected faults: overhead + recovery.

Three phases against real sockets, all seeded and reproducible:

* **proxy overhead** — the same warm-cache workload measured directly
  against a :class:`~repro.serve.server.BackgroundServer` and again
  through a *clean* (0% fault) :class:`~repro.serve.chaos.ChaosProxy`.
  Contract: the extra loopback hop costs less than 20% at the median.
* **fault mix** — a seeded ~5% fault cocktail (refuse/reset/truncate/
  delay) between a :class:`~repro.serve.failover.FailoverClient` and the
  server.  Latencies are end-to-end *including* retries; the retry
  ladder must absorb every injected fault, and the breaker transition
  counters land in the table.
* **recovery** — the server behind a fixed port is torn down mid-load
  and a replacement bound in its place; the time from teardown to the
  client's first successful call is the recovery latency.

The JSON summary headline is the fault-mix p99 in milliseconds and a
machine-readable sidecar lands in ``benchmarks/results/chaos_load.json``.
"""

import json
import socket
from pathlib import Path
from time import perf_counter

from repro.analysis.tables import Table
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve.chaos import BackgroundProxy
from repro.serve.client import ServeClient, ServeError
from repro.serve.failover import FailoverClient
from repro.serve.server import BackgroundServer, ServeConfig
from repro.service.store import ScheduleStore

# Warm-cache classes with schedules included: each timed overhead call
# ships the whole batch, so the payload is large enough that the relay
# cost of the proxy shows up as a *ratio*, not as loopback noise.
DOCS = [
    {"n": 25, "d": 4, "max_duty": 0.9},
    {"n": 16, "d": 3, "max_duty": 0.5},
    {"n": 12, "d": 2, "max_duty": 0.5},
]
OVERHEAD_REQUESTS = 60
FAULT_REQUESTS = 120
# A ~5% total fault rate: the advertised chaos-drill operating point.
FAULT_PLAN = FaultPlan(seed=17, proxy_refuse_rate=0.02,
                       proxy_reset_rate=0.01, proxy_truncate_rate=0.01,
                       proxy_delay_rate=0.01, proxy_delay_seconds=0.002)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _warm(client):
    """Populate the plan cache so timed requests measure the wire."""
    for doc in DOCS:
        results = client.provision([doc], include_schedules=True)
        assert "error" not in results[0]


def _timed_run(call, count):
    """Drive *count* sequential calls, return sorted latencies."""
    latencies = []
    for i in range(count):
        doc = DOCS[i % len(DOCS)]
        start = perf_counter()
        call(doc)
        latencies.append(perf_counter() - start)
    return sorted(latencies)


def _stats_row(name, latencies, **extra):
    row = {
        "phase": name,
        "requests": len(latencies),
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
    }
    row.update(extra)
    return row


def _measure_overhead(tmp_path):
    """Warm workload direct vs through a clean proxy, same server."""
    store = ScheduleStore(tmp_path / "cache-overhead")
    with BackgroundServer(ServeConfig(port=0, jobs=2), store=store) as bs:
        direct = ServeClient(bs.host, bs.port, retries=2, backoff_base=0.01)
        _warm(direct)

        batch = DOCS * 3  # a fatter payload drowns per-connection noise

        def batch_call(client):
            def call(_doc):
                results = client.provision(batch, include_schedules=True)
                assert all("error" not in r for r in results)
            return call

        direct_lat = _timed_run(batch_call(direct), OVERHEAD_REQUESTS)

        with BackgroundProxy("127.0.0.1", bs.port) as bp:
            proxied = ServeClient(bp.host, bp.port, retries=2,
                                  backoff_base=0.01)
            proxied_lat = _timed_run(batch_call(proxied), OVERHEAD_REQUESTS)
            assert all(kind == "ok" for _i, kind in bp.fault_log)

    ratio = _quantile(proxied_lat, 0.50) / _quantile(direct_lat, 0.50)
    return (_stats_row("direct", direct_lat),
            _stats_row("proxied-0%", proxied_lat, overhead_ratio=ratio),
            ratio)


def _measure_fault_mix(tmp_path):
    """The seeded ~5% cocktail; latencies include the retry ladder."""
    registry = MetricsRegistry()
    store = ScheduleStore(tmp_path / "cache-faults")
    with BackgroundServer(ServeConfig(port=0, jobs=2), store=store) as bs:
        with BackgroundProxy("127.0.0.1", bs.port, plan=FAULT_PLAN) as bp:
            endpoint = f"{bp.host}:{bp.port}"
            client = FailoverClient([endpoint], retries=8, timeout=10.0,
                                    backoff_base=0.002, failure_threshold=4,
                                    breaker_reset_s=0.05, registry=registry)
            _warm(client)

            def faulted_call(doc):
                results = client.provision([doc], include_schedules=True)
                assert "error" not in results[0]

            latencies = _timed_run(faulted_call, FAULT_REQUESTS)
            faults = sum(1 for _i, kind in bp.fault_log if kind != "ok")

    transitions = registry.get("repro_failover_breaker_transitions_total")
    opens = closes = 0
    if transitions is not None:
        opens = int(transitions.value(endpoint=endpoint, state="open"))
        closes = int(transitions.value(endpoint=endpoint, state="closed"))
    retries = registry.get("repro_failover_retries_total")
    retried = int(retries.value()) if retries is not None else 0
    row = _stats_row("fault-mix-5%", latencies, faults_injected=faults,
                     retries=retried, breaker_opens=opens,
                     breaker_closes=closes)
    scrub = ScheduleStore(tmp_path / "cache-faults").scrub()
    assert scrub.clean  # no storm may leave corrupt entries behind
    return row


def _measure_recovery(tmp_path):
    """Kill the only server, bind a replacement, time until first win."""
    port = _free_port()
    store_dir = tmp_path / "cache-recovery"
    client = FailoverClient([("127.0.0.1", port)], retries=20,
                            timeout=10.0, backoff_base=0.01,
                            breaker_reset_s=0.05)
    with BackgroundServer(ServeConfig(host="127.0.0.1", port=port, jobs=1),
                          store=ScheduleStore(store_dir)):
        assert client.health()["ok"] is True

    # The server is gone; the replacement binds while the client retries.
    outage_start = perf_counter()
    with BackgroundServer(ServeConfig(host="127.0.0.1", port=port, jobs=1),
                          store=ScheduleStore(store_dir)):
        while True:
            try:
                doc = client.plan(12, 2, 0.5, include_schedule=False)
                assert "request" in doc
                break
            except ServeError:
                pass
        recovery = perf_counter() - outage_start
    return {"phase": "recovery", "requests": 1,
            "p50_ms": recovery * 1e3, "p99_ms": recovery * 1e3,
            "recovery_ms": recovery * 1e3}


def test_chaos_load(report, headline, tmp_path):
    direct, proxied, ratio = _measure_overhead(tmp_path)
    fault_mix = _measure_fault_mix(tmp_path)
    recovery = _measure_recovery(tmp_path)

    # The relay contract: a fault-free proxy hop costs <20% at the median.
    assert ratio < 1.2, f"clean proxy overhead {ratio:.2f}x exceeds 1.2x"
    # The ladder contract: breakers that opened must have closed again.
    assert fault_mix["breaker_opens"] == fault_mix["breaker_closes"]

    rows = [direct, proxied, fault_mix, recovery]
    table = Table("phase", "requests", "p50_ms", "p99_ms",
                  title=f"Chaos serve load (overhead x{OVERHEAD_REQUESTS}, "
                        f"fault mix x{FAULT_REQUESTS} at ~5%, seeded)")
    for row in rows:
        table.row(phase=row["phase"], requests=row["requests"],
                  p50_ms=round(row["p50_ms"], 3),
                  p99_ms=round(row["p99_ms"], 3))
    report(table, "chaos_load")
    headline("fault_mix_p99_ms", fault_mix["p99_ms"])

    summary = {
        "benchmark": "bench_chaos",
        "format": "repro-chaos-load",
        "version": 1,
        "fault_plan": FAULT_PLAN.to_dict(),
        "proxy_overhead_ratio": ratio,
        "phases": rows,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "chaos_load.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n")
