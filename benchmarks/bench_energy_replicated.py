"""E9 (replicated) — the energy/latency story with confidence intervals.

Five independent seeds per scheme at a common slot budget; the headline
comparison (energy per delivered packet, constructed TT vs always-on
TDMA) must be statistically significant, not a seed artifact.
"""

from repro.analysis.experiments import energy_latency_replicated


def test_energy_latency_replicated(benchmark, report):
    table, info = benchmark.pedantic(
        lambda: energy_latency_replicated(seeds=(0, 1, 2, 3, 4)),
        rounds=1, iterations=1)
    est = info["estimates"]
    tt = est["constructed TT"]
    tdma = est["always-on TDMA"]
    naive = est["naive 1-of-k"]
    # Interval-separated claims (no overlap), direction per the paper:
    assert tt["mj_per_delivered"].high < tdma["mj_per_delivered"].low
    assert tt["delivery_ratio"].low > naive["delivery_ratio"].high
    assert tt["awake_fraction"].high < tdma["awake_fraction"].low
    assert info["energy_p_value"] < 0.001
    report(table, "energy_replicated")
