"""E7 — Theorem 9: minimum worst-case throughput of the construction.

Regenerates measured exact adversarial minimum throughput for every source
family against both forms of the Theorem 9 lower bound.
"""

from repro.analysis.experiments import thm9_min_throughput


def test_thm9_min_throughput(benchmark, report):
    table = benchmark.pedantic(
        lambda: thm9_min_throughput(n=12, d=2, alpha_t=3, alpha_r=4),
        rounds=3, iterations=1)
    for r in table.rows:
        assert r["sharp_holds"]
        assert r["closed_holds"]
        assert float(r["thr_min_constructed"]) > 0
    report(table, "thm9_min_throughput")
