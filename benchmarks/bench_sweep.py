"""The sharded sweep engine against the legacy serial seed sweep.

Same grid, two runners: the original :func:`repro.analysis.sweep` loop
driving the scalar slot-step simulator (the pre-engine idiom), and
:class:`repro.analysis.SweepRunner` at ``--jobs 8`` riding the vectorized
saturated-mode kernel.  The engine must be at least 4x faster wall-clock
and — the determinism contract — its merged JSONL must be byte-identical
between ``jobs=1`` and ``jobs=8``.
"""

from __future__ import annotations

from time import perf_counter

from repro.analysis import Table, SweepRunner, SweepSpec, sweep
from repro.analysis.sweeps import (
    SweepPoint,
    _build_schedule,
    _build_topology,
)
from repro.simulation.engine import Simulator
from repro.simulation.traffic import SaturatedTraffic

SPEC = SweepSpec(families=("tdma",), ns=(60, 80, 100), ds=(4,),
                 traffics=("saturated",), seeds=(0, 1, 2), frames=16)
MIN_SPEEDUP = 4.0


def _serial_point(n: int, seed: int) -> dict:
    """One grid point the way the seed repo ran it: scalar slot loop."""
    point = SweepPoint("tdma", n, SPEC.ds[0], "saturated", seed)
    topo = _build_topology(SPEC, point)
    sched = _build_schedule(SPEC, point)
    sim = Simulator(topo, sched, SaturatedTraffic(topo),
                    instrument=False, vectorize=False)
    m = sim.run(SPEC.frames)
    return {"successes": sum(m.successes.values())}


def test_sweep_engine_speedup(report, headline):
    started = perf_counter()
    serial = sweep(_serial_point, n=SPEC.ns, seed=SPEC.seeds)
    serial_s = perf_counter() - started

    started = perf_counter()
    fast = SweepRunner(SPEC, jobs=8, shard_size=1).run()
    engine_s = perf_counter() - started
    speedup = serial_s / engine_s

    # Same physics: per-point success totals agree with the scalar loop.
    by_point = {(r["point"]["n"], r["point"]["seed"]):
                r["metrics"]["successes"] for r in fast.rows}
    for record in serial:
        assert by_point[(record["n"], record["seed"])] \
            == record["successes"]

    # Determinism: worker count cannot change a single byte.
    single = SweepRunner(SPEC, jobs=1, shard_size=1).run()
    assert fast.to_jsonl() == single.to_jsonl()
    assert fast.complete

    assert speedup >= MIN_SPEEDUP, (
        f"sweep engine only {speedup:.1f}x faster than the serial seed "
        f"sweep ({engine_s:.3f}s vs {serial_s:.3f}s); need {MIN_SPEEDUP}x")
    headline("sweep_speedup_x", speedup)

    table = Table("runner", "points", "seconds", "speedup",
                  title="Sweep engine vs serial seed sweep (same grid)")
    table.row(runner="serial-scalar", points=len(serial),
              seconds=round(serial_s, 4), speedup=1.0)
    table.row(runner="engine-jobs8", points=len(fast.rows),
              seconds=round(engine_s, 4), speedup=round(speedup, 2))
    report(table, "sweep_engine")
