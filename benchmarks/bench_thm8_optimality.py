"""E6 — Theorem 8: optimality ratio of the constructed schedule.

Regenerates the measured Thr_ave/Thr* ratios against the theorem's lower
bound across thick (polynomial) and thin (TDMA) sources, asserting the
bound always holds and equality fires exactly under the paper's condition.
"""

from repro.analysis.experiments import thm8_optimality


def test_thm8_optimality(benchmark, report):
    table = benchmark.pedantic(
        lambda: thm8_optimality(n=25, d=3, alpha_r=6, alpha_ts=(2, 4, 7)),
        rounds=3, iterations=1)
    for r in table.rows:
        assert r["bound_holds"]
        if r["min_T"] >= r["alpha_t_star"]:
            assert r["optimal"], \
                f"thick source must attain the bound: {r}"
        else:
            assert not r["optimal"] or r["ratio"] == 1
    report(table, "thm8_optimality")
