"""E17 — latency vs offered load, pinned by theory at both ends.

The latency a duty-cycled link imposes is not one number: it is the
zero-load access delay (analytic: the uniform-phase mean wait to the next
guaranteed slot) rising to saturation (analytic: the link serves exactly
its sigma-slot count per frame).  The measured curve must hit both
anchors; between them is the queueing regime the paper's "light traffic"
positioning lives in.
"""

from repro.analysis.experiments import latency_load_curve


def test_latency_load_curve(benchmark, report):
    table, info = benchmark.pedantic(
        lambda: latency_load_curve(slots=60_000), rounds=1, iterations=1)
    rows = table.rows
    # Zero-load anchor: lowest rate's mean latency near the analytic wait.
    lightest = rows[0]
    analytic = float(info["zero_load_latency"])
    assert abs(lightest["mean_latency"] - analytic) < 1.5, \
        f"zero-load latency {lightest['mean_latency']} vs analytic {analytic}"
    # Saturation anchor: heaviest rate delivers the full service capacity.
    heaviest = rows[-1]
    assert abs(heaviest["deliveries_per_frame"]
               - info["service_per_frame"]) < 0.05
    # Hockey stick: latency grows with load (monotone within the sampling
    # noise of the lightest rates) and explodes past saturation.
    latencies = [r["mean_latency"] for r in rows]
    for a, b in zip(latencies, latencies[1:]):
        assert b >= a - 1.0
    assert latencies[-1] > 10 * analytic
    report(table, "latency_load")
    from repro.analysis.ascii_plot import line_plot

    import sys
    sys.stdout.write("\n" + line_plot(
        [r["rate_per_slot"] for r in rows], latencies, log_y=True,
        title="Figure E17: mean latency (slots, log) vs offered load "
              "(pkts/slot)", width=50, height=10) + "\n")
