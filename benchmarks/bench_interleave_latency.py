"""Extension ablation — slot interleaving vs the paper's Figure 2 ordering.

Figure 2 emits all constructed slots of one source slot contiguously;
interleaving deals them round-robin.  Both orderings carry identical
throughput (pure slot permutation — asserted), so the ordering choice is
about second-order costs, and this bench measures two of them:

* **worst-case access delay** — close to a wash for the built-in
  families (each link draws ~1 guaranteed slot per source slot already);
* **radio wakeups per frame** — where the orderings differ sharply: on
  the measured instances interleaving *batches receivers' awake slots*
  and cuts sleep-to-awake transitions 2-3x, a real energy win under the
  CC2420-class startup cost.
"""

from repro.analysis.tables import Table
from repro.core.composition import interleave_construction
from repro.core.construction import construct_detailed
from repro.core.latency import frame_delay_bound, worst_link_access_delay
from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.throughput import average_throughput


def test_interleave_latency(benchmark, report):
    from repro.simulation.engine import Simulator
    from repro.simulation.topology import ring
    from repro.simulation.traffic import SaturatedTraffic

    def wakeups_per_frame(sched, n):
        topo = ring(n)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        frames = 3
        sim.run(frames=frames)
        return int(sim.energy.wakeups.sum()) / frames

    def build():
        table = Table("source", "n", "D", "alpha_t", "alpha_r", "L",
                      "delay_fig2", "delay_interleaved", "generic_bound",
                      "wakeups_fig2", "wakeups_interleaved",
                      title="Slot ordering: worst-case access delay AND "
                            "radio wakeups (same schedule up to permutation)")
        cases = [
            ("polynomial", polynomial_schedule(9, 2, q=3, k=1), 9, 2, 2, 4),
            ("polynomial", polynomial_schedule(16, 2, q=4, k=1), 16, 2, 3, 6),
            ("tdma", tdma_schedule(8), 8, 2, 2, 3),
        ]
        for name, source, n, d, at, ar in cases:
            res = construct_detailed(source, d, at, ar)
            plain = worst_link_access_delay(res.schedule, d)
            inter_sched = interleave_construction(res)
            inter = worst_link_access_delay(inter_sched, d)
            # The free-lunch part IS guaranteed: throughput identical.
            assert average_throughput(inter_sched, d) == \
                average_throughput(res.schedule, d)
            table.row(source=name, n=n, D=d, alpha_t=at, alpha_r=ar,
                      L=res.schedule.frame_length, delay_fig2=plain,
                      delay_interleaved=inter,
                      generic_bound=frame_delay_bound(res.schedule),
                      wakeups_fig2=wakeups_per_frame(res.schedule, n),
                      wakeups_interleaved=wakeups_per_frame(inter_sched, n))
        return table

    report(benchmark.pedantic(build, rounds=2, iterations=1),
           "interleave_latency")
