"""Practical envelope: how far the library scales.

Measures the cost of each pipeline stage as ``n`` grows — substrate
construction, the Figure 2 conversion, the exact transparency decision
(small/medium n), the sampled refuter (large n), and raw simulation slot
throughput — so a user can budget before committing to a class size.
"""

import numpy as np
import pytest

from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule
from repro.core.planner import plan_schedule
from repro.core.transparency import is_topology_transparent
from repro.service.store import ScheduleStore
from repro.simulation.engine import Simulator
from repro.simulation.topology import grid
from repro.simulation.traffic import SaturatedTraffic


@pytest.mark.parametrize("n", [64, 125, 343, 729])
def test_substrate_construction_scale(benchmark, n):
    sched = benchmark(lambda: polynomial_schedule(n, 3))
    assert sched.n == n


@pytest.mark.parametrize("n", [64, 216, 512])
def test_figure2_scale(benchmark, n):
    d = 3
    source = polynomial_schedule(n, d)
    built = benchmark(lambda: construct(source, d, 4, max(8, n // 8)))
    assert built.is_alpha_schedule(4, max(8, n // 8))


@pytest.mark.parametrize("n", [16, 36, 64])
def test_exact_decision_scale(benchmark, n):
    sched = polynomial_schedule(n, 2)
    assert benchmark.pedantic(lambda: is_topology_transparent(sched, 2),
                              rounds=2, iterations=1)


@pytest.mark.parametrize("n", [125, 343])
def test_sampled_refuter_scale(benchmark, n):
    sched = polynomial_schedule(n, 3)
    rng = np.random.default_rng(0)
    assert benchmark.pedantic(
        lambda: is_topology_transparent(sched, 3, method="sampled",
                                        samples=300, rng=rng),
        rounds=2, iterations=1)


@pytest.mark.parametrize("n", [12, 16, 20])
def test_planner_warm_cache_scale(benchmark, n, tmp_path):
    """The service layer's promise: a repeated plan is a store lookup.

    Prime a schedule store with one full budget search, then measure the
    warm path — it must return the identical plan without constructing.
    """
    store = ScheduleStore(tmp_path / "cache")
    cold = plan_schedule(n, 2, max_duty=0.5, cache=store)
    warm = benchmark(
        lambda: plan_schedule(n, 2, max_duty=0.5,
                              cache=ScheduleStore(store.cache_dir)))
    assert warm == cold
    assert store.stats.stores > 0


@pytest.mark.parametrize("side", [10, 15, 20])
def test_simulation_slot_rate(benchmark, side):
    n = side * side
    d = 4
    topo = grid(side, side)
    sched = construct(polynomial_schedule(n, d), d, 5, max(10, n // 5))

    def run_one_frame():
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        sim.run_slots(min(200, sched.frame_length))
        return sim

    sim = benchmark.pedantic(run_one_frame, rounds=2, iterations=1)
    assert sim.metrics.slots > 0
