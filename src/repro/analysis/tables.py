"""Lightweight result tables for the benchmark harness.

The paper is a theory paper, so "regenerating a table/figure" here means
printing the theorem's quantities over a parameter sweep in a fixed,
readable layout and (optionally) persisting them as CSV next to the
benchmark output.  No plotting dependency is assumed.
"""

from __future__ import annotations

import csv
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterable

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    """Render a cell: Fractions as float with the exact value alongside."""
    if isinstance(value, Fraction):
        return f"{float(value):.6g}"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


class Table:
    """An ordered list of records with a fixed column set.

    >>> t = Table("n", "D", "bound")
    >>> t.row(n=10, D=2, bound=0.25)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, *columns: str, title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self.columns: tuple[str, ...] = columns
        self.title = title
        self.rows: list[dict[str, Any]] = []

    def row(self, **values: Any) -> None:
        """Append a record; keys must match the column set exactly."""
        if set(values) != set(self.columns):
            missing = set(self.columns) - set(values)
            extra = set(values) - set(self.columns)
            raise ValueError(f"row mismatch: missing {missing or '{}'}, extra {extra or '{}'}")
        self.rows.append(values)

    def extend(self, records: Iterable[dict[str, Any]]) -> None:
        """Append many records."""
        for r in records:
            self.row(**r)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [r[name] for r in self.rows]

    def render(self) -> str:
        """Fixed-width ASCII rendering."""
        headers = list(self.columns)
        body = [[_fmt(r[c]) for c in headers] for r in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> None:
        """Persist as CSV (floats for Fractions)."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            for r in self.rows:
                writer.writerow([_fmt(r[c]) for c in self.columns])

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table(columns={self.columns}, rows={len(self.rows)})"
