"""Cartesian parameter-sweep runner shared by benchmarks and examples."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping

__all__ = ["sweep"]


def sweep(fn: Callable[..., Mapping[str, Any] | None],
          **grid: Iterable[Any]) -> list[dict[str, Any]]:
    """Call ``fn`` on every combination of the keyword grids.

    *fn* receives one keyword per grid and returns a mapping of result
    fields (or None to skip the combination, e.g. for infeasible
    parameters).  Each record in the returned list contains the grid point
    merged with the result fields; result fields may not shadow grid keys.

    >>> sweep(lambda n, d: {"sum": n + d}, n=[1, 2], d=[10])
    [{'n': 1, 'd': 10, 'sum': 11}, {'n': 2, 'd': 10, 'sum': 12}]
    """
    if not grid:
        raise ValueError("sweep needs at least one parameter grid")
    keys = list(grid)
    records: list[dict[str, Any]] = []
    for combo in itertools.product(*(list(grid[k]) for k in keys)):
        point = dict(zip(keys, combo))
        result = fn(**point)
        if result is None:
            continue
        clash = set(result) & set(point)
        if clash:
            raise ValueError(f"result fields {clash} shadow sweep parameters")
        records.append({**point, **result})
    return records
