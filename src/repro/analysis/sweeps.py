"""Parameter sweeps: the legacy serial runner and the sharded engine.

Two generations live here:

* :func:`sweep` — the original 36-line serial cartesian runner, kept for
  the benchmarks and examples that call a Python function per point;
* the **sweep engine** — :class:`SweepSpec` / :class:`SweepRunner` — which
  expands a simulation parameter grid (schedule family × n × D × traffic ×
  seeds), deduplicates points, fans fixed-size *shards* out over the
  fault-tolerant process pool of :mod:`repro.service.runtime` (per-shard
  timeout, retry and quarantine for free), checkpoints every finished
  shard as content-addressed JSONL so an interrupted sweep warm-resumes,
  and merges shard results **in grid order** — the merged output is
  byte-identical whatever the worker count or completion order.

Determinism is the engine's contract, enforced by the regression suite:

* every point owns seeded generators derived from its own identifiers
  (never from shared RNG state or execution order);
* result rows are canonical JSON (sorted keys, no whitespace) carrying a
  versioned envelope (``repro-sweep-result`` v1, mirroring the
  ``repro-metrics`` snapshot format) and no wall-clock fields;
* shard identity is the SHA-256 digest of the canonical ``(spec, points)``
  document, so a checkpoint can never be replayed against the wrong grid.

Simulations run with ``instrument=False``, unlocking the vectorized
saturated-mode kernel of :class:`repro.simulation.engine.Simulator`.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field, fields, replace
from math import isqrt
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro._validation import check_int
from repro.faults import FaultPlan
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import span
from repro.service.runtime import RuntimeConfig, TaskReport, execute_tasks
from repro.service.store import key_digest

__all__ = ["sweep", "SweepSpec", "SweepPoint", "ShardTask", "SweepResult",
           "SweepRunner", "ROW_FORMAT", "ROW_VERSION", "render_row"]

_log = get_logger("analysis.sweeps")

#: Envelope carried by every result row (the JSONL analogue of the
#: ``repro-metrics`` snapshot header).
ROW_FORMAT = "repro-sweep-result"
ROW_VERSION = 1

_FAMILIES = ("tdma", "polynomial", "steiner", "projective", "mols")
_TOPOLOGIES = ("regular", "ring", "grid", "star", "tree", "unit-disk")
_TRAFFICS = ("saturated", "poisson", "sensing")

# Integer tags folded into per-point seed sequences so the topology and
# traffic generators of one point can never share a stream.
_TAG_TOPOLOGY = 0x70_70
_TAG_TRAFFIC = 0x7F_1C


def sweep(fn: Callable[..., Mapping[str, Any] | None],
          **grid: Iterable[Any]) -> list[dict[str, Any]]:
    """Call ``fn`` on every combination of the keyword grids.

    *fn* receives one keyword per grid and returns a mapping of result
    fields (or None to skip the combination, e.g. for infeasible
    parameters).  Each record in the returned list contains the grid point
    merged with the result fields; result fields may not shadow grid keys.

    >>> sweep(lambda n, d: {"sum": n + d}, n=[1, 2], d=[10])
    [{'n': 1, 'd': 10, 'sum': 11}, {'n': 2, 'd': 10, 'sum': 12}]
    """
    if not grid:
        raise ValueError("sweep needs at least one parameter grid")
    keys = list(grid)
    records: list[dict[str, Any]] = []
    for combo in itertools.product(*(list(grid[k]) for k in keys)):
        point = dict(zip(keys, combo))
        result = fn(**point)
        if result is None:
            continue
        clash = set(result) & set(point)
        if clash:
            raise ValueError(f"result fields {clash} shadow sweep parameters")
        records.append({**point, **result})
    return records


# ----------------------------------------------------------------------
# grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One fully determined simulation run inside a sweep grid."""

    family: str
    n: int
    d: int
    traffic: str
    seed: int

    def to_dict(self) -> dict[str, Any]:
        """JSON document form (the ``point`` member of a result row)."""
        return {"family": self.family, "n": self.n, "d": self.d,
                "traffic": self.traffic, "seed": self.seed}


@dataclass(frozen=True)
class SweepSpec:
    """A declarative simulation sweep: axes plus shared run parameters.

    Axes (the cartesian grid, expanded row-major in declaration order):

    ``families``
        Substrate families from :mod:`repro.core.nonsleeping`.
    ``ns`` / ``ds``
        Network-class bounds ``n`` and ``D``.
    ``traffics``
        Traffic generators: ``saturated``, ``poisson`` or ``sensing``.
    ``seeds``
        Per-point root seeds; every point derives its topology and
        traffic generators from its *own* identifiers, so results never
        depend on execution order.

    Shared parameters: *topology* shape, simulated *frames*, optional
    duty-cycling construction (*alpha_t*/*alpha_r*, both set or both
    None — None simulates the non-sleeping substrate directly),
    *balanced* divisions, Poisson *rate* and sensing *period*.
    """

    families: tuple[str, ...] = ("tdma",)
    ns: tuple[int, ...] = (16,)
    ds: tuple[int, ...] = (4,)
    traffics: tuple[str, ...] = ("saturated",)
    seeds: tuple[int, ...] = (0,)
    topology: str = "regular"
    frames: int = 4
    alpha_t: int | None = None
    alpha_r: int | None = None
    balanced: bool = False
    rate: float = 0.01
    period: int = 50

    def __post_init__(self) -> None:
        for name, singular, values, allowed in (
                ("families", "family", self.families, _FAMILIES),
                ("traffics", "traffic", self.traffics, _TRAFFICS)):
            if not values:
                raise ValueError(f"{name} must not be empty")
            for value in values:
                if value not in allowed:
                    raise ValueError(f"unknown {singular} {value!r}; "
                                     f"expected one of {allowed}")
        for name, values in (("ns", self.ns), ("ds", self.ds),
                             ("seeds", self.seeds)):
            if not values:
                raise ValueError(f"{name} must not be empty")
            for value in values:
                check_int(value, f"{name} entry",
                          minimum=0 if name == "seeds" else 1)
        if self.topology not in _TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}; "
                             f"expected one of {_TOPOLOGIES}")
        check_int(self.frames, "frames", minimum=1)
        check_int(self.period, "period", minimum=1)
        if (self.alpha_t is None) != (self.alpha_r is None):
            raise ValueError("alpha_t and alpha_r must be set together")
        if self.alpha_t is not None:
            check_int(self.alpha_t, "alpha_t", minimum=1)
            check_int(self.alpha_r, "alpha_r", minimum=1)
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")

    def expand(self) -> list[SweepPoint]:
        """The deduplicated grid, row-major over the declared axes."""
        points = (SweepPoint(family, n, d, traffic, seed)
                  for family in self.families for n in self.ns
                  for d in self.ds for traffic in self.traffics
                  for seed in self.seeds)
        return list(dict.fromkeys(points))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable document (inverse of :meth:`from_dict`)."""
        return {
            "families": list(self.families), "ns": list(self.ns),
            "ds": list(self.ds), "traffics": list(self.traffics),
            "seeds": list(self.seeds), "topology": self.topology,
            "frames": self.frames, "alpha_t": self.alpha_t,
            "alpha_r": self.alpha_r, "balanced": self.balanced,
            "rate": self.rate, "period": self.period,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SweepSpec":
        """Parse a sweep-spec document; unknown fields are rejected so a
        typoed axis can never silently fall back to a default."""
        if not isinstance(doc, dict):
            raise ValueError("sweep spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"sweep spec has unknown fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(doc)
        for name in ("families", "ns", "ds", "traffics", "seeds"):
            if name in kwargs:
                value = kwargs[name]
                if not isinstance(value, (list, tuple)):
                    raise ValueError(f"{name} must be a list")
                kwargs[name] = tuple(value)
        return cls(**kwargs)


# ----------------------------------------------------------------------
# per-point evaluation (worker side)
# ----------------------------------------------------------------------
def _build_topology(spec: SweepSpec, point: SweepPoint):
    from repro.simulation import topology as topo_mod

    rng = np.random.default_rng([_TAG_TOPOLOGY, point.seed, point.n, point.d])
    if spec.topology == "regular":
        topo = topo_mod.worst_case_regular(
            point.n, point.d, seed=int(rng.integers(2**31 - 1)))
    elif spec.topology == "ring":
        topo = topo_mod.ring(point.n)
    elif spec.topology == "grid":
        side = isqrt(point.n)
        if side * side != point.n:
            raise ValueError(f"grid topology needs a square node count, "
                             f"got {point.n}")
        topo = topo_mod.grid(side, side)
    elif spec.topology == "star":
        topo = topo_mod.star(point.n, point.d)
    elif spec.topology == "tree":
        topo = topo_mod.random_tree(point.n, point.d, rng=rng)
    else:  # unit-disk
        topo = topo_mod.unit_disk(point.n, point.d, rng=rng)
    topo.assert_in_class(point.n, point.d)
    return topo


def _build_schedule(spec: SweepSpec, point: SweepPoint):
    from repro.core import nonsleeping
    from repro.core.construction import construct

    if point.family == "tdma":
        source = nonsleeping.tdma_schedule(point.n)
    elif point.family == "projective":
        source = nonsleeping.projective_plane_schedule(point.n, point.d)
    else:
        source = getattr(nonsleeping, f"{point.family}_schedule")(
            point.n, point.d)
    if spec.alpha_t is None:
        return source
    return construct(source, point.d, spec.alpha_t, spec.alpha_r,
                     balanced=spec.balanced)


def _evaluate_point(spec: SweepSpec, point: SweepPoint) -> dict[str, Any]:
    """One simulation run -> the canonical result row (never raises for a
    merely infeasible point: those produce deterministic error rows)."""
    from repro.simulation.engine import Simulator
    from repro.simulation.routing import sink_tree
    from repro.simulation.traffic import (
        PeriodicSensingTraffic,
        PoissonTraffic,
        SaturatedTraffic,
    )

    envelope = {"format": ROW_FORMAT, "version": ROW_VERSION,
                "point": point.to_dict()}
    try:
        topo = _build_topology(spec, point)
        sched = _build_schedule(spec, point)
        rng = np.random.default_rng(
            [_TAG_TRAFFIC, point.seed, point.n, point.d])
        hops = None
        if point.traffic == "saturated":
            traffic = SaturatedTraffic(topo)
        elif point.traffic == "poisson":
            traffic = PoissonTraffic(topo, spec.rate, rng)
        else:
            traffic = PeriodicSensingTraffic(topo, sink=0, period=spec.period)
            hops = sink_tree(topo, 0)
        sim = Simulator(topo, sched, traffic, next_hops=hops, rng=rng,
                        instrument=False)
        m = sim.run(spec.frames)
    except ValueError as exc:
        return {**envelope, "error": f"{type(exc).__name__}: {exc}"}
    links = topo.directed_links()
    length = sched.frame_length
    mean_latency = m.mean_latency()
    return {**envelope, "metrics": {
        "slots": m.slots,
        "frame_length": length,
        "duty_cycle": float(sched.average_duty_cycle()),
        "attempts": sum(m.attempts.values()),
        "successes": sum(m.successes.values()),
        "collisions": m.total_collisions(),
        "mean_link_throughput": m.mean_link_throughput(links, length),
        "min_link_throughput": m.min_link_throughput(links, length),
        "delivery_ratio": m.delivery_ratio(),
        "dropped": m.dropped,
        "mean_latency_slots":
            None if mean_latency != mean_latency else mean_latency,
        "awake_fraction": sim.energy.awake_fraction(),
        "total_energy_mj": sim.energy.total_mj(),
        "energy_fairness": sim.energy.jain_fairness(),
    }}


def render_row(row: dict[str, Any]) -> str:
    """Canonical JSON encoding of a result row: sorted keys, no
    whitespace — the byte-identical merge contract depends on it."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardTask:
    """A contiguous run of grid points, shippable to a pool worker.

    Identity is content-addressed: :meth:`key` digests the canonical
    ``(spec, points)`` document, so equal shards share checkpoints and a
    stale checkpoint can never be replayed against a different grid.
    """

    spec: SweepSpec
    points: tuple[SweepPoint, ...]
    index: int

    def key(self) -> str:
        """SHA-256 digest of the shard's canonical key document."""
        return key_digest({
            "kind": "sweep-shard", "version": ROW_VERSION,
            "spec": self.spec.to_dict(),
            "points": [p.to_dict() for p in self.points],
        })


def _evaluate_shard(task: ShardTask) -> list[dict[str, Any]]:
    """Worker entry point: evaluate every point of one shard, in order.

    Module-level so the process pool pickles it by reference (it is the
    ``evaluate=`` hook of :func:`repro.service.runtime.execute_tasks`).
    """
    return [_evaluate_point(task.spec, point) for point in task.points]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """Merged outcome of one :class:`SweepRunner` run.

    ``rows`` are in grid order — one per expanded point, each either a
    ``metrics`` row or a deterministic ``error`` row (infeasible point or
    failed shard).  ``reports`` maps shard digest to the runtime's
    :class:`~repro.service.runtime.TaskReport` for every shard that was
    actually executed (resumed shards have no report).
    """

    spec: SweepSpec
    rows: list[dict[str, Any]] = field(default_factory=list)
    reports: dict[str, TaskReport] = field(default_factory=dict)
    shard_digests: list[str] = field(default_factory=list)
    resumed_shards: int = 0

    @property
    def complete(self) -> bool:
        """True when no shard was lost to worker faults (error rows from
        infeasible points do not count against completeness)."""
        return all(r.succeeded for r in self.reports.values())

    def to_jsonl(self) -> str:
        """The merged rows as canonical JSONL (trailing newline included
        when non-empty)."""
        if not self.rows:
            return ""
        return "\n".join(render_row(row) for row in self.rows) + "\n"


class SweepRunner:
    """Shard a :class:`SweepSpec` over the fault-tolerant runtime.

    Parameters
    ----------
    spec:
        The grid to sweep.
    jobs:
        Worker-pool width; ``1`` runs shards inline (no processes).
    shard_size:
        Grid points per shard — the unit of checkpointing, retry and
        quarantine.
    checkpoint_dir:
        Directory for per-shard checkpoints (``<digest>.jsonl``, written
        atomically the moment a shard finishes).  None disables
        checkpointing.
    resume:
        Reuse valid checkpoints from *checkpoint_dir* instead of
        recomputing their shards.  A checkpoint is valid only when it
        parses and matches the shard's points line for line; anything
        else is recomputed.
    config:
        Base :class:`~repro.service.runtime.RuntimeConfig` (timeout,
        retries, backoff); its ``jobs`` is overridden by *jobs*.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injecting worker
        crash/hang/slow/error faults per shard attempt (chaos tests).
    registry:
        Metrics registry for the sweep's counters; defaults to the
        process default registry.
    """

    def __init__(self, spec: SweepSpec, *, jobs: int = 1,
                 shard_size: int = 8,
                 checkpoint_dir: str | os.PathLike | None = None,
                 resume: bool = False,
                 config: RuntimeConfig | None = None,
                 faults: FaultPlan | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.spec = spec
        self.jobs = check_int(jobs, "jobs", minimum=1)
        self.shard_size = check_int(shard_size, "shard_size", minimum=1)
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        if resume and self.checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint_dir")
        self.resume = resume
        base = config or RuntimeConfig()
        self.config = (base if base.jobs == self.jobs
                       else replace(base, jobs=self.jobs))
        self.faults = faults
        self._registry = registry

    # -- checkpoint plumbing -------------------------------------------
    def _checkpoint_path(self, digest: str) -> Path:
        return self.checkpoint_dir / f"{digest}.jsonl"

    def _write_checkpoint(self, task: ShardTask,
                          rows: list[dict[str, Any]]) -> None:
        """Atomic tmp-then-replace write, same discipline as the store."""
        path = self._checkpoint_path(task.key())
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text("".join(render_row(row) + "\n" for row in rows))
        os.replace(tmp, path)

    def _load_checkpoint(self, task: ShardTask
                         ) -> list[dict[str, Any]] | None:
        """A previously checkpointed shard's rows, or None when absent,
        unreadable or inconsistent with the shard's points."""
        path = self._checkpoint_path(task.key())
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return None
        if len(lines) != len(task.points):
            _log.warning("checkpoint_invalid", extra={
                "digest": task.key()[:12], "reason": "row count mismatch"})
            return None
        rows = []
        for line, point in zip(lines, task.points):
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                _log.warning("checkpoint_invalid", extra={
                    "digest": task.key()[:12], "reason": "unparseable row"})
                return None
            if (not isinstance(row, dict)
                    or row.get("format") != ROW_FORMAT
                    or row.get("version") != ROW_VERSION
                    or row.get("point") != point.to_dict()):
                _log.warning("checkpoint_invalid", extra={
                    "digest": task.key()[:12], "reason": "row mismatch"})
                return None
            rows.append(row)
        return rows

    # -- the run -------------------------------------------------------
    def run(self) -> SweepResult:
        """Expand, shard, execute, merge — deterministically."""
        registry = (self._registry if self._registry is not None
                    else default_registry())
        points_counter = registry.counter(
            "repro_sweep_points_total",
            "Sweep grid points finished, by row outcome.")
        shards_counter = registry.counter(
            "repro_sweep_shards_total",
            "Sweep shards finished, by provenance.")
        points = self.spec.expand()
        tasks = [ShardTask(self.spec, tuple(points[i:i + self.shard_size]),
                           i // self.shard_size)
                 for i in range(0, len(points), self.shard_size)]
        result = SweepResult(self.spec,
                             shard_digests=[t.key() for t in tasks])
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)

        resumed: dict[str, list[dict[str, Any]]] = {}
        if self.resume:
            for task in tasks:
                rows = self._load_checkpoint(task)
                if rows is not None:
                    resumed.setdefault(task.key(), rows)
        pending = [t for t in tasks if t.key() not in resumed]
        result.resumed_shards = len(tasks) - len(pending)
        _log.info("sweep_started", extra={
            "points": len(points), "shards": len(tasks),
            "resumed": result.resumed_shards, "jobs": self.jobs,
            "shard_size": self.shard_size})

        checkpoint = (self._write_checkpoint if self.checkpoint_dir is not None
                      else (lambda task, rows: None))
        with span("sweep.run", points=len(points), shards=len(tasks),
                  resumed=result.resumed_shards, jobs=self.jobs):
            outcome = execute_tasks(
                pending, config=self.config, faults=self.faults,
                registry=registry, evaluate=_evaluate_shard,
                checkpoint=checkpoint)
        result.reports = outcome.reports

        # Deterministic merge: shard order == grid order, whatever the
        # workers did; a lost shard degrades to error rows for its points.
        for task in tasks:
            digest = task.key()
            if digest in resumed:
                rows = resumed[digest]
                shards_counter.labels(result="resumed").inc()
            elif digest in outcome.plans:
                rows = outcome.plans[digest]
                shards_counter.labels(result="computed").inc()
            else:
                report = outcome.reports[digest]
                rows = [{"format": ROW_FORMAT, "version": ROW_VERSION,
                         "point": point.to_dict(),
                         "error": f"shard {report.status}: {report.error}"}
                        for point in task.points]
                shards_counter.labels(result="failed").inc()
            result.rows.extend(rows)
        for row in result.rows:
            points_counter.labels(
                status="error" if "error" in row else "ok").inc()
        _log.info("sweep_finished", extra={
            "points": len(result.rows), "shards": len(tasks),
            "resumed": result.resumed_shards,
            "failed_shards": sum(1 for r in result.reports.values()
                                 if not r.succeeded)})
        return result
