"""Shared analysis utilities and per-artefact experiment entry points.

* :mod:`repro.analysis.tables` — lightweight ASCII/CSV result tables;
* :mod:`repro.analysis.sweeps` — the serial cartesian runner plus the
  sharded, resumable sweep engine (``SweepSpec`` / ``SweepRunner``);
* :mod:`repro.analysis.experiments` — one function per paper artefact
  (Figure 1, Theorems 1-4 and 6-9, plus the simulation studies), shared
  by the benchmark harness under ``benchmarks/`` and the examples.
"""

from repro.analysis.tables import Table
from repro.analysis.sweeps import (
    SweepPoint,
    SweepResult,
    SweepRunner,
    SweepSpec,
    sweep,
)

__all__ = ["Table", "sweep", "SweepSpec", "SweepPoint", "SweepRunner",
           "SweepResult"]
