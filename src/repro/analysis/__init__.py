"""Shared analysis utilities and per-artefact experiment entry points.

* :mod:`repro.analysis.tables` — lightweight ASCII/CSV result tables;
* :mod:`repro.analysis.sweeps` — cartesian parameter-sweep runner;
* :mod:`repro.analysis.experiments` — one function per paper artefact
  (Figure 1, Theorems 1-4 and 6-9, plus the simulation studies), shared
  by the benchmark harness under ``benchmarks/`` and the examples.
"""

from repro.analysis.tables import Table
from repro.analysis.sweeps import sweep

__all__ = ["Table", "sweep"]
