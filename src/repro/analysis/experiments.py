"""One entry point per reproduced paper artefact.

The paper's evaluation is its theorem set plus two figures; every function
here regenerates one artefact's numbers (see DESIGN.md's experiment index)
and returns a :class:`repro.analysis.tables.Table` — the same rows the
benchmark harness under ``benchmarks/`` prints and EXPERIMENTS.md records.

All functions are deterministic given their ``rng``/seed arguments.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

import numpy as np

from repro._validation import check_class_params
from repro.analysis.tables import Table
from repro.baselines import coloring_schedule, naive_duty_cycle
from repro.core.construction import construct_detailed, frame_length_formula
from repro.core.nonsleeping import (
    polynomial_schedule,
    projective_plane_schedule,
    steiner_schedule,
    tdma_schedule,
)
from repro.core.schedule import Schedule
from repro.core.throughput import (
    average_throughput,
    average_throughput_bruteforce,
    constrained_upper_bound,
    g,
    g_upper_bound,
    general_upper_bound,
    guaranteed_slots,
    min_throughput,
    optimal_transmitters_constrained,
    optimal_transmitters_general,
    thm8_ratio_lower_bound,
    thm9_min_throughput_bound,
)
from repro.core.transparency import (
    is_topology_transparent,
    satisfies_requirement2,
    satisfies_requirement3,
)
from repro.simulation.energy import EnergyModel
from repro.simulation.engine import Simulator
from repro.simulation.routing import sink_tree
from repro.simulation.topology import Topology, grid, ring, worst_case_regular
from repro.simulation.traffic import (
    PeriodicSensingTraffic,
    PoissonTraffic,
    SaturatedTraffic,
)

__all__ = [
    "fig1_example",
    "thm1_equivalence",
    "thm2_validation",
    "thm3_sweep",
    "thm4_sweep",
    "fig2_construction",
    "thm8_optimality",
    "thm9_min_throughput",
    "sim_validation",
    "energy_latency_study",
    "energy_latency_replicated",
    "latency_load_curve",
    "balanced_energy_study",
    "substrate_scale",
    "dynamic_topology_study",
    "split_ratio_study",
    "drift_robustness_study",
    "mobility_study",
    "random_schedule",
]


def random_schedule(n: int, length: int, rng: np.random.Generator,
                    *, non_sleeping: bool = False) -> Schedule:
    """A uniformly random valid schedule (used by validation experiments).

    Every node independently transmits / receives / sleeps per slot (for
    ``non_sleeping=True`` the sleep option is removed).  Slots with an
    empty transmitter set are permitted — the throughput formulas must
    handle them.
    """
    tx, rx = [], []
    for _ in range(length):
        t = r = 0
        for x in range(n):
            choice = rng.integers(3 if not non_sleeping else 2)
            if choice == 0:
                t |= 1 << x
            elif choice == 1:
                r |= 1 << x
        tx.append(t)
        rx.append(r)
    return Schedule(n, tuple(tx), tuple(rx))


# ---------------------------------------------------------------------------
# E1 — Figure 1
# ---------------------------------------------------------------------------

def fig1_example() -> tuple[Table, dict[str, Any]]:
    """Figure 1 reconstruction: sleeping without losing throughput.

    The original figure's drawing is not reproducible from the text, but
    its claim is: *on a specific topology*, a schedule that puts nodes to
    sleep can deliver exactly the per-link guaranteed throughput of a
    non-sleeping schedule.  We exhibit the canonical such example: a ring
    of six nodes under TDMA.  In slot ``i`` only node ``i``'s two ring
    neighbours actually need to listen; everyone else sleeps.  The table
    lists every directed link's guaranteed successes per frame under both
    schedules — identical columns — while the duty-cycled variant halves
    the awake time.
    """
    n = 6
    topo = ring(n)
    tx_sets = [[i] for i in range(n)]
    non_sleeping = Schedule.non_sleeping(n, tx_sets)
    rx_sets = [sorted(topo.neighbors(i)) for i in range(n)]
    duty = Schedule.from_sets(n, tx_sets, rx_sets)

    table = Table("link", "slots_non_sleeping", "slots_duty_cycled", "equal",
                  title="Figure 1 (reconstructed): per-link guaranteed "
                        "successes per frame on the 6-ring")
    all_equal = True
    for x, y in topo.directed_links():
        s = tuple(sorted(topo.neighbors(y) - {x}))
        a = guaranteed_slots(non_sleeping, x, y, s).bit_count()
        b = guaranteed_slots(duty, x, y, s).bit_count()
        equal = a == b
        all_equal = all_equal and equal
        table.row(link=f"{x}->{y}", slots_non_sleeping=a, slots_duty_cycled=b,
                  equal=equal)
    info = {
        "all_links_equal": all_equal,
        "duty_cycle_non_sleeping": float(non_sleeping.average_duty_cycle()),
        "duty_cycle_duty": float(duty.average_duty_cycle()),
        "non_sleeping": non_sleeping,
        "duty": duty,
        "topology": topo,
    }
    return table, info


# ---------------------------------------------------------------------------
# E11 — Theorem 1
# ---------------------------------------------------------------------------

def thm1_equivalence(*, trials: int = 40, n: int = 6, length: int = 8,
                     d: int = 2, seed: int = 0) -> Table:
    """Theorem 1: Requirement 2 and Requirement 3 agree on random schedules.

    Each trial draws a uniformly random schedule and evaluates both
    definitional checkers; the theorem says the verdicts match always.
    """
    rng = np.random.default_rng(seed)
    table = Table("trial", "requirement2", "requirement3", "agree",
                  title=f"Theorem 1: Req2 <=> Req3 over {trials} random "
                        f"schedules (n={n}, L={length}, D={d})")
    for t in range(trials):
        sched = random_schedule(n, length, rng)
        r2 = satisfies_requirement2(sched, d)
        r3 = satisfies_requirement3(sched, d)
        table.row(trial=t, requirement2=r2, requirement3=r3, agree=r2 == r3)
    return table


# ---------------------------------------------------------------------------
# E2 — Theorem 2
# ---------------------------------------------------------------------------

def thm2_validation(*, trials: int = 20, n: int = 7, length: int = 6,
                    d: int = 3, seed: int = 1) -> Table:
    """Theorem 2: the closed form equals the literal Definition 2 sum."""
    rng = np.random.default_rng(seed)
    table = Table("trial", "closed_form", "brute_force", "equal",
                  title="Theorem 2: closed form vs Definition 2 "
                        f"(n={n}, L={length}, D={d})")
    for t in range(trials):
        sched = random_schedule(n, length, rng)
        closed = average_throughput(sched, d)
        brute = average_throughput_bruteforce(sched, d)
        table.row(trial=t, closed_form=closed, brute_force=brute,
                  equal=closed == brute)
    return table


# ---------------------------------------------------------------------------
# E3 — Theorem 3
# ---------------------------------------------------------------------------

def thm3_sweep(*, ns=(10, 16, 25, 40, 64, 100), ds=(2, 3, 4, 6)) -> Table:
    """Theorem 3: the general upper bound and its optimizer over (n, D).

    Also verifies numerically that ``alpha_T*`` maximizes ``g`` over all
    integer transmitter counts and that the loose closed-form bound
    dominates the tight one.
    """
    table = Table("n", "D", "alpha_t_star", "thr_star", "loose_bound",
                  "maximizer_verified", "loose_dominates",
                  title="Theorem 3: general average-throughput upper bound")
    for n in ns:
        for d in ds:
            if d > n - 1:
                continue
            at = optimal_transmitters_general(n, d)
            thr = general_upper_bound(n, d)
            loose = g_upper_bound(n, d)
            best = max(g(n, d, x) for x in range(n))
            table.row(n=n, D=d, alpha_t_star=at, thr_star=thr,
                      loose_bound=loose,
                      maximizer_verified=(thr == best),
                      loose_dominates=(loose >= thr))
    return table


# ---------------------------------------------------------------------------
# E4 — Theorem 4
# ---------------------------------------------------------------------------

def thm4_sweep(*, n: int = 30, d: int = 3,
               alpha_ts=(1, 2, 4, 6, 9, 12),
               alpha_rs=(2, 4, 8, 12, 18)) -> Table:
    """Theorem 4: the (alpha_T, alpha_R) bound across the energy knobs.

    Shows the paper's reading: the bound is linear in ``alpha_R`` and
    saturates in ``alpha_T`` once ``alpha_T`` passes ``~ (n - D)/D``.
    """
    table = Table("alpha_t", "alpha_r", "alpha_t_star", "bound",
                  "fraction_of_general",
                  title=f"Theorem 4: (aT, aR) upper bound, n={n}, D={d}")
    general = general_upper_bound(n, d)
    for at in alpha_ts:
        for ar in alpha_rs:
            if at + ar > n:
                continue
            star = optimal_transmitters_constrained(n, d, at)
            bound = constrained_upper_bound(n, d, at, ar)
            table.row(alpha_t=at, alpha_r=ar, alpha_t_star=star, bound=bound,
                      fraction_of_general=Fraction(bound, general)
                      if general else Fraction(0))
    return table


# ---------------------------------------------------------------------------
# E5 — Figure 2 / Theorems 6-7
# ---------------------------------------------------------------------------

def _source_families(n: int, d: int) -> list[tuple[str, Schedule]]:
    """Every substrate family admissible for (n, D)."""
    out: list[tuple[str, Schedule]] = [("tdma", tdma_schedule(n))]
    out.append(("polynomial", polynomial_schedule(n, d)))
    if d <= 2:
        out.append(("steiner", steiner_schedule(n, d)))
    out.append(("projective", projective_plane_schedule(n, d)))
    return out


def fig2_construction(*, n: int = 15, d: int = 2, alpha_t: int = 3,
                      alpha_r: int = 5, verify: bool = True) -> Table:
    """Figure 2 + Theorems 6-7 on every substrate family.

    For each topology-transparent non-sleeping source: run the
    construction, check the (alpha_T, alpha_R) caps and (optionally, it is
    the expensive part) exact topology transparency of both source and
    output, and compare the constructed frame length with Theorem 7's
    exact formula and upper bound.
    """
    table = Table("family", "L_source", "L_constructed", "formula_exact",
                  "formula_bound", "alpha_caps_ok", "source_tt",
                  "constructed_tt",
                  title=f"Figure 2 construction (n={n}, D={d}, "
                        f"aT={alpha_t}, aR={alpha_r})")
    for name, source in _source_families(n, d):
        res = construct_detailed(source, d, alpha_t, alpha_r)
        built = res.schedule
        exact, bound = frame_length_formula(source, res.alpha_t_star, alpha_r)
        table.row(
            family=name,
            L_source=source.frame_length,
            L_constructed=built.frame_length,
            formula_exact=exact,
            formula_bound=bound,
            alpha_caps_ok=built.is_alpha_schedule(alpha_t, alpha_r),
            source_tt=is_topology_transparent(source, d) if verify else "skipped",
            constructed_tt=is_topology_transparent(built, d) if verify else "skipped",
        )
    return table


# ---------------------------------------------------------------------------
# E6 — Theorem 8
# ---------------------------------------------------------------------------

def thm8_optimality(*, n: int = 25, d: int = 3, alpha_r: int = 6,
                    alpha_ts=(2, 4, 7)) -> Table:
    """Theorem 8: measured optimality ratio vs the paper's lower bound.

    Sources with ``min |T[i]| >= alpha_T*`` (the polynomial family) must
    land exactly on ratio 1; TDMA (``|T[i]| = 1``) exercises the general
    bound, which must hold from below.
    """
    table = Table("family", "alpha_t", "alpha_t_star", "min_T", "ratio",
                  "bound", "bound_holds", "optimal",
                  title="Theorem 8: Thr_ave(constructed)/Thr* "
                        f"(n={n}, D={d}, aR={alpha_r})")
    families = [("tdma", tdma_schedule(n)), ("polynomial", polynomial_schedule(n, d))]
    for at in alpha_ts:
        for name, source in families:
            star = optimal_transmitters_constrained(n, d, at)
            res = construct_detailed(source, d, at, alpha_r)
            ratio = Fraction(
                average_throughput(res.schedule, d),
                constrained_upper_bound(n, d, at, alpha_r),
            )
            bound = thm8_ratio_lower_bound(source, d, at, alpha_r)
            min_t = min(source.tx_counts)
            table.row(family=name, alpha_t=at, alpha_t_star=star, min_T=min_t,
                      ratio=ratio, bound=bound, bound_holds=ratio >= bound,
                      optimal=(ratio == 1))
    return table


# ---------------------------------------------------------------------------
# E7 — Theorem 9
# ---------------------------------------------------------------------------

def thm9_min_throughput(*, n: int = 12, d: int = 2, alpha_t: int = 3,
                        alpha_r: int = 4) -> Table:
    """Theorem 9: the constructed schedule's minimum throughput bounds.

    Exact adversarial minimum throughput is exponential-ish, so the
    instance is kept small; both the sharp ``(L / L_bar) Thr_min`` form
    and the closed-form expansion bound must hold.
    """
    table = Table("family", "thr_min_source", "thr_min_constructed",
                  "sharp_bound", "closed_bound", "sharp_holds", "closed_holds",
                  title=f"Theorem 9: minimum throughput (n={n}, D={d}, "
                        f"aT={alpha_t}, aR={alpha_r})")
    for name, source in _source_families(n, d):
        res = construct_detailed(source, d, alpha_t, alpha_r)
        built = res.schedule
        src_min = min_throughput(source, d)
        built_min = min_throughput(built, d)
        sharp = thm9_min_throughput_bound(source, d, alpha_t, alpha_r,
                                          constructed_length=built.frame_length)
        closed = thm9_min_throughput_bound(source, d, alpha_t, alpha_r)
        table.row(family=name, thr_min_source=src_min,
                  thr_min_constructed=built_min, sharp_bound=sharp,
                  closed_bound=closed, sharp_holds=built_min >= sharp,
                  closed_holds=built_min >= closed)
    return table


# ---------------------------------------------------------------------------
# E8 — simulation vs theory
# ---------------------------------------------------------------------------

def sim_validation(*, n: int = 26, d: int = 3, alpha_t: int = 4,
                   alpha_r: int = 8, frames: int = 3, seed: int = 11) -> Table:
    """Simulated worst-case traffic reproduces the analytic slot counts.

    On a random D-regular topology under saturated traffic, every directed
    link's measured successes per frame must equal ``|T(x, y, S)|`` with
    ``S`` the receiver's true other neighbours — for the non-sleeping
    source and the constructed duty-cycled schedule alike.  The table
    aggregates per schedule; per-link equality is the ``exact_match``
    column.
    """
    topo = worst_case_regular(n, d, seed=seed)
    source = polynomial_schedule(n, d)
    built = construct_detailed(source, d, alpha_t, alpha_r).schedule
    table = Table("schedule", "frame", "links", "exact_match",
                  "mean_successes_per_frame", "awake_fraction",
                  title=f"Simulation vs theory (saturated worst case, n={n}, D={d})")
    for name, sched in (("non-sleeping", source), ("constructed", built)):
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        metrics = sim.run(frames=frames)
        links = topo.directed_links()
        match = True
        total = 0
        for x, y in links:
            s = tuple(sorted(topo.neighbors(y) - {x}))
            analytic = guaranteed_slots(sched, x, y, s).bit_count()
            measured = metrics.successes.get((x, y), 0) / frames
            total += measured
            if measured != analytic:
                match = False
        table.row(schedule=name, frame=sched.frame_length, links=len(links),
                  exact_match=match,
                  mean_successes_per_frame=total / len(links),
                  awake_fraction=sim.energy.awake_fraction())
    return table


# ---------------------------------------------------------------------------
# E9 — energy / latency / collisions
# ---------------------------------------------------------------------------

def energy_latency_study(*, rows: int = 5, cols: int = 5, d: int = 4,
                         rate: float = 0.01, frames: int = 40,
                         naive_k: int = 8, alpha_t: int = 4, alpha_r: int = 6,
                         seed: int = 3) -> Table:
    """The introduction's motivation, measured.

    Light Poisson traffic on a grid under: always-on TDMA (baseline energy
    hog), naive k-slot duty cycling (collision concentration), and the
    paper's constructed TT schedule.  Reports delivery ratio, collisions,
    latency percentiles, awake fraction and energy per delivered packet.
    """
    topo = grid(rows, cols)
    n = rows * cols
    schedules: list[tuple[str, Schedule]] = [
        ("always-on TDMA", tdma_schedule(n)),
        ("naive 1-of-k", naive_duty_cycle(n, naive_k,
                                          rng=np.random.default_rng(seed))),
        ("constructed TT", construct_detailed(
            polynomial_schedule(n, d), d, alpha_t, alpha_r).schedule),
    ]
    table = Table("scheme", "frame", "delivery_ratio", "collisions",
                  "latency_p50", "latency_p95", "awake_fraction",
                  "mj_per_delivered",
                  title="Energy/latency under light traffic "
                        f"({rows}x{cols} grid, rate={rate}/node/slot)")
    slots = frames * max(s.frame_length for _, s in schedules)
    for name, sched in schedules:
        rng = np.random.default_rng(seed)
        traffic = PoissonTraffic(topo, rate, rng)
        sim = Simulator(topo, sched, traffic, energy_model=EnergyModel())
        metrics = sim.run_slots(slots)
        energy = sim.energy.total_mj()
        table.row(
            scheme=name,
            frame=sched.frame_length,
            delivery_ratio=metrics.delivery_ratio(),
            collisions=metrics.total_collisions(),
            latency_p50=metrics.latency_percentile(50),
            latency_p95=metrics.latency_percentile(95),
            awake_fraction=sim.energy.awake_fraction(),
            mj_per_delivered=energy / metrics.delivered
            if metrics.delivered else float("inf"),
        )
    # The unscheduled pole: slotted p-persistent ALOHA at the same load.
    from repro.baselines.aloha import AlohaSimulator

    aloha = AlohaSimulator(
        topo, PoissonTraffic(topo, rate, np.random.default_rng(seed)),
        p=0.2, rng=np.random.default_rng(seed + 1),
        energy_model=EnergyModel())
    metrics = aloha.run_slots(slots)
    table.row(
        scheme="slotted ALOHA",
        frame="-",
        delivery_ratio=metrics.delivery_ratio(),
        collisions=metrics.total_collisions(),
        latency_p50=metrics.latency_percentile(50),
        latency_p95=metrics.latency_percentile(95),
        awake_fraction=aloha.energy.awake_fraction(),
        mj_per_delivered=aloha.energy.total_mj() / metrics.delivered
        if metrics.delivered else float("inf"),
    )
    return table


# ---------------------------------------------------------------------------
# E10 — balanced-energy variant
# ---------------------------------------------------------------------------

def balanced_energy_study(*, n: int = 25, d: int = 4, alpha_t: int = 3,
                          alpha_r: int = 10, frames: int = 2,
                          seed: int = 5) -> Table:
    """Section 7's balanced divisions vs the plain construction.

    The defaults pick a transmit-uniform source (the n = q**(k+1)
    polynomial family: every slot has exactly q transmitters, every node
    transmits q times) with a chunk size that does *not* divide the slot
    transmitter count — the regime where the plain contiguous division's
    overlapping last chunk favours some nodes.  The balanced variant must
    then restore an identical transmit share for every node, and the
    simulated energy drain's Jain fairness must not decrease.
    """
    source = polynomial_schedule(n, d)
    topo = worst_case_regular(n, d, seed=seed)
    table = Table("variant", "frame", "tx_share_min", "tx_share_max",
                  "tx_share_equal", "jain_energy",
                  title=f"Balanced-energy construction (n={n}, D={d}, "
                        f"aT={alpha_t}, aR={alpha_r})")
    for name, balanced in (("plain", False), ("balanced", True)):
        built = construct_detailed(source, d, alpha_t, alpha_r,
                                   balanced=balanced).schedule
        shares = [built.transmit_share(x) for x in range(n)]
        sim = Simulator(topo, built, SaturatedTraffic(topo))
        sim.run(frames=frames)
        table.row(variant=name, frame=built.frame_length,
                  tx_share_min=min(shares), tx_share_max=max(shares),
                  tx_share_equal=(min(shares) == max(shares)),
                  jain_energy=sim.energy.jain_fairness())
    return table


# ---------------------------------------------------------------------------
# E12 — substrate comparison
# ---------------------------------------------------------------------------

def substrate_scale(*, ns=(10, 25, 50, 100), ds=(2, 3, 5)) -> Table:
    """Frame lengths of every substrate family across (n, D).

    The table the construction's user consults: which source family gives
    the shortest frame (hence lowest latency bound) at each scale.
    """
    table = Table("n", "D", "tdma_L", "polynomial_L", "steiner_L",
                  "projective_L", "best",
                  title="Substrate frame lengths across (n, D)")
    for n in ns:
        for d in ds:
            if d > n - 1:
                continue
            lengths: dict[str, int | None] = {
                "tdma": tdma_schedule(n).frame_length,
                "polynomial": polynomial_schedule(n, d).frame_length,
                "steiner": steiner_schedule(n, d).frame_length if d <= 2 else None,
                "projective": projective_plane_schedule(n, d).frame_length,
            }
            valid = {k: v for k, v in lengths.items() if v is not None}
            best = min(valid, key=lambda k: valid[k])
            table.row(n=n, D=d, tdma_L=lengths["tdma"],
                      polynomial_L=lengths["polynomial"],
                      steiner_L=lengths["steiner"] if lengths["steiner"] else "-",
                      projective_L=lengths["projective"], best=best)
    return table


# ---------------------------------------------------------------------------
# dynamic-topology demonstration (E9 companion)
# ---------------------------------------------------------------------------

def dynamic_topology_study(*, rows: int = 4, cols: int = 4, d: int = 4,
                           period: int = 400, slots: int = 8000,
                           rewires: int = 6, seed: int = 9) -> Table:
    """Topology transparency vs a topology-dependent colouring, under churn.

    Both schemes run periodic sensing to a sink on a grid at the *same
    absolute offered load* (one report per node per *period* slots);
    halfway through the study, edges are rewired (within the degree
    bound).  The colouring schedule — computed for the *old* topology —
    starts colliding and losing links; the transparent schedule keeps its
    guarantee.  Routing tables are refreshed for both (routing is cheap;
    re-running a global slot assignment is not).
    """
    rng = np.random.default_rng(seed)
    n = rows * cols
    before = grid(rows, cols)
    after = _rewire(before, d, rewires, rng)
    tt = construct_detailed(polynomial_schedule(n, d), d, 4,
                            max(4, n - 20)).schedule
    colored = coloring_schedule(before)
    table = Table("scheme", "phase", "delivery_ratio", "collisions",
                  "mean_latency",
                  title="Dynamic topology: transparent vs colouring TDMA "
                        f"(one report per node per {period} slots)")
    for name, sched in (("constructed TT", tt), ("d2-colouring", colored)):
        for phase, topo in (("before", before), ("after", after)):
            traffic = PeriodicSensingTraffic(topo, sink=0, period=period)
            sim = Simulator(topo, sched, traffic, next_hops=sink_tree(topo, 0))
            metrics = sim.run_slots(slots)
            table.row(scheme=name, phase=phase,
                      delivery_ratio=metrics.delivery_ratio(),
                      collisions=metrics.total_collisions(),
                      mean_latency=metrics.mean_latency())
    return table


def latency_load_curve(*, n: int = 9, d: int = 2, alpha_t: int = 2,
                       alpha_r: int = 4,
                       rates=(0.001, 0.005, 0.02, 0.05, 0.1, 0.2),
                       slots: int = 40_000, seed: int = 17) -> tuple[Table, dict]:
    """Single-link latency vs offered load, with analytic anchors.

    A two-node link under a constructed schedule: packets arrive at node 0
    (Poisson, per-slot rate swept) addressed to node 1.  The curve must be
    pinned at both ends by theory:

    * **zero load**: the mean delivery latency tends to the exact
      uniform-phase expectation ``mean_cyclic_wait(sigma(0,1), L)``;
    * **saturation**: deliveries per frame tend to ``|sigma(0,1)|`` — with
      no interferers every eligible slot serves the backlog.

    Between the anchors the curve is the usual queueing hockey stick.
    """
    from repro.core.latency import mean_cyclic_wait
    from repro.core.transparency import sigma as sigma_fn

    n, d = check_class_params(n, d)
    sched = construct_detailed(polynomial_schedule(n, d), d, alpha_t,
                               alpha_r).schedule
    topo = Topology.from_edges(n, [(0, 1)])
    service_mask = sigma_fn(sched, 0, 1)
    service_per_frame = service_mask.bit_count()
    zero_load_latency = mean_cyclic_wait(service_mask, sched.frame_length)

    class _LinkTraffic:
        """Poisson arrivals at node 0 for node 1 only."""

        saturated = False

        def __init__(self, rate: float, rng: np.random.Generator):
            self.rate = rate
            self.rng = rng

        def arrivals(self, slot: int) -> list[tuple[int, int]]:
            """Newborn (0 -> 1) demands this slot."""
            return [(0, 1)] * int(self.rng.poisson(self.rate))

    table = Table("rate_per_slot", "mean_latency", "deliveries_per_frame",
                  "delivery_ratio",
                  title=f"Latency vs load on one link (L={sched.frame_length},"
                        f" service slots/frame={service_per_frame}, "
                        f"zero-load analytic={float(zero_load_latency):.2f})")
    for rate in rates:
        rng = np.random.default_rng(seed)
        sim = Simulator(topo, sched, _LinkTraffic(rate, rng),
                        queue_limit=10_000)
        metrics = sim.run_slots(slots)
        frames = slots / sched.frame_length
        table.row(rate_per_slot=rate,
                  mean_latency=metrics.mean_latency(),
                  deliveries_per_frame=metrics.delivered / frames,
                  delivery_ratio=metrics.delivery_ratio())
    info = {
        "zero_load_latency": zero_load_latency,
        "service_per_frame": service_per_frame,
        "frame_length": sched.frame_length,
    }
    return table, info


def energy_latency_replicated(*, rows: int = 4, cols: int = 4, d: int = 4,
                              rate: float = 0.01, frames: int = 30,
                              naive_k: int = 8, alpha_t: int = 3,
                              alpha_r: int = 6,
                              seeds=(0, 1, 2, 3, 4)) -> tuple[Table, dict]:
    """E9 with statistical teeth: means ± 95% CI over independent seeds.

    Replicates the energy/latency study across seeds (fresh traffic and
    naive-offset draws per seed) and reports interval estimates, plus the
    Welch p-value for the headline comparison (energy per delivered
    packet, constructed TT vs always-on TDMA).
    """
    from repro.analysis.stats import replicate, welch_t_test

    topo = grid(rows, cols)
    n = rows * cols

    def make_schedules(seed: int) -> list[tuple[str, Schedule]]:
        return [
            ("always-on TDMA", tdma_schedule(n)),
            ("naive 1-of-k", naive_duty_cycle(
                n, naive_k, rng=np.random.default_rng(seed + 1000))),
            ("constructed TT", construct_detailed(
                polynomial_schedule(n, d), d, alpha_t, alpha_r).schedule),
        ]

    per_scheme_samples: dict[str, dict[str, list[float]]] = {}
    estimates: dict[str, dict] = {}
    for scheme_idx in range(3):
        def run(seed: int, scheme_idx=scheme_idx):
            name, sched = make_schedules(seed)[scheme_idx]
            rng = np.random.default_rng(seed)
            traffic = PoissonTraffic(topo, rate, rng)
            sim = Simulator(topo, sched, traffic, energy_model=EnergyModel())
            # Same wall-clock budget for every scheme: the longest frame
            # times the requested frame count.
            slots = frames * max(s2.frame_length
                                 for _, s2 in make_schedules(seed))
            metrics = sim.run_slots(slots)
            delivered = metrics.delivered or 1
            return {
                "delivery_ratio": metrics.delivery_ratio(),
                "collisions_per_kslot":
                    1000.0 * metrics.total_collisions() / slots,
                "mj_per_delivered": sim.energy.total_mj() / delivered,
                "awake_fraction": sim.energy.awake_fraction(),
            }

        name = make_schedules(0)[scheme_idx][0]
        estimates[name] = replicate(run, seeds)
        per_scheme_samples[name] = {
            k: list(v.samples) for k, v in estimates[name].items()
        }

    table = Table("scheme", "delivery_ratio", "collisions_per_kslot",
                  "mj_per_delivered", "awake_fraction",
                  title=f"Energy/latency, mean ± 95% CI over {len(seeds)} "
                        f"seeds ({rows}x{cols} grid, rate={rate})")
    for name, est in estimates.items():
        table.row(scheme=name,
                  delivery_ratio=str(est["delivery_ratio"]),
                  collisions_per_kslot=str(est["collisions_per_kslot"]),
                  mj_per_delivered=str(est["mj_per_delivered"]),
                  awake_fraction=str(est["awake_fraction"]))
    p_value = welch_t_test(
        per_scheme_samples["constructed TT"]["mj_per_delivered"],
        per_scheme_samples["always-on TDMA"]["mj_per_delivered"])
    return table, {"estimates": estimates, "energy_p_value": p_value}


def split_ratio_study(*, n: int = 30, d: int = 3, budget: int = 12) -> Table:
    """Why the paper's general (alpha_T, alpha_R) analysis matters.

    The prior work it differentiates from (Dukes/Colbourn/Syrotiuk,
    FAWN'06) focuses on schedules with *equal* per-slot transmitter and
    receiver counts.  Fix the awake budget ``alpha_T + alpha_R = budget``
    and sweep the split: Theorem 4 says throughput is ``alpha_R`` times a
    term maximized at ``alpha_T ~ (n-D)/D``, so for budgets above
    ``2(n-D)/D`` the equal split wastes transmitter slots that should have
    been receivers.  The table reports the Theorem 4 bound and the exact
    throughput of the constructed schedule at every split, flagging the
    optimum — the paper's asymmetric analysis recovers whatever the equal
    split leaves on the table.
    """
    n, d = check_class_params(n, d)
    source = polynomial_schedule(n, d)
    table = Table("alpha_t", "alpha_r", "bound", "constructed_throughput",
                  "equal_split", "best_split",
                  title=f"Fixed awake budget aT + aR = {budget} "
                        f"(n={n}, D={d}): split sweep")
    rows = []
    for alpha_t in range(1, budget):
        alpha_r = budget - alpha_t
        bound = constrained_upper_bound(n, d, alpha_t, alpha_r)
        built = construct_detailed(source, d, alpha_t, alpha_r).schedule
        rows.append({
            "alpha_t": alpha_t,
            "alpha_r": alpha_r,
            "bound": bound,
            "constructed_throughput": average_throughput(built, d),
            "equal_split": alpha_t == alpha_r,
        })
    best = max(r["constructed_throughput"] for r in rows)
    for r in rows:
        r["best_split"] = r["constructed_throughput"] == best
        table.row(**r)
    return table


def drift_robustness_study(*, n: int = 16, d: int = 3, alpha_t: int = 3,
                           alpha_r: int = 6, frames: int = 3,
                           max_offsets=(0, 1, 2, 4, 8),
                           seed: int = 21) -> Table:
    """How fast the guarantee erodes when slot synchrony weakens.

    The paper assumes "an efficient synchronization scheme is available"
    (section 1).  This study injects bounded per-node clock offsets and
    measures, under saturated worst-case traffic, what fraction of the
    analytically guaranteed per-link successes survive.  Offset 0 must
    reproduce the theory exactly; the decay curve quantifies how much
    synchronization quality the scheme actually needs.
    """
    from repro.simulation.drift import ClockDrift

    if (n * d) % 2 != 0:
        raise ValueError("pick n*D even for the regular worst case; got "
                         f"n={n}, D={d}")
    topo = worst_case_regular(n, d, seed=seed)
    sched = construct_detailed(polynomial_schedule(n, d), d, alpha_t,
                               alpha_r).schedule
    links = topo.directed_links()
    expected = 0
    for x, y in links:
        s = tuple(sorted(topo.neighbors(y) - {x}))
        expected += guaranteed_slots(sched, x, y, s).bit_count()
    expected *= frames
    table = Table("max_offset", "successes", "expected_synchronous",
                  "survival", "links_fully_served",
                  title=f"Clock-drift robustness (n={n}, D={d}, "
                        f"L={sched.frame_length})")
    rng = np.random.default_rng(seed)
    for off in max_offsets:
        drift = ClockDrift.uniform(topo.n, off, rng=rng)
        sim = Simulator(topo, sched, SaturatedTraffic(topo), drift=drift)
        metrics = sim.run(frames=frames)
        total = sum(metrics.successes.values())
        served = sum(
            1 for x, y in links if metrics.successes.get((x, y), 0) >= frames
        )
        table.row(max_offset=off, successes=total,
                  expected_synchronous=expected,
                  survival=total / expected if expected else 0.0,
                  links_fully_served=f"{served}/{len(links)}")
    return table


def mobility_study(*, n: int = 16, d: int = 4, epochs: int = 5,
                   radius: float = 0.45, speed: float = 0.15,
                   seed: int = 13) -> Table:
    """Topology transparency under continuous node movement.

    A random-waypoint field evolves across epochs while ONE constructed
    schedule serves every snapshot (no recomputation).  Under saturated
    traffic, the transparency guarantee demands every directed link of
    every epoch's topology at least one success per frame — verified per
    epoch.
    """
    from repro.simulation.mobility import RandomWaypointMobility

    sched = construct_detailed(polynomial_schedule(n, d), d, 4,
                               max(4, n // 3)).schedule
    mob = RandomWaypointMobility(n=n, d=d, radius=radius, speed=speed,
                                 rng=np.random.default_rng(seed))
    table = Table("epoch", "edges", "max_degree", "links_served",
                  "all_links_guaranteed",
                  title=f"Mobility: one schedule across {epochs} evolving "
                        f"topologies (n={n}, D={d})")
    for epoch, topo in enumerate(mob.trajectory(epochs)):
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        metrics = sim.run(frames=1)
        links = topo.directed_links()
        served = sum(1 for x, y in links
                     if metrics.successes.get((x, y), 0) >= 1)
        table.row(epoch=epoch, edges=len(topo.edges),
                  max_degree=topo.max_degree,
                  links_served=f"{served}/{len(links)}",
                  all_links_guaranteed=(served == len(links)))
    return table


def _rewire(topology: Topology, d: int, count: int,
            rng: np.random.Generator) -> Topology:
    """Replace *count* random edges with fresh ones respecting the degree cap."""
    edges = set(topology.edges)
    n = topology.n
    removable = sorted(edges)
    rng.shuffle(removable)  # type: ignore[arg-type]
    for e in removable[:count]:
        edges.discard(e)
    degree = [0] * n
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    added = 0
    attempts = 0
    while added < count and attempts < 200:
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e in edges or degree[u] >= d or degree[v] >= d:
            continue
        edges.add(e)
        degree[u] += 1
        degree[v] += 1
        added += 1
    return Topology(n, frozenset(edges))
