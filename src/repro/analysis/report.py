"""Schedule certification reports.

A deployment wants one artifact that says what a schedule guarantees and
costs.  :func:`certification_report` gathers everything this library can
establish about a schedule for a class ``N_n^D`` — transparency (with
witness on failure), exact throughput quantities against their theorem
bounds, duty-cycle and per-node share statistics, frame/latency bounds —
and renders it as markdown.  The CLI exposes it as ``python -m repro
report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro._validation import check_class_params
from repro.core.latency import frame_delay_bound, worst_link_access_delay
from repro.core.schedule import Schedule
from repro.core.throughput import (
    average_throughput,
    constrained_upper_bound,
    general_upper_bound,
    min_throughput,
)
from repro.core.transparency import (
    find_transparency_violation,
    is_topology_transparent,
)

__all__ = ["CertificationReport", "certification_report"]


@dataclass(frozen=True)
class CertificationReport:
    """Everything the library can certify about one schedule.

    Produced by :func:`certification_report`; render with
    :meth:`to_markdown`.
    """

    n: int
    d: int
    frame_length: int
    transparent: bool
    violation: tuple[int, int, tuple[int, ...]] | None
    alpha_t: int
    alpha_r: int
    average_throughput: Fraction
    minimum_throughput: Fraction
    theorem4_bound: Fraction
    general_bound: Fraction
    optimality_ratio: Fraction
    average_duty_cycle: Fraction
    duty_min: Fraction
    duty_max: Fraction
    frame_delay_bound: int
    worst_access_delay: int | None
    extras: dict[str, Any]

    def to_markdown(self) -> str:
        """Render the certificate as a markdown document."""
        lines = [
            f"# Schedule certificate — class N_{self.n}^{self.d}",
            "",
            f"- frame length: **{self.frame_length}** slots",
            f"- per-slot caps: alpha_T = {self.alpha_t}, "
            f"alpha_R = {self.alpha_r}",
            "",
            "## Topology transparency",
            "",
        ]
        if self.transparent:
            lines.append(
                "**TRANSPARENT**: every node reaches every possible "
                "neighbour collision-free at least once per frame, in every "
                f"network with <= {self.n} nodes and degree <= {self.d}.")
        else:
            lines.append(
                "**NOT transparent.** Witness: with receiver "
                f"{self.violation[1]} surrounded by interferers "        # type: ignore[index]
                f"{self.violation[2]}, node {self.violation[0]} has no "  # type: ignore[index]
                "collision-free slot.")
        lines += [
            "",
            "## Worst-case throughput (exact rationals)",
            "",
            "- average (Definition 2 / Theorem 2): "
            f"**{float(self.average_throughput):.6f}** "
            f"(= {self.average_throughput})",
            "- Theorem 4 bound for these caps: "
            f"{float(self.theorem4_bound):.6f}",
            f"- optimality ratio: **{float(self.optimality_ratio):.4f}**"
            + (" — provably optimal (Theorem 8 equality)"
               if self.optimality_ratio == 1 else ""),
            "- minimum (Definition 1, adversarial neighbourhood): "
            f"{float(self.minimum_throughput):.6f}",
            "- unconstrained optimum (Theorem 3): "
            f"{float(self.general_bound):.6f}",
            "",
            "## Energy",
            "",
            f"- average duty cycle: **{float(self.average_duty_cycle):.1%}**",
            "- per-node awake share range: "
            f"[{float(self.duty_min):.1%}, {float(self.duty_max):.1%}]",
            "",
            "## Latency",
            "",
            f"- generic per-hop bound (2L-1): {self.frame_delay_bound} slots",
        ]
        if self.worst_access_delay is not None:
            lines.append(
                "- exact worst-case per-hop access delay: "
                f"**{self.worst_access_delay}** slots")
        for key, value in self.extras.items():
            lines.append(f"- {key}: {value}")
        return "\n".join(lines) + "\n"


def certification_report(schedule: Schedule, d: int, *,
                         exact_latency: bool = False,
                         extras: dict[str, Any] | None = None
                         ) -> CertificationReport:
    """Certify *schedule* for the class ``N_{schedule.n}^d``.

    ``exact_latency=True`` additionally computes the exact worst-case
    access delay (exponential in ``d``; small instances only).
    """
    n, d = check_class_params(schedule.n, d)
    alpha_t = max(schedule.tx_counts)
    alpha_r = max(schedule.rx_counts)
    transparent = is_topology_transparent(schedule, d)
    violation = None if transparent else find_transparency_violation(schedule, d)
    avg = average_throughput(schedule, d)
    bound = constrained_upper_bound(n, d, max(alpha_t, 1), max(alpha_r, 1))
    duties = schedule.duty_cycles()
    return CertificationReport(
        n=n,
        d=d,
        frame_length=schedule.frame_length,
        transparent=transparent,
        violation=violation,
        alpha_t=alpha_t,
        alpha_r=alpha_r,
        average_throughput=avg,
        minimum_throughput=min_throughput(schedule, d),
        theorem4_bound=bound,
        general_bound=general_upper_bound(n, d),
        optimality_ratio=Fraction(avg, bound) if bound else Fraction(0),
        average_duty_cycle=schedule.average_duty_cycle(),
        duty_min=min(duties),
        duty_max=max(duties),
        frame_delay_bound=frame_delay_bound(schedule),
        worst_access_delay=(worst_link_access_delay(schedule, d)
                            if exact_latency and transparent else None),
        extras=dict(extras or {}),
    )
