"""Text-mode figures: bar charts and scatter/line plots without matplotlib.

The benchmark harness regenerates the paper's artefacts as tables; for the
curve-shaped ones (Theorem 3/4 bounds, the latency-load hockey stick, the
drift decay) a picture communicates the *shape* the reproduction is
supposed to match.  These renderers draw into plain character grids so the
figures live in terminals, logs and EXPERIMENTS.md alike.
"""

from __future__ import annotations

from typing import Sequence

from repro._validation import check_int

__all__ = ["bar_chart", "line_plot"]


def bar_chart(labels: Sequence[str], values: Sequence[float], *,
              width: int = 50, title: str | None = None) -> str:
    """Horizontal bar chart; bars scaled to the maximum value.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=10))  # doctest: +SKIP
    """
    width = check_int(width, "width", minimum=1)
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        raise ValueError("nothing to plot")
    vals = [float(v) for v in values]
    if any(v < 0 for v in vals):
        raise ValueError("bar_chart takes non-negative values")
    peak = max(vals) or 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = []
    if title:
        lines.append(title)
    for lab, v in zip(labels, vals):
        bar = "#" * max(1 if v > 0 else 0, round(v / peak * width))
        lines.append(f"{str(lab).rjust(label_w)} | {bar.ljust(width)} {v:g}")
    return "\n".join(lines)


def line_plot(xs: Sequence[float], ys: Sequence[float], *,
              width: int = 60, height: int = 15,
              title: str | None = None, log_y: bool = False) -> str:
    """Scatter/line plot on a character grid with axis annotations.

    Points are marked ``*``; x is scaled linearly, y linearly or
    logarithmically (``log_y=True``, requires positive ys).  Axis extremes
    are printed on the frame.
    """
    width = check_int(width, "width", minimum=2)
    height = check_int(height, "height", minimum=2)
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} xs but {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    import math

    fx = [float(x) for x in xs]
    fy = [float(y) for y in ys]
    if log_y:
        if any(y <= 0 for y in fy):
            raise ValueError("log_y requires positive y values")
        fy = [math.log10(y) for y in fy]
    x_lo, x_hi = min(fx), max(fx)
    y_lo, y_hi = min(fy), max(fy)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(fx, fy):
        col = round((x - x_lo) / x_span * (width - 1))
        row = height - 1 - round((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)

    def fmt(v: float) -> str:
        return f"{10**v:g}" if log_y else f"{v:g}"

    top_label = fmt(y_hi)
    bot_label = fmt(y_lo)
    label_w = max(len(top_label), len(bot_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_w)
        elif r == height - 1:
            prefix = bot_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(" " * label_w + f"  {x_lo:g}".ljust(width // 2)
                 + f"{x_hi:g}".rjust(width // 2))
    return "\n".join(lines)
