"""Statistical utilities for simulation studies.

Single-seed simulation numbers are anecdotes; the E9-class studies report
means with confidence intervals across independent seeds.  This module
provides the small, dependency-light pieces: Student-t confidence
intervals (via scipy), a replicated-run helper, and a significance check
for pairwise scheme comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import stats as sps

from repro._validation import check_int, check_probability

__all__ = ["Estimate", "t_confidence_interval", "replicate", "welch_t_test"]


@dataclass(frozen=True)
class Estimate:
    """A replicated measurement: mean, half-width, and the raw samples."""

    mean: float
    half_width: float
    samples: tuple[float, ...]

    @property
    def low(self) -> float:
        """Lower end of the confidence interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper end of the confidence interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def t_confidence_interval(samples: Sequence[float], *,
                          confidence: float = 0.95) -> Estimate:
    """Student-t confidence interval for the mean of *samples*.

    Requires at least two samples; a zero-variance sample set yields a
    zero half-width.
    """
    confidence = check_probability(confidence, "confidence")
    xs = np.asarray(list(samples), dtype=np.float64)
    if xs.size < 2:
        raise ValueError(f"need >= 2 samples for an interval, got {xs.size}")
    mean = float(xs.mean())
    sem = float(xs.std(ddof=1)) / np.sqrt(xs.size)
    if sem == 0.0:
        return Estimate(mean, 0.0, tuple(float(x) for x in xs))
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=xs.size - 1))
    return Estimate(mean, t * sem, tuple(float(x) for x in xs))


def replicate(run: Callable[[int], Mapping[str, float]], seeds: Sequence[int],
              *, confidence: float = 0.95) -> dict[str, Estimate]:
    """Run ``run(seed)`` for every seed and interval-estimate each metric.

    *run* returns a flat mapping of metric name to value; every seed must
    produce the same metric set.
    """
    if len(seeds) < 2:
        raise ValueError("need >= 2 seeds for interval estimates")
    collected: dict[str, list[float]] = {}
    expected: set[str] | None = None
    for seed in seeds:
        result = run(check_int(seed, "seed", minimum=0))
        keys = set(result)
        if expected is None:
            expected = keys
        elif keys != expected:
            raise ValueError(
                f"seed {seed} produced metrics {keys}, expected {expected}"
            )
        for key, value in result.items():
            collected.setdefault(key, []).append(float(value))
    return {
        key: t_confidence_interval(values, confidence=confidence)
        for key, values in collected.items()
    }


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided Welch t-test p-value for mean(a) != mean(b).

    Used to state that a scheme comparison (e.g. energy per delivered
    packet, TT vs always-on) is not a seed artifact.
    """
    xa = np.asarray(list(a), dtype=np.float64)
    xb = np.asarray(list(b), dtype=np.float64)
    if xa.size < 2 or xb.size < 2:
        raise ValueError("need >= 2 samples on each side")
    result = sps.ttest_ind(xa, xb, equal_var=False)
    return float(result.pvalue)
