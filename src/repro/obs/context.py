"""Request-scoped trace context: correlation ids that follow the work.

A provision request crosses many hops — client retry loop, failover
rotation, the asyncio server, the coalescer, a thread pool, the process
runtime, the schedule store.  This module gives every hop the same three
coordinates, carried in a :class:`contextvars.ContextVar` so they follow
``await`` points and (via :func:`contextvars.copy_context`) executor
submissions without any function-signature plumbing:

* ``trace_id`` — one id for the whole end-to-end request; every span and
  log line it touches carries it;
* ``span_id`` — the id of the *current* operation;
* ``parent_id`` — the ``span_id`` of the enclosing operation (``None``
  at the root), which is what lets a flat JSONL dump reassemble into a
  tree.

Usage is one context manager::

    from repro.obs.context import trace_context

    with trace_context() as ctx:          # new trace (generated ids)
        ...
    with trace_context(trace_id=tid, parent_id=pid):
        ...                               # adopt an incoming trace

:mod:`repro.obs.tracing` calls :func:`enter_span`/:func:`exit_span`
around every span so nested spans form the parentage chain, and
:mod:`repro.obs.logging` stamps ``trace_id`` onto every log record
emitted while a context is active.

Ids are 16 lowercase hex characters from ``os.urandom``.  Tests that
need replayable traces wrap the code under test in
:func:`deterministic_ids`, which swaps the generator for a seeded
SHA-256 counter — same seed, same id sequence, no global state leaked
after the ``with`` block.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceContext", "current", "current_trace_id", "trace_context",
           "new_trace_id", "new_span_id", "enter_span", "exit_span",
           "deterministic_ids"]

#: Length of every generated id, in hex characters (64 bits).
ID_HEX_LEN = 16


@dataclass(frozen=True)
class TraceContext:
    """The correlation coordinates of the current operation.

    Attributes
    ----------
    trace_id:
        Id shared by every operation of one end-to-end request.
    span_id:
        Id of the current operation.
    parent_id:
        ``span_id`` of the enclosing operation, or None at the root.
    """

    trace_id: str
    span_id: str
    parent_id: str | None

    def to_dict(self) -> dict[str, str | None]:
        """JSON-serializable form (e.g. for debug endpoints)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}


_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None)

# ---------------------------------------------------------------------------
# id generation
# ---------------------------------------------------------------------------
_det_lock = threading.Lock()
_det_state: list[object] | None = None  # [seed, counter] when deterministic


def _generate_id() -> str:
    """One fresh id: random normally, seeded-counter hash under
    :func:`deterministic_ids`."""
    global _det_state
    if _det_state is not None:
        with _det_lock:
            if _det_state is not None:  # re-check under the lock
                seed, counter = _det_state
                _det_state = [seed, int(counter) + 1]
                material = f"{seed}:{counter}".encode()
                return hashlib.sha256(material).hexdigest()[:ID_HEX_LEN]
    return os.urandom(ID_HEX_LEN // 2).hex()


def new_trace_id() -> str:
    """A fresh trace id (16 hex chars)."""
    return _generate_id()


def new_span_id() -> str:
    """A fresh span id (16 hex chars)."""
    return _generate_id()


@contextmanager
def deterministic_ids(seed: int | str = 0) -> Iterator[None]:
    """Make id generation a pure function of *seed* and call order.

    For replayable tests only — ids from different processes (or
    different seeds) remain distinct, but two runs of the same seeded
    code produce identical trace/span ids.  Restores random generation
    on exit.
    """
    global _det_state
    with _det_lock:
        previous, _det_state = _det_state, [seed, 0]
    try:
        yield
    finally:
        with _det_lock:
            _det_state = previous


# ---------------------------------------------------------------------------
# context access
# ---------------------------------------------------------------------------
def current() -> TraceContext | None:
    """The active :class:`TraceContext`, or None outside any trace."""
    return _current.get()


def current_trace_id() -> str | None:
    """The active trace id, or None outside any trace."""
    ctx = _current.get()
    return ctx.trace_id if ctx is not None else None


@contextmanager
def trace_context(trace_id: str | None = None,
                  parent_id: str | None = None) -> Iterator[TraceContext]:
    """Enter a trace scope: adopt *trace_id* or start a new trace.

    With *parent_id* (the caller's span id forwarded over the wire) the
    scope is **positioned at the caller's span** — ``span_id`` is set to
    *parent_id* — so the first span opened inside parents directly under
    the remote caller and the reassembled tree crosses the process
    boundary without an unrecorded intermediate node.  When called
    **inside** an active context with no arguments, the scope is a pure
    passthrough of that context (spans keep nesting under the active
    span).  Otherwise a new trace starts with a fresh root position.
    Restores the previous context on exit — exception-safe.
    """
    active = _current.get()
    if trace_id is None and parent_id is None and active is not None:
        yield active  # already tracing: nothing to reposition
        return
    if trace_id is None:
        trace_id = active.trace_id if active is not None else new_trace_id()
    span_id = parent_id if parent_id is not None else new_span_id()
    ctx = TraceContext(trace_id, span_id, None)
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def enter_span() -> tuple[TraceContext, Token]:
    """Open a child span scope; returns ``(context, token)``.

    Non-context-manager form for instrumentation that brackets entry and
    exit itself (:meth:`repro.obs.tracing.Tracer.span`).  Outside any
    trace this *starts* one, so every span always has a trace id.  The
    caller must pass *token* to :func:`exit_span` in a ``finally``.
    """
    active = _current.get()
    if active is None:
        ctx = TraceContext(new_trace_id(), new_span_id(), None)
    else:
        ctx = TraceContext(active.trace_id, new_span_id(), active.span_id)
    return ctx, _current.set(ctx)


def exit_span(token: Token) -> None:
    """Close the span scope opened by the matching :func:`enter_span`."""
    _current.reset(token)
