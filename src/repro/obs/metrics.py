"""Counters, gauges and fixed-bucket histograms with mergeable snapshots.

The measurement substrate of the whole stack.  Three instrument kinds,
all label-aware:

* :class:`Counter` — monotonically increasing totals (``inc``);
* :class:`Gauge` — last-write-wins level readings (``set``);
* :class:`Histogram` — fixed-bucket distributions (``observe``), the
  Prometheus cumulative-bucket model.

Instruments live in a :class:`MetricsRegistry`.  A process-global
default (:func:`default_registry`) serves code that does not thread a
registry through; anything that needs isolation — a store, a test, a
CLI invocation — injects its own instance.

Hot paths bind a series once (``counter.labels(result="hit")``) and pay
one attribute increment per event; no dict lookup, no string formatting.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain-JSON documents
with a declared ``format``/``version``, and they **merge**
(:meth:`MetricsRegistry.merge`): counters and histogram buckets add,
gauges take the incoming value.  That is how process-pool workers report
— each worker snapshots a private registry and the parent folds the
deltas in, so ``--jobs N`` and ``--jobs 1`` produce the same totals.
Exports: :meth:`~MetricsRegistry.to_json` and
:meth:`~MetricsRegistry.to_prometheus` (the text exposition format).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs import context as _context

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_registry", "set_default_registry",
           "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "DEFAULT_BUCKETS"]

#: ``format`` marker of every snapshot document.
SNAPSHOT_FORMAT = "repro-metrics"
#: Schema version of the snapshot document (see docs/observability.md).
SNAPSHOT_VERSION = 1

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class CounterSeries:
    """One labelled counter series; bind once, ``inc()`` on the hot path."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the series total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class GaugeSeries:
    """One labelled gauge series; ``set()`` overwrites the level."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level (last write wins)."""
        self.value = float(value)


class HistogramSeries:
    """One labelled histogram series: per-bucket counts plus sum/count.

    With *exemplars* enabled, each bucket also remembers its **worst
    recent** observation — ``{"value": v, "trace_id": t}`` — captured
    when a trace context is in flight at ``observe`` time.  That links a
    latency bucket back to one concrete request that landed in it.
    """

    __slots__ = ("labels", "bounds", "counts", "sum", "count", "exemplars")

    def __init__(self, labels: tuple[tuple[str, str], ...],
                 bounds: tuple[float, ...], exemplars: bool = False):
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.exemplars: list[dict[str, Any] | None] | None = \
            [None] * (len(bounds) + 1) if exemplars else None

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation into its bucket.

        *trace_id* overrides the ambient trace context for exemplar
        capture (callers that observe after their context has closed).
        """
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if self.exemplars is not None:
            if trace_id is None:
                trace_id = _context.current_trace_id()
            if trace_id is not None:
                previous = self.exemplars[index]
                if previous is None or value >= previous["value"]:
                    self.exemplars[index] = {"value": value,
                                             "trace_id": trace_id}


class _Metric:
    """Shared series bookkeeping for the three instrument kinds."""

    kind = "abstract"
    _series_cls: type = CounterSeries

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}

    def labels(self, **labels: Any):
        """The (created-on-first-use) series for this label combination."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._series_cls(key)
        return series

    def series(self) -> Iterator[Any]:
        """Every series of this metric, in insertion order."""
        return iter(self._series.values())


class Counter(_Metric):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"
    _series_cls = CounterSeries

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Increment the series selected by *labels* (convenience path)."""
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        """Current total of the series selected by *labels* (0 if unseen)."""
        series = self._series.get(_label_key(labels))
        return series.value if series is not None else 0.0

    def total(self) -> float:
        """Sum over every series of this counter."""
        return sum(s.value for s in self._series.values())


class Gauge(_Metric):
    """A last-write-wins level reading, optionally labelled."""

    kind = "gauge"
    _series_cls = GaugeSeries

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by *labels* to *value*."""
        self.labels(**labels).set(value)

    def value(self, **labels: Any) -> float:
        """Current level of the series selected by *labels* (0 if unseen)."""
        series = self._series.get(_label_key(labels))
        return series.value if series is not None else 0.0


class Histogram(_Metric):
    """A fixed-bucket distribution (cumulative Prometheus-style export)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 exemplars: bool = False):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate histogram bucket bounds")
        self.bounds = bounds
        self.exemplars = bool(exemplars)

    def labels(self, **labels: Any) -> HistogramSeries:
        """The (created-on-first-use) series for this label combination."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(
                key, self.bounds, exemplars=self.exemplars)
        return series

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation (convenience path; prefer bound series)."""
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """A named collection of instruments with snapshot/merge/export.

    Instrument accessors are idempotent: asking twice for the same name
    returns the same object, and asking for a name already registered as
    a different kind raises.  Series creation is locked; increments on
    bound series are plain attribute arithmetic.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # instrument accessors
    # ------------------------------------------------------------------
    def _register(self, cls: type, name: str, help: str,
                  **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls) or type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` called *name*."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` called *name*."""
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None,
                  exemplars: bool = False) -> Histogram:
        """Get or create the :class:`Histogram` called *name*.

        *buckets* and *exemplars* apply on first registration only; a
        later caller with different options gets the original instrument
        (bucket layout is part of a histogram's identity — it cannot
        change mid-flight).  ``exemplars=True`` makes every series keep
        the worst recent ``(value, trace_id)`` per bucket.
        """
        return self._register(Histogram, name, help,
                              buckets=buckets if buckets is not None
                              else DEFAULT_BUCKETS, exemplars=exemplars)

    def get(self, name: str) -> _Metric | None:
        """The instrument called *name*, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Every registered metric name, in registration order."""
        return list(self._metrics)

    def clear(self) -> None:
        """Drop every instrument and series (tests and re-runs)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON document of every series (see docs/observability.md).

        The document is self-describing (``format``/``version``) and is
        the unit of worker->parent metric transport: feed it to another
        registry's :meth:`merge` to aggregate.
        """
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if metric.kind == "counter":
                counters[name] = {
                    "help": metric.help,
                    "series": [{"labels": dict(s.labels), "value": s.value}
                               for s in metric.series()],
                }
            elif metric.kind == "gauge":
                gauges[name] = {
                    "help": metric.help,
                    "series": [{"labels": dict(s.labels), "value": s.value}
                               for s in metric.series()],
                }
            else:
                entries = []
                for s in metric.series():
                    entry: dict[str, Any] = {"labels": dict(s.labels),
                                             "counts": list(s.counts),
                                             "sum": s.sum, "count": s.count}
                    if s.exemplars is not None \
                            and any(e is not None for e in s.exemplars):
                        entry["exemplars"] = [dict(e) if e is not None
                                              else None
                                              for e in s.exemplars]
                    entries.append(entry)
                histograms[name] = {
                    "help": metric.help,
                    "buckets": list(metric.bounds),
                    "series": entries,
                }
        return {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION,
                "counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a snapshot's deltas into this registry.

        Counters and histogram buckets **add**; gauges take the incoming
        value (last write wins).  Unknown metrics are created on the fly,
        so merging a worker's registry into a fresh parent just works.
        Raises ``ValueError`` for documents that do not declare the
        snapshot format, or histogram merges with mismatched buckets.
        """
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ValueError("not a repro-metrics snapshot document")
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {snapshot.get('version')!r}")
        for name, doc in snapshot.get("counters", {}).items():
            counter = self.counter(name, doc.get("help", ""))
            for entry in doc.get("series", ()):
                counter.labels(**entry["labels"]).inc(entry["value"])
        for name, doc in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, doc.get("help", ""))
            for entry in doc.get("series", ()):
                gauge.labels(**entry["labels"]).set(entry["value"])
        for name, doc in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, doc.get("help", ""),
                                  buckets=tuple(doc["buckets"]))
            if list(hist.bounds) != [float(b) for b in doc["buckets"]]:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch on merge")
            for entry in doc.get("series", ()):
                series = hist.labels(**entry["labels"])
                for i, c in enumerate(entry["counts"]):
                    series.counts[i] += c
                series.sum += entry["sum"]
                series.count += entry["count"]
                incoming = entry.get("exemplars")
                if incoming:
                    if series.exemplars is None:
                        series.exemplars = [None] * len(series.counts)
                    for i, exemplar in enumerate(incoming):
                        if exemplar is None:
                            continue
                        mine = series.exemplars[i]
                        if mine is None or exemplar["value"] >= mine["value"]:
                            series.exemplars[i] = dict(exemplar)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_json(self, *, indent: int | None = 2) -> str:
        """The snapshot document rendered as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the JSON snapshot to *path* (the ``--metrics-out`` file)."""
        Path(path).write_text(self.to_json() + "\n")

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (for scrape endpoints).

        Label values are escaped per the exposition format (backslash,
        double quote and newline), and HELP text escapes backslash and
        newline — arbitrary request-derived labels always scrape clean.
        An empty registry renders a comment-only exposition (valid to
        every scraper) rather than a zero-byte body.
        """

        def esc_label(value: str) -> str:
            return (value.replace("\\", r"\\").replace('"', r"\"")
                    .replace("\n", r"\n"))

        def esc_help(text: str) -> str:
            return text.replace("\\", r"\\").replace("\n", r"\n")

        def fmt_labels(labels, extra: str = "") -> str:
            parts = [f'{k}="{esc_label(v)}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        lines: list[str] = []
        for name, metric in self._metrics.items():
            if metric.help:
                lines.append(f"# HELP {name} {esc_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if metric.kind in ("counter", "gauge"):
                for s in metric.series():
                    lines.append(f"{name}{fmt_labels(s.labels)} {s.value:g}")
            else:
                for s in metric.series():
                    cumulative = 0
                    for bound, count in zip(metric.bounds, s.counts):
                        cumulative += count
                        le = 'le="%g"' % bound
                        lines.append(f"{name}_bucket"
                                     f"{fmt_labels(s.labels, le)} {cumulative}")
                    inf = 'le="+Inf"'
                    lines.append(f"{name}_bucket"
                                 f"{fmt_labels(s.labels, inf)} {s.count}")
                    lines.append(f"{name}_sum{fmt_labels(s.labels)} {s.sum:g}")
                    lines.append(
                        f"{name}_count{fmt_labels(s.labels)} {s.count}")
        if not lines:
            return "# repro-metrics: no metrics registered\n"
        return "\n".join(lines) + "\n"


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry instrumentation falls back to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process-global default; returns the old one.

    The CLI installs a fresh registry per invocation so ``--metrics-out``
    reflects that run alone; long-lived embedders can do the same around
    request scopes.
    """
    global _default
    old, _default = _default, registry
    return old
