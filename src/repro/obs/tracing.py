"""Span tracing: nestable timers over ``perf_counter`` with JSONL export.

Where did the time go?  Instrumented code brackets each stage with::

    from repro.obs.tracing import span

    with span("provision.evaluate", tasks=len(tasks)):
        ...

Spans nest (the recorder tracks depth), cost two ``perf_counter`` calls
plus one append, and land in a bounded in-memory :class:`Tracer` — old
spans fall off the front, so tracing can stay on in long-running
processes.  A :class:`Tracer` exports its spans to JSONL
(:meth:`~Tracer.to_jsonl`) and aggregates them into the per-name summary
behind the CLI's ``--profile`` table (:meth:`~Tracer.summary_table`).

Like the metrics registry, a process-global default tracer serves
un-threaded instrumentation and :func:`set_default_tracer` scopes it
(the CLI installs a fresh tracer per invocation).  A disabled tracer
(``Tracer(enabled=False)``) turns :meth:`~Tracer.span` into a bare
``yield`` — the off switch for overhead-critical runs.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator

from repro._validation import check_int

__all__ = ["SpanRecord", "Tracer", "span", "default_tracer",
           "set_default_tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        The span's dotted stage name (``provision.evaluate``, ...).
    start_s:
        ``perf_counter`` timestamp at entry (monotonic, process-local —
        meaningful for ordering and deltas, not wall-clock).
    duration_s:
        Seconds between entry and exit.
    depth:
        Nesting depth at entry (0 = top level).
    attrs:
        The keyword attributes the instrumentation site attached.
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    attrs: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (one JSONL line)."""
        return {"name": self.name, "start_s": self.start_s,
                "duration_s": self.duration_s, "depth": self.depth,
                "attrs": self.attrs}


class Tracer:
    """A bounded recorder of finished spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans; beyond it the *oldest* spans are dropped
        (:attr:`dropped` counts them) so memory stays bounded.
    enabled:
        When False, :meth:`span` yields immediately and records nothing.
    """

    def __init__(self, capacity: int = 10_000, *, enabled: bool = True):
        self.capacity = check_int(capacity, "capacity", minimum=1)
        self.enabled = enabled
        self.spans: list[SpanRecord] = []
        self.dropped = 0
        self._depth = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time a stage: ``with tracer.span("planner.evaluate", n=20): ...``

        Records a :class:`SpanRecord` on exit (also when the body
        raises — the exception propagates, the duration is kept).
        """
        if not self.enabled:
            yield
            return
        depth = self._depth
        self._depth = depth + 1
        start = perf_counter()
        try:
            yield
        finally:
            duration = perf_counter() - start
            self._depth = depth
            self._record(SpanRecord(name, start, duration, depth, attrs))

    def _record(self, record: SpanRecord) -> None:
        self.spans.append(record)
        if len(self.spans) > self.capacity:
            excess = len(self.spans) - self.capacity
            del self.spans[:excess]
            self.dropped += excess

    def clear(self) -> None:
        """Forget every recorded span (the drop counter too)."""
        self.spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """Write one JSON object per span, in record order — the same
        line-delimited convention as
        :meth:`repro.simulation.trace.TraceRecorder.to_jsonl`."""
        with Path(path).open("w") as fh:
            for record in self.spans:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate spans by name: count, total/mean/min/max seconds."""
        out: dict[str, dict[str, float]] = {}
        for record in self.spans:
            agg = out.get(record.name)
            if agg is None:
                out[record.name] = {
                    "count": 1, "total_s": record.duration_s,
                    "min_s": record.duration_s, "max_s": record.duration_s,
                }
            else:
                agg["count"] += 1
                agg["total_s"] += record.duration_s
                agg["min_s"] = min(agg["min_s"], record.duration_s)
                agg["max_s"] = max(agg["max_s"], record.duration_s)
        for agg in out.values():
            agg["mean_s"] = agg["total_s"] / agg["count"]
        return out

    def summary_table(self) -> str:
        """Fixed-width rendering of :meth:`summary` (the ``--profile``
        output), sorted by total time descending."""
        rows = sorted(self.summary().items(),
                      key=lambda item: -item[1]["total_s"])
        headers = ("span", "count", "total_s", "mean_s", "min_s", "max_s")
        body = [(name, f"{agg['count']:.0f}", f"{agg['total_s']:.6f}",
                 f"{agg['mean_s']:.6f}", f"{agg['min_s']:.6f}",
                 f"{agg['max_s']:.6f}") for name, agg in rows]
        widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
                  for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
                 "  ".join("-" * w for w in widths)]
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.dropped:
            lines.append(f"({self.dropped} oldest spans dropped at "
                         f"capacity {self.capacity})")
        return "\n".join(lines)


_default = Tracer()


def default_tracer() -> Tracer:
    """The process-global tracer instrumentation falls back to."""
    return _default


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process-global default; returns the old one."""
    global _default
    old, _default = _default, tracer
    return old


def span(name: str, **attrs: Any):
    """A span on the *current* default tracer (module-level convenience).

    Instrumentation sites call this; scoping which tracer collects is
    the caller's job via :func:`set_default_tracer`.
    """
    return _default.span(name, **attrs)
