"""Span tracing: nestable timers over ``perf_counter`` with JSONL export.

Where did the time go?  Instrumented code brackets each stage with::

    from repro.obs.tracing import span

    with span("provision.evaluate", tasks=len(tasks)):
        ...

Spans nest (the recorder tracks depth), cost two ``perf_counter`` calls
plus one append, and land in a bounded in-memory :class:`Tracer` — old
spans fall off the front, so tracing can stay on in long-running
processes.  A :class:`Tracer` exports its spans to JSONL
(:meth:`~Tracer.to_jsonl`) and aggregates them into the per-name summary
behind the CLI's ``--profile`` table (:meth:`~Tracer.summary_table`).

Like the metrics registry, a process-global default tracer serves
un-threaded instrumentation and :func:`set_default_tracer` scopes it
(the CLI installs a fresh tracer per invocation).  A disabled tracer
(``Tracer(enabled=False)``) turns :meth:`~Tracer.span` into a bare
``yield`` — the off switch for overhead-critical runs.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, Iterator

from repro._validation import check_int
from repro.obs import context as _context

__all__ = ["SpanRecord", "Tracer", "span", "default_tracer",
           "set_default_tracer", "read_jsonl", "assemble_traces",
           "render_trace_trees"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        The span's dotted stage name (``provision.evaluate``, ...).
    start_s:
        ``perf_counter`` timestamp at entry (monotonic, process-local —
        meaningful for ordering and deltas, not wall-clock).
    duration_s:
        Seconds between entry and exit.
    depth:
        Nesting depth at entry (0 = top level).
    attrs:
        The keyword attributes the instrumentation site attached.
    trace_id, span_id, parent_id:
        Correlation ids from :mod:`repro.obs.context` — ``parent_id``
        links this span under its enclosing span (or, at a process
        root, under the remote caller's span), which is what lets
        :func:`assemble_traces` rebuild the request tree from JSONL.
    pid:
        Recording process id — ``start_s`` values are only comparable
        within one pid (``perf_counter`` epochs differ per process).
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    attrs: dict[str, Any]
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    pid: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (one JSONL line)."""
        return {"name": self.name, "start_s": self.start_s,
                "duration_s": self.duration_s, "depth": self.depth,
                "attrs": self.attrs, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "pid": self.pid}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_dict` form (absent trace
        fields — pre-correlation trace files — become None)."""
        return cls(name=doc["name"], start_s=doc["start_s"],
                   duration_s=doc["duration_s"], depth=doc.get("depth", 0),
                   attrs=doc.get("attrs", {}),
                   trace_id=doc.get("trace_id"), span_id=doc.get("span_id"),
                   parent_id=doc.get("parent_id"), pid=doc.get("pid"))


class Tracer:
    """A bounded recorder of finished spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans; beyond it the *oldest* spans are dropped
        (:attr:`dropped` counts them) so memory stays bounded.
    enabled:
        When False, :meth:`span` yields immediately and records nothing.
    """

    def __init__(self, capacity: int = 10_000, *, enabled: bool = True):
        self.capacity = check_int(capacity, "capacity", minimum=1)
        self.enabled = enabled
        self.spans: list[SpanRecord] = []
        self.dropped = 0
        self._depth = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time a stage: ``with tracer.span("planner.evaluate", n=20): ...``

        Records a :class:`SpanRecord` on exit (also when the body
        raises — the exception propagates, the duration is kept).
        """
        if not self.enabled:
            yield
            return
        ctx, token = _context.enter_span()
        depth = self._depth
        self._depth = depth + 1
        start = perf_counter()
        try:
            yield
        finally:
            duration = perf_counter() - start
            self._depth = depth
            _context.exit_span(token)
            self._record(SpanRecord(name, start, duration, depth, attrs,
                                    trace_id=ctx.trace_id,
                                    span_id=ctx.span_id,
                                    parent_id=ctx.parent_id,
                                    pid=os.getpid()))

    def record(self, name: str, duration_s: float, **attrs: Any) -> None:
        """Record an externally-timed span as a child of the current
        context.

        For sites that already measured a duration (a process-pool task
        timed worker-side, a store lookup timed around a lock) and only
        need it to appear in the trace tree.  ``start_s`` is back-dated
        by *duration_s* from now.
        """
        if not self.enabled:
            return
        ctx, token = _context.enter_span()
        _context.exit_span(token)
        now = perf_counter()
        self._record(SpanRecord(name, now - duration_s, duration_s,
                                self._depth, attrs,
                                trace_id=ctx.trace_id, span_id=ctx.span_id,
                                parent_id=ctx.parent_id, pid=os.getpid()))

    def _record(self, record: SpanRecord) -> None:
        self.spans.append(record)
        if len(self.spans) > self.capacity:
            excess = len(self.spans) - self.capacity
            del self.spans[:excess]
            self.dropped += excess

    def clear(self) -> None:
        """Forget every recorded span (the drop counter too)."""
        self.spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """Write one JSON object per span, in record order — the same
        line-delimited convention as
        :meth:`repro.simulation.trace.TraceRecorder.to_jsonl`."""
        with Path(path).open("w") as fh:
            for record in self.spans:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate spans by name: count, total/mean/min/max seconds."""
        out: dict[str, dict[str, float]] = {}
        for record in self.spans:
            agg = out.get(record.name)
            if agg is None:
                out[record.name] = {
                    "count": 1, "total_s": record.duration_s,
                    "min_s": record.duration_s, "max_s": record.duration_s,
                }
            else:
                agg["count"] += 1
                agg["total_s"] += record.duration_s
                agg["min_s"] = min(agg["min_s"], record.duration_s)
                agg["max_s"] = max(agg["max_s"], record.duration_s)
        for agg in out.values():
            agg["mean_s"] = agg["total_s"] / agg["count"]
        return out

    def summary_table(self) -> str:
        """Fixed-width rendering of :meth:`summary` (the ``--profile``
        output), sorted by total time descending."""
        rows = sorted(self.summary().items(),
                      key=lambda item: -item[1]["total_s"])
        headers = ("span", "count", "total_s", "mean_s", "min_s", "max_s")
        body = [(name, f"{agg['count']:.0f}", f"{agg['total_s']:.6f}",
                 f"{agg['mean_s']:.6f}", f"{agg['min_s']:.6f}",
                 f"{agg['max_s']:.6f}") for name, agg in rows]
        widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
                  for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
                 "  ".join("-" * w for w in widths)]
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.dropped:
            lines.append(f"({self.dropped} oldest spans dropped at "
                         f"capacity {self.capacity})")
        return "\n".join(lines)


_default = Tracer()


def default_tracer() -> Tracer:
    """The process-global tracer instrumentation falls back to."""
    return _default


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process-global default; returns the old one."""
    global _default
    old, _default = _default, tracer
    return old


def span(name: str, **attrs: Any):
    """A span on the *current* default tracer (module-level convenience).

    Instrumentation sites call this; scoping which tracer collects is
    the caller's job via :func:`set_default_tracer`.
    """
    return _default.span(name, **attrs)


# ---------------------------------------------------------------------------
# trace reassembly (the ``repro obs report`` engine)
# ---------------------------------------------------------------------------
def read_jsonl(paths: Iterable[str | Path]) -> list[SpanRecord]:
    """Load spans back from one or more :meth:`Tracer.to_jsonl` files.

    Files from different processes (client and server dumps of the same
    request) concatenate freely — reassembly keys on ids, not order.
    Blank lines are skipped; malformed lines raise ``ValueError`` naming
    the file and line number.
    """
    records: list[SpanRecord] = []
    for path in paths:
        path = Path(path)
        with path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(SpanRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise ValueError(
                        f"{path}:{lineno}: not a span record: {exc}") from exc
    return records


def assemble_traces(
        records: Iterable[SpanRecord],
) -> dict[str, list[dict[str, Any]]]:
    """Group spans by ``trace_id`` and link them into parent/child trees.

    Returns ``{trace_id: [root_node, ...]}`` where each node is
    ``{"record": SpanRecord, "children": [node, ...]}``.  A span whose
    ``parent_id`` is None **or refers to a span not in the input** (the
    remote caller's span when only one side's JSONL is present) becomes
    a root of its trace.  Children sort by ``start_s`` within each
    process (cross-process clocks are not comparable) and ids missing
    entirely (pre-correlation files) group under trace id ``"-"``.
    """
    by_trace: dict[str, list[SpanRecord]] = {}
    for record in records:
        by_trace.setdefault(record.trace_id or "-", []).append(record)
    out: dict[str, list[dict[str, Any]]] = {}
    for trace_id, spans in by_trace.items():
        nodes = {id(r): {"record": r, "children": []} for r in spans}
        by_span_id = {r.span_id: nodes[id(r)] for r in spans
                      if r.span_id is not None}
        roots: list[dict[str, Any]] = []
        for record in spans:
            node = nodes[id(record)]
            parent = (by_span_id.get(record.parent_id)
                      if record.parent_id is not None else None)
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent["children"].append(node)
        def order(node: dict[str, Any]) -> tuple:
            r = node["record"]
            return (r.pid if r.pid is not None else -1, r.start_s)
        for node in nodes.values():
            node["children"].sort(key=order)
        roots.sort(key=order)
        out[trace_id] = roots
    return out


def render_trace_trees(records: Iterable[SpanRecord]) -> str:
    """ASCII rendering of :func:`assemble_traces` — one indented tree
    per trace, each line ``name duration [pid] key=value ...``."""
    trees = assemble_traces(records)
    lines: list[str] = []
    for trace_id in sorted(trees):
        roots = trees[trace_id]
        count = sum(1 for _ in _walk(roots))
        pids = {node["record"].pid for node in _walk(roots)}
        lines.append(f"trace {trace_id}  ({count} span"
                     f"{'s' if count != 1 else ''}, {len(pids)} process"
                     f"{'es' if len(pids) != 1 else ''})")
        for root in roots:
            _render_node(root, "  ", lines)
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def _walk(roots: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node["children"])


def _render_node(node: dict[str, Any], indent: str,
                 lines: list[str]) -> None:
    r = node["record"]
    attrs = " ".join(f"{k}={v}" for k, v in sorted(r.attrs.items()))
    pid = f" [pid {r.pid}]" if r.pid is not None else ""
    lines.append(f"{indent}{r.name}  {r.duration_s * 1e3:.3f}ms{pid}"
                 f"{'  ' + attrs if attrs else ''}")
    for child in node["children"]:
        _render_node(child, indent + "  ", lines)
