"""Benchmark trajectory: append-only history and the regression gate.

``benchmarks/conftest.py`` leaves one ``repro-bench-summary`` JSON
sidecar per benchmark module under ``benchmarks/results/`` — and
overwrites it on every run, so the *trajectory* the numbers describe
never existed on disk.  This module gives it a home:

* :func:`append_history` wraps each sidecar into one
  ``repro-bench-history`` v1 record — keyed by bench name + git sha,
  stamped with a unix timestamp, carrying the sidecar's result rows
  (each row keyed by test name + params) — and appends it to
  ``benchmarks/results/history.jsonl``.  ``tools/bench_history.py`` is
  the CLI wrapper CI runs after every bench job.
* :func:`diff` compares two sets of results headline-by-headline and
  reports regressions beyond a per-metric noise threshold; ``repro obs
  bench-diff --baseline <file>`` wraps it and exits 1 on regression —
  the perf gate CI runs on the paper's hot paths.

**Direction** is inferred from the headline metric's name
(:func:`lower_is_better`): time-flavoured suffixes (``_s``, ``_ms``,
``_us``, ``_pct``) regress *upward*, rate-flavoured ones (``_per_s``,
``_rate``, ``_speedup``, ``_x``) regress *downward*.  A metric the
heuristic cannot classify is compared as lower-is-better (every
unclassified headline in this repo is a duration) — name new headline
metrics with one of these suffixes.

**Noise thresholds** are multiplicative: with ``threshold=1.5`` a
lower-is-better metric regresses when ``current > baseline * 1.5``.
Benchmarks on shared CI runners are noisy; the default is deliberately
loose and per-metric overrides (``--threshold-for metric=ratio``)
tighten the stable ones.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["HISTORY_FORMAT", "HISTORY_VERSION", "SUMMARY_FORMAT",
           "result_key", "lower_is_better", "load_sidecars",
           "history_record", "append_history", "read_history",
           "latest_by_bench", "Comparison", "DiffReport", "diff",
           "DEFAULT_THRESHOLD"]

#: ``format`` marker of one history.jsonl record.
HISTORY_FORMAT = "repro-bench-history"
#: Schema version of the history record.
HISTORY_VERSION = 1
#: The per-module sidecar format ``benchmarks/conftest.py`` writes.
SUMMARY_FORMAT = "repro-bench-summary"

#: Default multiplicative noise threshold (50% slack — CI runners are
#: shared and noisy; tighten per metric where the signal allows).
DEFAULT_THRESHOLD = 1.5

#: Headline-name suffixes meaning "bigger is worse" (durations, tails).
_LOWER_BETTER_SUFFIXES = ("_s", "_ms", "_us", "_ns", "_pct", "_seconds")
#: Headline-name suffixes meaning "bigger is better" (rates, speedups).
_HIGHER_BETTER_SUFFIXES = ("_per_s", "_rate", "_speedup", "_x", "_ratio",
                           "_ops")


def lower_is_better(metric: str) -> bool:
    """Whether *metric* regresses upward (durations) or downward (rates).

    Higher-better suffixes are checked first (``plans_per_s`` ends in
    ``_s`` too); anything unclassified is treated as lower-is-better.
    """
    if metric.endswith(_HIGHER_BETTER_SUFFIXES):
        return False
    if metric.endswith(_LOWER_BETTER_SUFFIXES):
        return True
    return True


def result_key(row: Mapping[str, Any]) -> str:
    """Stable identity of one result row: test name + sorted params.

    The sidecar rows carry it precomputed as ``key`` (see
    ``benchmarks/conftest.py``); this recomputes it for rows from older
    sidecars.
    """
    existing = row.get("key")
    if isinstance(existing, str) and existing:
        return existing
    params = row.get("params") or {}
    if not params:
        return str(row.get("name", "?"))
    rendered = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{row.get('name', '?')}[{rendered}]"


def load_sidecars(results_dir: str | Path) -> dict[str, dict[str, Any]]:
    """Every ``repro-bench-summary`` sidecar under *results_dir*, by bench.

    Non-JSON files and sidecars of other formats (``repro-serve-load``,
    chaos loads, CSV artefacts) are skipped silently — the directory is
    a mixed artefact dump by design.
    """
    sidecars: dict[str, dict[str, Any]] = {}
    root = Path(results_dir)
    if not root.is_dir():
        return sidecars
    for path in sorted(root.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(doc, dict) or doc.get("format") != SUMMARY_FORMAT:
            continue
        bench = str(doc.get("benchmark") or path.stem)
        sidecars[bench] = doc
    return sidecars


def history_record(summary: Mapping[str, Any], *, git_sha: str,
                   recorded_unix: float | None = None) -> dict[str, Any]:
    """One ``repro-bench-history`` record wrapping one sidecar."""
    return {
        "format": HISTORY_FORMAT,
        "version": HISTORY_VERSION,
        "bench": str(summary.get("benchmark", "?")),
        "git_sha": git_sha,
        "recorded_unix": round(time.time() if recorded_unix is None
                               else recorded_unix, 3),
        "results": [dict(row, key=result_key(row))
                    for row in summary.get("results", ())],
    }


def append_history(results_dir: str | Path, out_path: str | Path, *,
                   git_sha: str,
                   recorded_unix: float | None = None) -> int:
    """Append one history record per sidecar to *out_path* (JSONL).

    Returns the number of records appended.  Append-only by design: the
    trajectory is the point, and dedup belongs to readers
    (:func:`latest_by_bench` keeps the newest record per bench).
    """
    records = [history_record(summary, git_sha=git_sha,
                              recorded_unix=recorded_unix)
               for _, summary in sorted(load_sidecars(results_dir).items())]
    if records:
        with open(out_path, "a") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_history(path: str | Path) -> list[dict[str, Any]]:
    """Every valid history record in a JSONL file, in file order.

    Raises ``ValueError`` naming the line for malformed JSON or a
    record of the wrong format/version (a corrupt gate input should
    fail loudly, not silently pass the gate).
    """
    records = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: unparseable: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("format") != HISTORY_FORMAT:
            raise ValueError(f"{path}:{lineno}: not a {HISTORY_FORMAT} "
                             f"record")
        if doc.get("version") != HISTORY_VERSION:
            raise ValueError(f"{path}:{lineno}: unsupported version "
                             f"{doc.get('version')!r}")
        records.append(doc)
    return records


def latest_by_bench(records: Iterable[Mapping[str, Any]]
                    ) -> dict[str, dict[str, Any]]:
    """The newest record per bench (by ``recorded_unix``, ties to later
    file order)."""
    latest: dict[str, dict[str, Any]] = {}
    for record in records:
        bench = str(record.get("bench", "?"))
        kept = latest.get(bench)
        if kept is None or float(record.get("recorded_unix", 0)) \
                >= float(kept.get("recorded_unix", 0)):
            latest[bench] = dict(record)
    return latest


@dataclass(frozen=True)
class Comparison:
    """One headline metric compared between baseline and current."""

    bench: str
    key: str
    metric: str
    baseline: float
    current: float
    threshold: float
    lower_better: bool
    regressed: bool

    @property
    def ratio(self) -> float:
        """``current / baseline`` (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (``obs bench-diff --json`` rows)."""
        return {"bench": self.bench, "key": self.key, "metric": self.metric,
                "baseline": self.baseline, "current": self.current,
                "ratio": round(self.ratio, 4) if self.ratio != float("inf")
                else None,
                "threshold": self.threshold,
                "lower_is_better": self.lower_better,
                "regressed": self.regressed}


@dataclass
class DiffReport:
    """The outcome of one baseline-vs-current comparison run."""

    compared: list[Comparison] = field(default_factory=list)
    missing_in_baseline: list[str] = field(default_factory=list)
    missing_in_current: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Comparison]:
        """Every comparison that tripped its threshold."""
        return [c for c in self.compared if c.regressed]

    @property
    def ok(self) -> bool:
        """Gate verdict: no compared metric regressed."""
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the whole report."""
        return {"ok": self.ok,
                "compared": [c.to_dict() for c in self.compared],
                "regressions": len(self.regressions),
                "missing_in_baseline": list(self.missing_in_baseline),
                "missing_in_current": list(self.missing_in_current)}


def _headline_index(results: Iterable[Mapping[str, Any]]
                    ) -> dict[str, tuple[str, float]]:
    """``{row key: (metric, value)}`` for rows carrying a headline."""
    index = {}
    for row in results:
        headline = row.get("headline")
        if not isinstance(headline, dict):
            continue
        metric = headline.get("metric")
        value = headline.get("value")
        if isinstance(metric, str) and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            index[result_key(row)] = (metric, float(value))
    return index


def diff(current: Mapping[str, Mapping[str, Any]],
         baseline: Mapping[str, Mapping[str, Any]], *,
         threshold: float = DEFAULT_THRESHOLD,
         per_metric: Mapping[str, float] | None = None) -> DiffReport:
    """Compare headline metrics of *current* against *baseline*.

    Both arguments map bench name to a document carrying ``results``
    rows (a sidecar summary or a history record — the row shape is
    identical).  Only rows present on both sides with matching headline
    metric names are compared; side-only benches and rows are reported,
    never failed — a new benchmark must not break the gate that
    predates it.
    """
    if threshold < 1.0:
        raise ValueError(f"threshold must be >= 1.0, got {threshold}")
    per_metric = dict(per_metric or {})
    for name, ratio in per_metric.items():
        if ratio < 1.0:
            raise ValueError(f"threshold for {name!r} must be >= 1.0, "
                             f"got {ratio}")
    report = DiffReport()
    for bench in sorted(set(current) | set(baseline)):
        if bench not in baseline:
            report.missing_in_baseline.append(bench)
            continue
        if bench not in current:
            report.missing_in_current.append(bench)
            continue
        base_rows = _headline_index(baseline[bench].get("results", ()))
        for key, (metric, value) in sorted(
                _headline_index(current[bench].get("results", ())).items()):
            base = base_rows.get(key)
            if base is None or base[0] != metric:
                report.missing_in_baseline.append(f"{bench}:{key}")
                continue
            ratio = per_metric.get(metric, threshold)
            lower = lower_is_better(metric)
            if lower:
                regressed = value > base[1] * ratio
            else:
                regressed = value < base[1] / ratio
            report.compared.append(Comparison(
                bench=bench, key=key, metric=metric, baseline=base[1],
                current=value, threshold=ratio, lower_better=lower,
                regressed=regressed))
        for key in sorted(set(base_rows) - set(_headline_index(
                current[bench].get("results", ())))):
            report.missing_in_current.append(f"{bench}:{key}")
    return report
