"""A dependency-free sampling profiler: where does the CPU time go?

The missing feedback loop of the performance story: metrics say a
provision was slow, traces say *which* hop was slow, but only a profile
says which *code* was hot.  This module is a statistical sampler built
entirely on the stdlib — a daemon thread wakes ``hz`` times per second,
walks :func:`sys._current_frames` and counts one stack per live thread.
No interpreter hooks, no per-call overhead: the profiled code pays only
the GIL time of one frame walk per sample, which keeps the profiler
cheap enough to leave on in production (the budget asserted in
``benchmarks/bench_serve.py`` is <5% of the warm provision path at
100 hz).

Output is the **collapsed-stack** format flamegraph tooling consumes —
one line per distinct stack, root to leaf, semicolon-joined, followed by
its sample count::

    thread:MainThread;repro.cli.main;repro.cli._cmd_provision 42

Every stack is rooted at ``thread:<name>``, so a profile of the serve
tier separates the event loop from the ``repro-serve-plan`` worker pool
at a glance.  :meth:`Profile.top_table` renders the self/cumulative
top-N view for terminals; :func:`parse_collapsed` round-trips the file
format (CI uses it to assert profiles stay parseable).

Three entry points, one mechanism:

* :func:`sample_profile` — a context manager around any code block;
* the global ``--sample-profile PATH`` CLI flag — profiles the whole
  command (``provision``, ``sweep``, ``simulate``, any of them);
* ``GET /profilez?seconds=N`` on the schedule server — profiles the
  live worker pool on demand (see :mod:`repro.serve.server`).

Sampling is in-process only: a ``--jobs N`` process pool's children are
not visible to the parent's sampler (the parent's profile shows its own
wait frames), which is exactly what you want when diagnosing the
coordinator and is documented in docs/observability.md.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter, sleep
from typing import Any, Iterator

__all__ = ["SamplingProfiler", "Profile", "sample_profile",
           "parse_collapsed", "looks_like_collapsed", "profile_wait",
           "DEFAULT_HZ", "MAX_HZ", "MAX_STACK_DEPTH"]

#: Default sampling frequency (samples per second).
DEFAULT_HZ = 100
#: Upper bound on the sampling frequency; beyond this the sampler would
#: spend more time walking frames than the program spends running.
MAX_HZ = 1000
#: Frames kept per stack (leaf-most beyond this depth are dropped and
#: the stack is rooted at a ``...`` marker so truncation stays visible).
MAX_STACK_DEPTH = 128


def _frame_label(frame: Any) -> str:
    """``module.qualname`` label of one frame (collapsed-stack token).

    Semicolons separate stack entries in the collapsed format, so they
    (and whitespace) are scrubbed out of the label.
    """
    module = frame.f_globals.get("__name__", "?")
    name = frame.f_code.co_name
    return f"{module}.{name}".replace(";", ":").replace(" ", "_")


def _walk_stack(frame: Any) -> list[str]:
    """Root-to-leaf frame labels of *frame*'s stack, depth-bounded."""
    labels: list[str] = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    if frame is not None:
        labels.append("...")
    labels.reverse()
    return labels


class Profile:
    """The aggregated result of one profiling session.

    ``counts`` maps each distinct stack — a root-to-leaf tuple of frame
    labels, rooted at ``thread:<name>`` — to its sample count.
    ``samples`` is the total number of per-thread stacks recorded;
    ``passes`` the number of sampler wakeups; ``duration_s`` the
    wall-clock span of the session.
    """

    def __init__(self, counts: Counter[tuple[str, ...]] | None = None, *,
                 samples: int = 0, passes: int = 0,
                 duration_s: float = 0.0, hz: int = DEFAULT_HZ):
        self.counts: Counter[tuple[str, ...]] = counts \
            if counts is not None else Counter()
        self.samples = samples
        self.passes = passes
        self.duration_s = duration_s
        self.hz = hz

    def collapsed(self) -> str:
        """The collapsed-stack text: ``frame;frame;frame count`` lines.

        Lines are sorted (stack order) so two profiles of the same run
        diff cleanly; the output feeds flamegraph tooling directly.
        """
        lines = [f"{';'.join(stack)} {count}"
                 for stack, count in sorted(self.counts.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | Path) -> None:
        """Write :meth:`collapsed` to *path* (the ``--sample-profile``
        sidecar)."""
        Path(path).write_text(self.collapsed())

    def top(self, n: int = 15) -> list[dict[str, Any]]:
        """The top-*n* frames by self samples.

        ``self`` counts samples where the frame was the leaf; ``cum``
        counts samples where it appeared anywhere on the stack (counted
        once per stack even for recursive frames).
        """
        self_counts: Counter[str] = Counter()
        cum_counts: Counter[str] = Counter()
        for stack, count in self.counts.items():
            self_counts[stack[-1]] += count
            for label in set(stack):
                cum_counts[label] += count
        total = max(1, self.samples)
        rows = [{"frame": label, "self": self_counts[label],
                 "cum": cum_counts[label],
                 "self_pct": 100.0 * self_counts[label] / total,
                 "cum_pct": 100.0 * cum_counts[label] / total}
                for label in self_counts]
        rows.sort(key=lambda r: (-r["self"], -r["cum"], r["frame"]))
        return rows[:n]

    def top_table(self, n: int = 15) -> str:
        """The :meth:`top` view rendered as an aligned text table."""
        rows = self.top(n)
        header = (f"{'self%':>7} {'cum%':>7} {'self':>7} {'cum':>7}  frame\n"
                  f"{self.samples} samples over {self.duration_s:.2f}s "
                  f"at {self.hz} hz ({self.passes} passes)\n")
        body = "".join(
            f"{r['self_pct']:>6.1f}% {r['cum_pct']:>6.1f}% "
            f"{r['self']:>7} {r['cum']:>7}  {r['frame']}\n" for r in rows)
        return header + body


class SamplingProfiler:
    """Sample every live thread's stack ``hz`` times per second.

    ``start()`` launches a daemon sampler thread; ``stop()`` joins it —
    taking one final synchronous sample first, so even a session shorter
    than one period yields a non-empty profile — and returns the
    :class:`Profile`.  A profiler instance is single-use.
    """

    def __init__(self, hz: int = DEFAULT_HZ):
        if not isinstance(hz, int) or isinstance(hz, bool):
            raise TypeError(f"hz must be an int, got {type(hz).__name__}")
        if not 1 <= hz <= MAX_HZ:
            raise ValueError(f"hz must be in [1, {MAX_HZ}], got {hz}")
        self.hz = hz
        self._counts: Counter[tuple[str, ...]] = Counter()
        self._samples = 0
        self._passes = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._finished: Profile | None = None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_once(self) -> int:
        """Walk every live thread's stack once; returns stacks recorded.

        The sampler's own thread is skipped (profiling the profiler is
        pure noise) — but only that thread, so the final synchronous
        pass :meth:`stop` takes from the caller's thread still records
        the caller.  Public so the overhead benchmark can measure the
        cost of exactly one pass.
        """
        exclude = {self._thread.ident} if self._thread is not None else set()
        names = {t.ident: t.name for t in threading.enumerate()}
        recorded = 0
        for ident, frame in sys._current_frames().items():
            if ident in exclude:
                continue
            root = f"thread:{names.get(ident, ident)}"
            stack = (root, *_walk_stack(frame))
            self._counts[stack] += 1
            recorded += 1
        self._samples += recorded
        self._passes += 1
        return recorded

    def _run(self) -> None:
        period = 1.0 / self.hz
        next_at = perf_counter() + period
        while not self._stop.wait(max(0.0, next_at - perf_counter())):
            self.sample_once()
            next_at += period
            # A long GC pause or a held GIL can put us far behind;
            # re-anchor instead of bursting to catch up.
            now = perf_counter()
            if next_at < now:
                next_at = now + period

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Launch the sampler thread (idempotence is an error)."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = perf_counter()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-profiler")
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling and return the :class:`Profile` (idempotent)."""
        if self._finished is not None:
            return self._finished
        if self._thread is None:
            raise RuntimeError("profiler never started")
        self._stop.set()
        self._thread.join(timeout=5.0)
        # One last synchronous pass from the caller's thread: the
        # sampler thread is gone, so this records every *other* thread —
        # guaranteeing even sub-period sessions produce output.
        self.sample_once()
        duration = perf_counter() - (self._started_at or perf_counter())
        self._finished = Profile(self._counts, samples=self._samples,
                                 passes=self._passes, duration_s=duration,
                                 hz=self.hz)
        return self._finished


@contextmanager
def sample_profile(hz: int = DEFAULT_HZ, *,
                   out: str | Path | None = None) -> Iterator[SamplingProfiler]:
    """Profile the enclosed block; optionally write the collapsed file.

    Yields the running :class:`SamplingProfiler`; after the block,
    ``profiler.stop()`` has been called and the profile is available as
    ``profiler.stop()`` (idempotent).  With *out*, the collapsed-stack
    text is written there even when the block raises — a crashed run's
    profile is the one you want most.
    """
    profiler = SamplingProfiler(hz=hz).start()
    try:
        yield profiler
    finally:
        profile = profiler.stop()
        if out is not None:
            profile.write(out)


def parse_collapsed(text: str) -> Counter[tuple[str, ...]]:
    """Parse collapsed-stack text back into a stack counter.

    The inverse of :meth:`Profile.collapsed`; raises ``ValueError`` on a
    line that is not ``stack count``.  CI parses every profile artefact
    through this to pin the format.
    """
    counts: Counter[tuple[str, ...]] = Counter()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            raise ValueError(f"line {lineno}: not a collapsed-stack line: "
                             f"{line!r}")
        counts[tuple(stack_text.split(";"))] += int(count_text)
    return counts


def looks_like_collapsed(text: str) -> bool:
    """Whether *text* parses as non-empty collapsed-stack output.

    ``tools/validate_trace.py`` uses this to skip profile sidecars that
    arrive via the same artefact glob as span dumps.
    """
    stripped = text.strip()
    if not stripped:
        return False
    try:
        return bool(parse_collapsed(stripped))
    except ValueError:
        return False


def profile_wait(seconds: float, hz: int = DEFAULT_HZ) -> Profile:
    """Profile every thread for *seconds* from a blocking caller.

    The synchronous convenience used by tests and tools; the serve
    tier's ``/profilez`` awaits on the event loop instead and drives
    the profiler directly.
    """
    profiler = SamplingProfiler(hz=hz).start()
    sleep(max(0.0, seconds))
    return profiler.stop()
