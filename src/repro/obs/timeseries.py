"""Metrics over time: a bounded snapshot ring with reset-aware deltas.

A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` is a point-in-time
document; trends need *sequences* of them.  :class:`SnapshotRing` keeps
the last ``capacity`` timestamped snapshots in memory (the schedule
server scrapes its own registry into one on a background task) and
renders them as a versioned ``repro-metrics-history`` document — the
payload of ``GET /metrics/history`` and the input of ``repro obs top``.

Everything derived from the ring is **counter-reset aware**: a process
restart (the supervisor's bread and butter) makes a later snapshot's
totals *smaller* than an earlier one's, and a naive subtraction would
report negative traffic.  :func:`counter_delta` and
:func:`histogram_delta` clamp per-series negative deltas to zero, so a
rate over a restart reads as "no observed events" instead of nonsense.

:func:`histogram_quantile` estimates quantiles from cumulative bucket
counts with linear interpolation inside the bucket — the standard
fixed-bucket estimator (identical in spirit to PromQL's
``histogram_quantile``), which is exact at bucket bounds and at worst
one bucket wide in error between them.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Iterable, Mapping

__all__ = ["SnapshotRing", "counter_total", "counter_delta",
           "histogram_delta", "histogram_quantile", "gauge_values",
           "parse_history", "HISTORY_FORMAT", "HISTORY_VERSION"]

#: ``format`` marker of the history document.
HISTORY_FORMAT = "repro-metrics-history"
#: Schema version of the history document.
HISTORY_VERSION = 1


class SnapshotRing:
    """A bounded ring of timestamped registry snapshots.

    ``append`` is O(1) and drops the oldest sample past *capacity*;
    ``to_doc`` renders the whole ring as the self-describing
    ``repro-metrics-history`` document.  *clock* is injectable (unix
    seconds) so tests pin timestamps.
    """

    def __init__(self, capacity: int = 360, *,
                 clock: Callable[[], float] = time.time):
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ValueError(f"capacity must be a positive int, "
                             f"got {capacity!r}")
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        """Samples currently retained."""
        return len(self._ring)

    def append(self, snapshot: Mapping[str, Any],
               t_unix: float | None = None) -> None:
        """Record one snapshot at *t_unix* (defaults to ``clock()``)."""
        self._ring.append({
            "t_unix": round(self.clock() if t_unix is None else t_unix, 6),
            "snapshot": dict(snapshot),
        })

    def samples(self) -> list[dict[str, Any]]:
        """Every retained ``{"t_unix", "snapshot"}`` sample, oldest first."""
        return list(self._ring)

    def to_doc(self, *, interval_s: float | None = None) -> dict[str, Any]:
        """The versioned history document (``GET /metrics/history``)."""
        doc: dict[str, Any] = {"format": HISTORY_FORMAT,
                               "version": HISTORY_VERSION,
                               "capacity": self.capacity,
                               "samples": self.samples()}
        if interval_s is not None:
            doc["interval_s"] = interval_s
        return doc


def parse_history(doc: Any) -> list[dict[str, Any]]:
    """The samples of a history document, oldest first; raises on any
    document that does not declare the ``repro-metrics-history`` format."""
    if not isinstance(doc, dict) or doc.get("format") != HISTORY_FORMAT:
        raise ValueError("not a repro-metrics-history document")
    if doc.get("version") != HISTORY_VERSION:
        raise ValueError(
            f"unsupported history version {doc.get('version')!r}")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        raise ValueError("history document carries no 'samples' list")
    return samples


def _series_map(snapshot: Mapping[str, Any], section: str,
                metric: str) -> dict[tuple[tuple[str, str], ...],
                                     dict[str, Any]]:
    """``{label-key: series-entry}`` of one metric in one snapshot."""
    doc = snapshot.get(section, {}).get(metric)
    if doc is None:
        return {}
    out = {}
    for entry in doc.get("series", ()):
        key = tuple(sorted((str(k), str(v))
                           for k, v in entry.get("labels", {}).items()))
        out[key] = entry
    return out


def counter_total(snapshot: Mapping[str, Any], metric: str, *,
                  where: Mapping[str, str] | None = None) -> float:
    """Sum of a counter's series values, optionally label-filtered.

    *where* keeps only series whose labels include every given pair
    (e.g. ``where={"result": "hit"}``).
    """
    total = 0.0
    for key, entry in _series_map(snapshot, "counters", metric).items():
        labels = dict(key)
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        total += float(entry.get("value", 0.0))
    return total


def counter_delta(older: Mapping[str, Any], newer: Mapping[str, Any],
                  metric: str, *,
                  where: Mapping[str, str] | None = None) -> float:
    """Per-series counter increase between two snapshots, reset-clamped.

    Each series' negative delta (a counter that went *down* — the
    process restarted) is clamped to zero **before** summing, so one
    restarted series cannot eat the others' real traffic.
    """
    old = _series_map(older, "counters", metric)
    new = _series_map(newer, "counters", metric)
    delta = 0.0
    for key, entry in new.items():
        labels = dict(key)
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        previous = old.get(key)
        before = float(previous.get("value", 0.0)) if previous else 0.0
        delta += max(0.0, float(entry.get("value", 0.0)) - before)
    return delta


def histogram_delta(older: Mapping[str, Any], newer: Mapping[str, Any],
                    metric: str) -> tuple[list[float], list[int], int, float]:
    """``(bounds, bucket_deltas, count_delta, sum_delta)`` between two
    snapshots, summed over every series and reset-clamped per series.

    A series whose total count decreased is treated as freshly started:
    its contribution is the newer snapshot's absolute counts (the old
    ones died with the old process).  Returns ``([], [], 0, 0.0)`` when
    the newer snapshot does not carry the metric.
    """
    doc = newer.get("histograms", {}).get(metric)
    if doc is None:
        return [], [], 0, 0.0
    bounds = [float(b) for b in doc.get("buckets", ())]
    deltas = [0] * (len(bounds) + 1)
    count_delta = 0
    sum_delta = 0.0
    old = _series_map(older, "histograms", metric)
    for key, entry in _series_map(newer, "histograms", metric).items():
        counts = list(entry.get("counts", ()))
        previous = old.get(key)
        if previous is not None \
                and int(previous.get("count", 0)) <= int(entry.get("count", 0)) \
                and len(previous.get("counts", ())) == len(counts):
            counts = [max(0, c - int(p)) for c, p
                      in zip(counts, previous["counts"])]
            count_delta += int(entry.get("count", 0)) \
                - int(previous.get("count", 0))
            sum_delta += max(0.0, float(entry.get("sum", 0.0))
                             - float(previous.get("sum", 0.0)))
        else:
            count_delta += int(entry.get("count", 0))
            sum_delta += float(entry.get("sum", 0.0))
        for i, c in enumerate(counts):
            if i < len(deltas):
                deltas[i] += c
    return bounds, deltas, count_delta, sum_delta


def histogram_quantile(bounds: Iterable[float], bucket_counts: Iterable[int],
                       q: float) -> float | None:
    """Estimate the *q* quantile from per-bucket (non-cumulative) counts.

    Linear interpolation inside the winning bucket, the first bucket
    interpolating from zero and the +Inf bucket reporting its lower
    bound (the largest finite information available).  Returns ``None``
    when there are no observations.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    bounds = list(bounds)
    counts = list(bucket_counts)
    total = sum(counts)
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if i >= len(bounds):  # the +Inf bucket
                return bounds[-1] if bounds else None
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            fraction = (rank - (cumulative - count)) / count
            return lo + (hi - lo) * min(1.0, max(0.0, fraction))
    return bounds[-1] if bounds else None


def gauge_values(snapshot: Mapping[str, Any],
                 metric: str) -> dict[tuple[tuple[str, str], ...], float]:
    """``{label-key: value}`` of a gauge's series in one snapshot."""
    return {key: float(entry.get("value", 0.0))
            for key, entry in _series_map(snapshot, "gauges",
                                          metric).items()}
