"""Declarative SLOs: objectives, compliance, and burn rates — all pure.

The paper's pitch is *guaranteed worst-case* behavior; the serving
stack's equivalent is a service-level objective ("99% of provisions
answer within 1s") evaluated continuously against its own metrics.
This module keeps that evaluation a pure function — metrics snapshot
in, verdict out — so the same code backs the server's ``/slo``
endpoint, the ``repro obs slo`` CLI (exit 1 on a violated objective,
for CI gates), and plain unit tests with hand-built snapshots.

Two objective kinds, both computed from the **existing** instruments
(no new measurement paths):

* ``latency`` — the fraction of observations of a histogram metric at
  or under ``threshold_s`` must be >= ``target``.  Compliance reads the
  cumulative bucket counts at the nearest bucket bound >= the
  threshold (fixed buckets cannot answer arbitrary quantiles exactly;
  pick thresholds on bucket bounds — the default serve buckets include
  0.1, 0.25, 0.5, 1.0, 2.5 ...).
* ``availability`` — the fraction of a counter metric's series whose
  ``code`` label is not a 5xx status must be >= ``target``.

**Error-budget burn** normalizes "how bad is it": with target 0.99 the
budget is 1% bad; a burn of 1.0 spends the budget exactly at the rate
allowed, 10.0 spends it 10x too fast.  :func:`evaluate` reports the
point-in-time burn over a whole snapshot; :class:`BurnRateTracker`
holds timestamped ``(good, total)`` samples and reports **rolling**
burn rates over several windows at once (the multi-window alerting
pattern: page on fast burn over short windows, ticket on slow burn
over long ones).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = ["Objective", "ObjectiveResult", "evaluate", "good_total",
           "BurnRateTracker", "default_serve_objectives",
           "SLO_REPORT_FORMAT", "SLO_REPORT_VERSION"]

#: ``format`` marker of the report document ``evaluate`` produces.
SLO_REPORT_FORMAT = "repro-slo"
#: Schema version of the report document.
SLO_REPORT_VERSION = 1

#: The objective kinds :func:`good_total` can compute.
KINDS = ("latency", "availability")


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    Attributes
    ----------
    name:
        Identifier of the objective (unique within a report).
    kind:
        ``latency`` (histogram threshold) or ``availability``
        (counter 5xx classification).
    metric:
        The metric the objective reads — a histogram name for
        ``latency``, a counter name for ``availability``.
    target:
        Required good fraction in ``(0, 1)`` — e.g. 0.99.
    threshold_s:
        Latency bound in seconds (``latency`` kind only); evaluated at
        the nearest histogram bucket bound >= this value.
    code_label:
        Label whose values classify availability (default ``code``);
        values starting with ``5`` count as bad.
    """

    name: str
    kind: str
    metric: str
    target: float
    threshold_s: float | None = None
    code_label: str = "code"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; "
                             f"pick from {list(KINDS)}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be a fraction in (0, 1)")
        if self.kind == "latency":
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError(
                    "a latency objective needs a positive threshold_s")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (objectives files, report documents)."""
        doc: dict[str, Any] = {"name": self.name, "kind": self.kind,
                               "metric": self.metric, "target": self.target}
        if self.threshold_s is not None:
            doc["threshold_s"] = self.threshold_s
        if self.code_label != "code":
            doc["code_label"] = self.code_label
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Objective":
        """Build an objective from its :meth:`to_dict` form; unknown
        keys raise (objectives files should not silently drift)."""
        known = {"name", "kind", "metric", "target", "threshold_s",
                 "code_label"}
        extra = set(doc) - known
        if extra:
            raise ValueError(f"unknown objective field(s) {sorted(extra)}")
        return cls(name=doc["name"], kind=doc["kind"], metric=doc["metric"],
                   target=float(doc["target"]),
                   threshold_s=doc.get("threshold_s"),
                   code_label=doc.get("code_label", "code"))


@dataclass(frozen=True)
class ObjectiveResult:
    """Point-in-time verdict of one objective against one snapshot.

    ``compliance`` is the good fraction (1.0 when the metric has no
    observations yet — an empty service has violated nothing), and
    ``budget_burn`` = ``(1 - compliance) / (1 - target)``: 1.0 means
    the error budget is being spent exactly at the allowed rate.
    """

    objective: Objective
    good: float
    total: float
    compliance: float
    budget_burn: float
    ok: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (one entry of the report document)."""
        return {"objective": self.objective.to_dict(), "good": self.good,
                "total": self.total, "compliance": self.compliance,
                "budget_burn": self.budget_burn, "ok": self.ok}


def good_total(objective: Objective,
               snapshot: Mapping[str, Any]) -> tuple[float, float]:
    """``(good, total)`` event counts of *objective* in *snapshot*.

    Pure — *snapshot* is a :meth:`MetricsRegistry.snapshot` document.
    A metric absent from the snapshot counts as ``(0, 0)``.
    """
    if objective.kind == "latency":
        doc = snapshot.get("histograms", {}).get(objective.metric)
        if doc is None:
            return 0.0, 0.0
        bounds = [float(b) for b in doc.get("buckets", ())]
        index = bisect_left(bounds, float(objective.threshold_s))
        good = total = 0.0
        for entry in doc.get("series", ()):
            counts = entry["counts"]
            good += sum(counts[:index + 1])
            total += entry["count"]
        return good, total
    doc = snapshot.get("counters", {}).get(objective.metric)
    if doc is None:
        return 0.0, 0.0
    good = total = 0.0
    for entry in doc.get("series", ()):
        value = float(entry["value"])
        total += value
        code = str(entry.get("labels", {}).get(objective.code_label, ""))
        if not code.startswith("5"):
            good += value
    return good, total


def evaluate(objectives: Iterable[Objective],
             snapshot: Mapping[str, Any],
             burn_rates: Mapping[str, Mapping[str, float | None]]
             | None = None) -> dict[str, Any]:
    """Evaluate *objectives* against *snapshot*; returns the report doc.

    Pure function: snapshot in, verdict out.  The report declares its
    own schema (``format``/``version``), carries one
    :class:`ObjectiveResult` dict per objective plus a top-level ``ok``
    (every objective met), and optionally folds in rolling *burn_rates*
    from a :class:`BurnRateTracker`.
    """
    results = []
    overall_ok = True
    for objective in objectives:
        good, total = good_total(objective, snapshot)
        compliance = good / total if total > 0 else 1.0
        burn = (1.0 - compliance) / (1.0 - objective.target)
        ok = compliance >= objective.target
        overall_ok = overall_ok and ok
        result = ObjectiveResult(objective, good, total, compliance,
                                 burn, ok).to_dict()
        if burn_rates is not None and objective.name in burn_rates:
            result["burn_rates"] = dict(burn_rates[objective.name])
        results.append(result)
    return {"format": SLO_REPORT_FORMAT, "version": SLO_REPORT_VERSION,
            "ok": overall_ok, "objectives": results}


@dataclass
class BurnRateTracker:
    """Rolling multi-window burn rates from periodic snapshot samples.

    Call :meth:`sample` with the current metrics snapshot (the ``/slo``
    endpoint does this per scrape); :meth:`burn_rates` then reports,
    per objective and window, how fast the error budget burned over
    that window — ``delta_bad / delta_total / (1 - target)`` summed
    over adjacent sample pairs inside the window, or None when the
    window holds fewer than two samples or saw no events.  *clock* is
    injectable so tests pin time.

    **Counter resets are expected input**: a supervised server that
    crashed and restarted re-reports its counters from zero, so a later
    sample's totals can be *smaller* than an earlier one's.  The
    interval spanning the restart is dropped from the delta sums (its
    true event count is unknowable; the burn never goes negative), and
    each detected reset increments the ``repro_slo_counter_resets``
    counter in *registry* (the process default when None) — restarts
    leave a visible trail instead of silently warping the burn math.
    """

    objectives: Sequence[Objective]
    windows_s: tuple[float, ...] = (60.0, 300.0, 3600.0)
    capacity: int = 1024
    clock: Callable[[], float] = time.monotonic
    registry: Any = None
    _samples: list[tuple[float, dict[str, tuple[float, float]]]] = \
        field(default_factory=list)

    def _count_reset(self, objective: str) -> None:
        """Increment the reset counter for *objective*'s metric."""
        registry = self.registry
        if registry is None:
            from repro.obs.metrics import default_registry

            registry = default_registry()
        registry.counter(
            "repro_slo_counter_resets",
            "Counter resets (process restarts) detected between burn-rate "
            "samples, by objective.").inc(objective=objective)

    def sample(self, snapshot: Mapping[str, Any]) -> None:
        """Record ``(good, total)`` of every objective at ``clock()``.

        A total or good count lower than the previous sample's means the
        underlying counter reset (the process restarted); the reset is
        counted per objective before the sample is stored verbatim.
        """
        counts = {obj.name: good_total(obj, snapshot)
                  for obj in self.objectives}
        if self._samples:
            _, previous = self._samples[-1]
            for name, (good, total) in counts.items():
                good0, total0 = previous.get(name, (0.0, 0.0))
                if total < total0 or good < good0:
                    self._count_reset(name)
        self._samples.append((self.clock(), counts))
        if len(self._samples) > self.capacity:
            del self._samples[:len(self._samples) - self.capacity]

    def burn_rates(self) -> dict[str, dict[str, float | None]]:
        """``{objective: {window: burn | None}}`` as of the last sample.

        Deltas are summed over *adjacent* sample pairs inside the
        window, not oldest-vs-newest, so one reset interval (totals went
        backwards: the span covering the restart, whose true event count
        is unknowable) is skipped while every healthy interval around it
        still contributes — a restart dents the window, it does not
        blind it.
        """
        out: dict[str, dict[str, float | None]] = {}
        if not self._samples:
            return {obj.name: {f"{w:g}s": None for w in self.windows_s}
                    for obj in self.objectives}
        now, _ = self._samples[-1]
        for obj in self.objectives:
            rates: dict[str, float | None] = {}
            for window in self.windows_s:
                in_window = [counts for ts, counts in self._samples
                             if now - ts <= window]
                delta_total = delta_bad = 0.0
                for prev, cur in zip(in_window, in_window[1:]):
                    good0, total0 = prev.get(obj.name, (0.0, 0.0))
                    good1, total1 = cur.get(obj.name, (0.0, 0.0))
                    if total1 < total0 or good1 < good0:
                        continue  # the restart interval: unknowable
                    delta_total += total1 - total0
                    delta_bad += max(
                        0.0, (total1 - good1) - (total0 - good0))
                if delta_total <= 0:
                    rates[f"{window:g}s"] = None
                    continue
                rates[f"{window:g}s"] = \
                    delta_bad / delta_total / (1.0 - obj.target)
            out[obj.name] = rates
        return out


def default_serve_objectives(
        threshold_s: float = 1.0,
        latency_target: float = 0.99,
        availability_target: float = 0.999) -> list[Objective]:
    """The serve tier's stock objectives over its existing metrics:
    provision/plan latency under *threshold_s* and non-5xx answers."""
    return [
        Objective(name="serve-latency", kind="latency",
                  metric="repro_serve_request_seconds",
                  target=latency_target, threshold_s=threshold_s),
        Objective(name="serve-availability", kind="availability",
                  metric="repro_serve_requests_total",
                  target=availability_target),
    ]
