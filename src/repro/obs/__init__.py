"""Unified observability layer: structured logging, metrics, span tracing.

Every layer of the stack — the planner, the provisioning runtime, the
schedule store and the slot simulator — reports *what happened* through
the three pillars of this package, none of which needs a dependency
outside the standard library:

* :mod:`repro.obs.logging` — one ``get_logger(name)`` entry point over
  the stdlib :mod:`logging` machinery, with a human line format and a
  structured JSON line format selected once per process
  (:func:`repro.obs.logging.configure`, driven by the CLI's
  ``--log-level`` / ``--log-format`` flags).
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with labels, collected in a
  :class:`~repro.obs.metrics.MetricsRegistry` (a process-global default
  plus injectable instances), exported as JSON or Prometheus text, and
  **mergeable**: a process-pool worker snapshots its private registry
  and the parent folds the deltas in, so ``--jobs N`` loses no signal.
* :mod:`repro.obs.tracing` — nestable ``span("name", **attrs)`` context
  managers built on :func:`time.perf_counter`, recording durations into
  a bounded in-memory trace that exports to JSONL and renders the
  ``--profile`` summary table.

Two cross-cutting companions tie the pillars together:

* :mod:`repro.obs.context` — contextvars-carried ``trace_id`` /
  ``span_id`` / ``parent_id`` correlation: spans record the ids, log
  lines are stamped with them, and histogram exemplars link buckets
  back to the requests that landed there.
* :mod:`repro.obs.slo` — declarative latency/availability objectives
  evaluated (purely) against metrics snapshots, with rolling
  multi-window error-budget burn rates.

The package defines *mechanism* only; each subsystem registers its own
metric names and span names (catalogued in ``docs/observability.md``).
"""

from repro.obs.context import (
    TraceContext,
    current_trace_id,
    deterministic_ids,
    trace_context,
)
from repro.obs.logging import configure as configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.slo import BurnRateTracker, Objective, evaluate as evaluate_slo
from repro.obs.tracing import (
    SpanRecord,
    Tracer,
    default_tracer,
    set_default_tracer,
    span,
)

__all__ = [
    "get_logger",
    "configure_logging",
    "TraceContext",
    "trace_context",
    "current_trace_id",
    "deterministic_ids",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "Objective",
    "BurnRateTracker",
    "evaluate_slo",
    "SpanRecord",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "span",
]
