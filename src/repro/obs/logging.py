"""Structured logging: one entry point, two line formats, zero deps.

Every ``repro`` module obtains its logger through :func:`get_logger`,
which namespaces it under the ``repro.`` hierarchy so one
:func:`configure` call controls the whole library.  Two formats:

* ``human`` — ``HH:MM:SS LEVEL logger: message key=value ...`` for
  terminals;
* ``json`` — one JSON object per line (``ts``, ``level``, ``logger``,
  ``event`` plus every structured field), for pipelines and log stores.

Structured fields ride the stdlib ``extra=`` mechanism::

    log = get_logger("service.runtime")
    log.info("task_completed", extra={"digest": d[:12], "status": "ok"})

Until :func:`configure` is called the library stays silent (a
``NullHandler``, the standard library-author contract); the CLI calls
:func:`configure` exactly once per invocation from its global
``--log-level`` / ``--log-format`` flags.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

from repro.obs import context as _context

__all__ = ["get_logger", "configure", "JsonFormatter", "HumanFormatter",
           "TraceContextFilter", "LEVELS", "FORMATS"]

#: Accepted ``configure(level=...)`` names, mapped to stdlib levels.
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Accepted ``configure(format=...)`` names.
FORMATS = ("human", "json")

_ROOT = "repro"

#: LogRecord attributes that are plumbing, not user-supplied fields.
_RESERVED = frozenset(vars(logging.LogRecord("", 0, "", 0, "", (), None))) \
    | {"message", "asctime", "taskName"}


def _fields(record: logging.LogRecord) -> dict[str, Any]:
    """The structured ``extra=`` fields attached to a record."""
    return {k: v for k, v in record.__dict__.items() if k not in _RESERVED}


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event, extra fields."""

    def format(self, record: logging.LogRecord) -> str:
        """Render *record* as a single sorted-key JSON line."""
        doc: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        doc.update(_fields(record))
        if record.exc_info:
            doc["exception"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


class HumanFormatter(logging.Formatter):
    """Terminal-friendly lines with ``key=value`` structured fields."""

    def __init__(self) -> None:
        """Fix the base format; structured fields are appended per record."""
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                         datefmt="%H:%M:%S")

    def format(self, record: logging.LogRecord) -> str:
        """Render *record*, appending any structured fields as key=value."""
        line = super().format(record)
        fields = _fields(record)
        if fields:
            line += " " + " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        return line


def get_logger(name: str) -> logging.Logger:
    """The library logger for *name*, namespaced under ``repro.``.

    ``get_logger("service.runtime")`` and
    ``get_logger("repro.service.runtime")`` name the same logger, so
    instrumentation sites can use their dotted module suffix.
    """
    if name != _ROOT and not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


# The library contract: silent until configured.
logging.getLogger(_ROOT).addHandler(logging.NullHandler())

_handler: logging.Handler | None = None


class TraceContextFilter(logging.Filter):
    """Stamp the active trace context onto every record.

    While a :func:`repro.obs.context.trace_context` is in flight, every
    log line — whatever module emitted it — gains ``trace_id`` and
    ``span_id`` structured fields, so one ``grep trace_id=<id>`` (or a
    JSON field match) collects a request's full trail.  Explicit
    ``extra={"trace_id": ...}`` fields win over the ambient context.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        """Attach ``trace_id``/``span_id`` from the ambient context."""
        ctx = _context.current()
        if ctx is not None:
            if not hasattr(record, "trace_id"):
                record.trace_id = ctx.trace_id
            if not hasattr(record, "span_id"):
                record.span_id = ctx.span_id
        return True


class _CurrentStderrHandler(logging.StreamHandler):
    """StreamHandler that re-reads ``sys.stderr`` on every emit, so
    stream redirection (pytest capture, shell 2> swaps) always wins."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self):  # type: ignore[override]
        """The *current* ``sys.stderr``, not the one at construction."""
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:
        """Ignore assignments; this handler always tracks sys.stderr."""


def configure(level: str = "warning", format: str = "human",
              stream: TextIO | None = None) -> None:
    """Configure the whole ``repro.*`` logger tree once, replacing any
    previous configuration (idempotent — safe to call per CLI invocation).

    Parameters
    ----------
    level:
        One of :data:`LEVELS` (``debug``/``info``/``warning``/``error``).
    format:
        ``human`` or ``json`` (see the module docstring).
    stream:
        Output stream; by default the handler follows ``sys.stderr``
        dynamically (so pytest capture and redirection always apply).
    """
    global _handler
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; pick from "
                         f"{sorted(LEVELS)}")
    if format not in FORMATS:
        raise ValueError(f"unknown log format {format!r}; pick from "
                         f"{sorted(FORMATS)}")
    root = logging.getLogger(_ROOT)
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = (logging.StreamHandler(stream) if stream is not None
                else _CurrentStderrHandler())
    _handler.setFormatter(JsonFormatter() if format == "json"
                          else HumanFormatter())
    _handler.addFilter(TraceContextFilter())
    root.addHandler(_handler)
    root.setLevel(LEVELS[level])
    root.propagate = False
