"""Shared argument-validation helpers.

Every public entry point of :mod:`repro` validates its arguments through the
small helpers in this module so that error messages are uniform and the
validation logic is tested in exactly one place.
"""

from __future__ import annotations

from typing import Iterable


def check_int(value: object, name: str, *, minimum: int | None = None,
              maximum: int | None = None) -> int:
    """Validate that *value* is an ``int`` within ``[minimum, maximum]``.

    Booleans are rejected even though ``bool`` subclasses ``int``: a caller
    passing ``True`` for a count is almost certainly a bug.

    Returns the validated integer so call sites can write
    ``n = check_int(n, "n", minimum=1)``.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_node(value: object, name: str, n: int) -> int:
    """Validate a node identifier: an int in ``[0, n)``."""
    return check_int(value, name, minimum=0, maximum=n - 1)


def check_nodes(values: Iterable[object], name: str, n: int) -> frozenset[int]:
    """Validate an iterable of node identifiers, returning a frozenset."""
    out = []
    for i, v in enumerate(values):
        out.append(check_node(v, f"{name}[{i}]", n))
    result = frozenset(out)
    if len(result) != len(out):
        raise ValueError(f"{name} contains duplicate node identifiers")
    return result


def check_class_params(n: int, d: int) -> tuple[int, int]:
    """Validate the network-class parameters ``(n, D)`` of ``N_n^D``.

    The paper (section 3) requires ``2 <= D <= n``; in addition every
    requirement quantifies over a set ``Y`` of ``D`` nodes drawn from
    ``V_n - {x}``, which needs ``D <= n - 1``.
    """
    n = check_int(n, "n", minimum=3)
    d = check_int(d, "D", minimum=2, maximum=n - 1)
    return n, d


def check_probability(value: object, name: str) -> float:
    """Validate a probability in ``[0, 1]``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a float, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive_float(value: object, name: str) -> float:
    """Validate a strictly positive finite float."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a float, got {type(value).__name__}")
    value = float(value)
    if not value > 0.0 or value != value or value in (float("inf"),):
        raise ValueError(f"{name} must be a positive finite float, got {value}")
    return value


def check_nonnegative_float(value: object, name: str) -> float:
    """Validate a non-negative finite float."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a float, got {type(value).__name__}")
    value = float(value)
    if not value >= 0.0 or value == float("inf"):
        raise ValueError(f"{name} must be a non-negative finite float, got {value}")
    return value
