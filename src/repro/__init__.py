"""repro — Topology-Transparent Duty Cycling for Wireless Sensor Networks.

A complete, from-scratch reproduction of Chen, Fleury and Syrotiuk (IPPS
2007): the schedule model, the topology-transparency requirements and their
equivalence, the worst-case throughput theory (Theorems 2-4), the Figure 2
construction with its guarantees (Theorems 6-9), the design-theoretic
substrate that supplies topology-transparent non-sleeping schedules
(finite fields, orthogonal arrays, Steiner systems, cover-free families),
and a slot-synchronous WSN simulator for empirical validation.

Quickstart
----------
>>> import repro
>>> source = repro.polynomial_schedule(n=25, d=3)      # TT non-sleeping <T>
>>> repro.is_topology_transparent(source, d=3)
True
>>> duty = repro.construct(source, d=3, alpha_t=4, alpha_r=8)
>>> duty.is_alpha_schedule(4, 8)
True
>>> repro.is_topology_transparent(duty, d=3)
True
>>> float(duty.average_duty_cycle()) < 1.0             # nodes actually sleep
True

Package layout
--------------
``repro.core``
    The paper's contribution: schedules, transparency requirements,
    throughput theory, the Figure 2 construction, non-sleeping factories.
``repro.combinatorics``
    Design-theory substrate: GF(p^m), polynomial codes / orthogonal
    arrays, Steiner systems, projective planes, cover-free families.
``repro.simulation``
    Slot-synchronous discrete-event WSN simulator implementing the paper's
    collision model, with topology generators, traffic, energy accounting,
    routing and an optional clock-drift probe.
``repro.baselines``
    Comparison schemes: naive k-slot duty cycling and topology-dependent
    distance-2 colouring TDMA.
``repro.analysis``
    Sweep/table utilities and one entry point per paper artefact
    (Figure 1, Theorems 2-9) shared by the benchmark harness and examples.
``repro.service``
    Schedule provisioning at scale: a persistent content-addressed
    schedule store, a parallel grid provisioner, and the batch request
    API behind ``repro provision``.
"""

from repro.core import (
    Schedule,
    free_slots,
    sigma,
    satisfies_requirement1,
    satisfies_requirement2,
    satisfies_requirement3,
    is_topology_transparent,
    find_transparency_violation,
    guaranteed_slots,
    min_throughput,
    average_throughput,
    average_throughput_bruteforce,
    g,
    g_upper_bound,
    optimal_transmitters_general,
    general_upper_bound,
    optimal_transmitters_constrained,
    constrained_upper_bound,
    r_ratio,
    thm8_ratio_lower_bound,
    thm9_min_throughput_bound,
    construct,
    construct_exact,
    frame_length_formula,
    tdma_schedule,
    from_cover_free_family,
    polynomial_schedule,
    steiner_schedule,
    projective_plane_schedule,
    mols_schedule,
    best_nonsleeping_schedule,
    max_cyclic_gap,
    link_access_delay,
    worst_link_access_delay,
    path_delay_bound,
    frame_delay_bound,
    Plan,
    plan_schedule,
    candidate_sources,
    schedule_to_dict,
    schedule_from_dict,
    save_schedule,
    load_schedule,
    permute_slots,
    relabel_nodes,
    concatenate,
    rotate,
    interleave_construction,
)
from repro.combinatorics import CoverFreeFamily, GF
from repro.service import (
    ProvisionRequest,
    ProvisionResult,
    ScheduleStore,
    provision_batch,
)

__version__ = "1.0.0"

__all__ = [
    "Schedule",
    "CoverFreeFamily",
    "GF",
    "free_slots",
    "sigma",
    "satisfies_requirement1",
    "satisfies_requirement2",
    "satisfies_requirement3",
    "is_topology_transparent",
    "find_transparency_violation",
    "guaranteed_slots",
    "min_throughput",
    "average_throughput",
    "average_throughput_bruteforce",
    "g",
    "g_upper_bound",
    "optimal_transmitters_general",
    "general_upper_bound",
    "optimal_transmitters_constrained",
    "constrained_upper_bound",
    "r_ratio",
    "thm8_ratio_lower_bound",
    "thm9_min_throughput_bound",
    "construct",
    "construct_exact",
    "frame_length_formula",
    "tdma_schedule",
    "from_cover_free_family",
    "polynomial_schedule",
    "steiner_schedule",
    "projective_plane_schedule",
    "mols_schedule",
    "best_nonsleeping_schedule",
    "max_cyclic_gap",
    "link_access_delay",
    "worst_link_access_delay",
    "path_delay_bound",
    "frame_delay_bound",
    "Plan",
    "plan_schedule",
    "candidate_sources",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "permute_slots",
    "relabel_nodes",
    "concatenate",
    "rotate",
    "interleave_construction",
    "ProvisionRequest",
    "ProvisionResult",
    "ScheduleStore",
    "provision_batch",
    "__version__",
]
