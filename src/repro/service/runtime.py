"""Fault-tolerant execution layer for provisioning grid evaluations.

The old fan-out (``pool.map`` in :mod:`repro.service.provision`) had the
failure semantics of its weakest worker: one crashed process aborted the
whole batch and discarded every already-completed evaluation.  This module
replaces it with a runtime in the spirit of the paper — the service keeps
its guarantees under adversity:

* every distinct task is submitted as an **individual future**, so one
  task's fate never decides another's;
* a **per-task timeout** reclaims pool slots from hung workers (the pool
  is rebuilt, because a stuck process cannot be cancelled);
* task-level exceptions and timeouts are **retried** with exponential
  backoff and seeded jitter (:meth:`repro.faults.FaultPlan.backoff_jitter`
  keeps even the jitter reproducible);
* a dead pool (:class:`~concurrent.futures.process.BrokenProcessPool`) is
  **rebuilt** and its in-flight tasks re-enqueued; tasks repeatedly in
  flight at the moment of death are bisected — re-run alone — and
  **quarantined** when they kill a pool single-handedly;
* completed evaluations are **checkpointed** into the content-addressed
  :class:`~repro.service.store.ScheduleStore` the moment they finish, so
  an interrupted ``repro provision`` resumes warm with zero re-evaluation
  of finished work.

Every task ends in exactly one terminal :class:`TaskReport` status —
``ok``, ``retried``, ``timed-out``, ``failed`` or ``quarantined`` — and
:func:`execute_tasks` always returns the survivors' plans; it never raises
because one task misbehaved.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro._validation import check_int
from repro.core.planner import GridPoint, Plan, evaluate_grid_point
from repro.faults import FaultPlan
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import default_tracer, span

__all__ = ["RuntimeConfig", "TaskReport", "RuntimeResult", "execute_tasks",
           "STATUS_OK", "STATUS_RETRIED", "STATUS_TIMED_OUT",
           "STATUS_FAILED", "STATUS_QUARANTINED", "TERMINAL_STATUSES"]

_log = get_logger("service.runtime")

#: Bucket layout shared by the parent- and worker-side duration
#: histograms, so worker snapshots merge bucket-for-bucket.
_DURATION_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                     0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Task completed cleanly on its first attempt.
STATUS_OK = "ok"
#: Task completed after at least one fault (retry, crash recovery, ...).
STATUS_RETRIED = "retried"
#: Task's final attempt exceeded the per-task timeout.
STATUS_TIMED_OUT = "timed-out"
#: Task's final attempt raised; the exception text is in the report.
STATUS_FAILED = "failed"
#: Task repeatedly killed the worker pool and was isolated, then banned.
STATUS_QUARANTINED = "quarantined"

#: Every status a finished task can carry.
TERMINAL_STATUSES = (STATUS_OK, STATUS_RETRIED, STATUS_TIMED_OUT,
                     STATUS_FAILED, STATUS_QUARANTINED)

_TICK_SECONDS = 0.05  # pool poll granularity


@dataclass(frozen=True)
class RuntimeConfig:
    """Tuning knobs of the fault-tolerant runtime.

    Attributes
    ----------
    jobs:
        Pool width; ``1`` runs every task inline (no processes).
    task_timeout:
        Per-attempt wall-clock budget in seconds (pool mode); ``None``
        waits forever, the pre-runtime behaviour.
    max_retries:
        How many *faulted* attempts (exceptions or timeouts) a task may
        burn beyond its first before it is finalized.  Pool deaths blamed
        on other tasks never charge this budget.
    backoff_base, backoff_cap:
        Exponential-backoff schedule: retry ``k`` waits
        ``min(cap, base * 2**(k-1))`` seconds, scaled by seeded jitter
        in ``[0.5, 1.5)``.
    seed:
        Seed for the backoff jitter (shared with any
        :class:`~repro.faults.FaultPlan` semantics).
    quarantine_after:
        How many pool deaths a task must be in flight for before it is
        bisected (re-run alone); a task that then kills its solo pool is
        quarantined.
    """

    jobs: int = 1
    task_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    seed: int = 0
    quarantine_after: int = 2

    def __post_init__(self) -> None:
        check_int(self.jobs, "jobs", minimum=1)
        check_int(self.max_retries, "max_retries", minimum=0)
        check_int(self.quarantine_after, "quarantine_after", minimum=1)
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")

    def backoff_delay(self, digest: str, fault_count: int,
                      faults: FaultPlan | None) -> float:
        """Seconds to wait before retry number *fault_count* of a task."""
        base = min(self.backoff_cap,
                   self.backoff_base * 2.0 ** max(0, fault_count - 1))
        jitter_plan = faults if faults is not None else FaultPlan(seed=self.seed)
        return base * jitter_plan.backoff_jitter(digest, fault_count)


@dataclass
class TaskReport:
    """Per-task execution record returned alongside the plans.

    Attributes
    ----------
    digest:
        The task's store-key digest (its identity).
    status:
        One of :data:`TERMINAL_STATUSES`.
    attempts:
        Times the task was submitted (including the successful one).
    fault_count:
        Faults charged to this task: its own exceptions, timeouts and
        pool deaths it was blamed for.
    error:
        Final failure description for unsuccessful statuses.
    duration_s:
        Wall-clock seconds of the *successful* attempt's evaluation
        (measured worker-side in pool mode); 0.0 when the task never
        completed.
    worker_metrics:
        The worker's metric-delta snapshot
        (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) for the
        successful attempt, already merged into the parent registry by
        :func:`execute_tasks`; None in inline mode (the parent recorded
        directly).
    """

    digest: str
    status: str = STATUS_OK
    attempts: int = 0
    fault_count: int = 0
    error: str | None = None
    duration_s: float = 0.0
    worker_metrics: dict[str, Any] | None = None

    @property
    def succeeded(self) -> bool:
        """True when the task produced a plan (``ok`` or ``retried``)."""
        return self.status in (STATUS_OK, STATUS_RETRIED)


@dataclass
class RuntimeResult:
    """Everything :func:`execute_tasks` knows when the dust settles.

    Attributes
    ----------
    plans:
        Store-key digest -> winning :class:`Plan` for every task that
        completed (including after retries).
    reports:
        Digest -> :class:`TaskReport`, one per distinct task.
    pool_rebuilds:
        Times the process pool was torn down and rebuilt (crashes and
        reclaimed hangs).
    """

    plans: dict[str, Plan] = field(default_factory=dict)
    reports: dict[str, TaskReport] = field(default_factory=dict)
    pool_rebuilds: int = 0

    @property
    def complete(self) -> bool:
        """True when every task succeeded (possibly after retries)."""
        return all(r.succeeded for r in self.reports.values())

    def summary(self) -> dict[str, int]:
        """Status -> count over all task reports (zero counts omitted)."""
        counts: dict[str, int] = {}
        for report in self.reports.values():
            counts[report.status] = counts.get(report.status, 0) + 1
        return counts

    def failures(self) -> dict[str, TaskReport]:
        """Digest -> report for every task that did not produce a plan."""
        return {d: r for d, r in self.reports.items() if not r.succeeded}


# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------
class _Instruments:
    """Bound metric series of one :func:`execute_tasks` run."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.completed = registry.counter(
            "repro_runtime_tasks_completed_total",
            "Grid-evaluation tasks finished, by terminal status.")
        self.retries = registry.counter(
            "repro_runtime_retries_total",
            "Retry attempts scheduled after a charged fault.").labels()
        self.timeouts = registry.counter(
            "repro_runtime_timeouts_total",
            "Task attempts that exceeded the per-task timeout.").labels()
        self.quarantines = registry.counter(
            "repro_runtime_quarantines_total",
            "Tasks isolated after repeatedly killing the pool.").labels()
        self.rebuilds = registry.counter(
            "repro_runtime_pool_rebuilds_total",
            "Worker-pool teardowns and rebuilds (crashes + hangs).").labels()
        self.queue_wait = registry.histogram(
            "repro_runtime_task_queue_wait_seconds",
            "Seconds a task waited between becoming ready and being "
            "submitted to a worker.", buckets=_DURATION_BUCKETS).labels()
        self.exec = registry.histogram(
            "repro_runtime_task_exec_seconds",
            "Wall-clock seconds of one task evaluation (worker-side in "
            "pool mode).", buckets=_DURATION_BUCKETS).labels()

    def finish(self, result: RuntimeResult) -> None:
        """Record terminal statuses; totals reconcile with
        :meth:`RuntimeResult.summary` by construction."""
        for status, count in result.summary().items():
            self.completed.labels(status=status).inc(count)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _evaluate(task) -> Plan:
    """Evaluate one :class:`~repro.service.provision.EvalTask`."""
    point = GridPoint(task.family, task.source, task.alpha_t, task.alpha_r)
    return evaluate_grid_point(point, task.d, balanced=task.balanced)


def _worker(task, fault: str | None, hang_seconds: float,
            slow_seconds: float, evaluate=_evaluate
            ) -> tuple[str, Any, float, dict]:
    """Pool entry point: apply any injected fault, then evaluate.

    Module-level so the pool can pickle it by reference; *evaluate* must
    likewise be a module-level callable (the default is the planner's
    grid-point evaluation, the sweep engine ships its own).  ``crash``
    kills the process outright (the BrokenProcessPool path), ``hang``
    sleeps long enough to trip the per-task timeout, ``slow`` adds
    latency, ``error`` raises — the four failure modes the runtime must
    absorb.

    Returns ``(digest, result, duration_s, metrics_snapshot)``: the
    evaluation is timed worker-side and recorded into a private
    registry whose snapshot the parent merges, so per-worker metric
    deltas survive the process boundary.
    """
    if fault == "crash":
        os._exit(13)
    if fault == "hang":
        time.sleep(hang_seconds)
    elif fault == "slow":
        time.sleep(slow_seconds)
    elif fault == "error":
        raise RuntimeError(
            f"injected worker error for task {task.key()[:12]}")
    registry = MetricsRegistry()
    start = perf_counter()
    plan = evaluate(task)
    duration = perf_counter() - start
    registry.histogram(
        "repro_runtime_task_exec_seconds",
        "Wall-clock seconds of one task evaluation (worker-side in "
        "pool mode).", buckets=_DURATION_BUCKETS).observe(duration)
    registry.counter(
        "repro_runtime_worker_evaluations_total",
        "Evaluations completed inside pool workers.").inc()
    return task.key(), plan, duration, registry.snapshot()


def _checkpoint(store, task, plan: Plan) -> None:
    """Persist one finished evaluation immediately (resume-warm support)."""
    if store is not None:
        store.put_eval(task.family, task.n, task.d, task.alpha_t,
                       task.alpha_r, task.balanced, plan)


def _teardown_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged or dead workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown of a broken pool
        pass
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------
def execute_tasks(tasks, *, config: RuntimeConfig | None = None,
                  store=None, faults: FaultPlan | None = None,
                  registry: MetricsRegistry | None = None,
                  evaluate=None, checkpoint=None
                  ) -> RuntimeResult:
    """Run every task to a terminal status; never raise for a task fault.

    Parameters
    ----------
    tasks:
        Iterable of task objects exposing ``key() -> str`` (their identity
        digest); duplicates are evaluated once.  The default *evaluate*
        expects :class:`~repro.service.provision.EvalTask`.
    config:
        :class:`RuntimeConfig`; default runs inline with 2 retries.
    store:
        Optional :class:`~repro.service.store.ScheduleStore` (or protocol
        equivalent).  Completed evaluations are checkpointed into it *as
        they finish*, so an interrupted batch resumes warm.
    faults:
        Optional :class:`~repro.faults.FaultPlan` whose worker-side
        injections (crash/hang/slow/error) are applied per attempt — the
        hook the crash-path tests and chaos benchmarks use.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` collecting
        the runtime's counters and duration histograms (see
        docs/observability.md for the catalog); default: the process
        default registry.  Worker-side metric deltas are merged in and
        the terminal-status counters reconcile exactly with
        :meth:`RuntimeResult.summary`.
    evaluate:
        The per-task evaluation callable, ``task -> result``; must be a
        *module-level* function so the pool can pickle it by reference.
        Defaults to the planner grid-point evaluation.
    checkpoint:
        Parent-side callable ``(task, result) -> None`` invoked the
        moment a task completes; defaults to checkpointing the plan into
        *store*.  Exceptions here propagate — losing checkpoints silently
        would defeat warm resume.

    Returns
    -------
    RuntimeResult
        Results for every survivor plus a :class:`TaskReport` per task.
    """
    config = config or RuntimeConfig()
    if evaluate is None:
        evaluate = _evaluate
    if checkpoint is None:
        def checkpoint(task, plan, _store=store):
            _checkpoint(_store, task, plan)
    instruments = _Instruments(registry if registry is not None
                               else default_registry())
    distinct: dict[str, object] = {}
    for task in tasks:
        distinct.setdefault(task.key(), task)
    result = RuntimeResult(
        reports={digest: TaskReport(digest) for digest in distinct})
    if not distinct:
        return result
    _log.info("batch_started", extra={
        "tasks": len(distinct), "jobs": config.jobs,
        "task_timeout": config.task_timeout,
        "max_retries": config.max_retries})
    start = perf_counter()
    if config.jobs == 1:
        _run_inline(distinct, config, checkpoint, faults, result,
                    instruments, evaluate)
    else:
        _run_pool(distinct, config, checkpoint, faults, result,
                  instruments, evaluate)
    instruments.finish(result)
    _log.info("batch_finished", extra={
        "tasks": len(distinct), "duration_s": round(perf_counter() - start, 6),
        "pool_rebuilds": result.pool_rebuilds,
        **{f"status_{k}": v for k, v in sorted(result.summary().items())}})
    return result


def _run_inline(distinct, config: RuntimeConfig, checkpoint,
                faults: FaultPlan | None, result: RuntimeResult,
                instruments: _Instruments, evaluate) -> None:
    """The ``jobs=1`` path: no pool, same statuses and retry policy.

    Inline, a ``crash`` injection degrades to an error (there is no
    process to kill) and a ``hang`` degrades to an immediate timeout
    charge (nothing can preempt in-process execution).
    """
    for digest, task in distinct.items():
        report = result.reports[digest]
        while True:
            fault = (faults.worker_fault(digest, report.attempts)
                     if faults is not None else None)
            report.attempts += 1
            kind = error = None
            if fault in ("crash", "error"):
                kind, error = "error", f"injected {fault}"
            elif fault == "hang":
                kind = "timeout"
            else:
                if fault == "slow" and faults is not None:
                    time.sleep(faults.slow_seconds)
                try:
                    with span("runtime.task", digest=digest[:12],
                              attempt=report.attempts):
                        start = perf_counter()
                        plan = evaluate(task)
                        duration = perf_counter() - start
                except Exception as exc:
                    kind, error = "error", f"{type(exc).__name__}: {exc}"
            if kind is None:
                result.plans[digest] = plan
                report.status = (STATUS_RETRIED if report.fault_count
                                 else STATUS_OK)
                report.duration_s = duration
                instruments.exec.observe(duration)
                checkpoint(task, plan)
                _log.info("task_completed", extra={
                    "digest": digest[:12], "status": report.status,
                    "attempts": report.attempts,
                    "duration_s": round(duration, 6)})
                break
            report.fault_count += 1
            report.error = error
            if kind == "timeout":
                instruments.timeouts.inc()
            if report.fault_count > config.max_retries:
                report.status = (STATUS_TIMED_OUT if kind == "timeout"
                                 else STATUS_FAILED)
                if kind == "timeout":
                    report.error = "injected hang (inline mode times out " \
                                   "immediately)"
                _log.warning("task_failed", extra={
                    "digest": digest[:12], "status": report.status,
                    "attempts": report.attempts, "error": report.error})
                break
            instruments.retries.inc()
            _log.warning("task_retrying", extra={
                "digest": digest[:12], "attempts": report.attempts,
                "fault_count": report.fault_count, "error": error})
            time.sleep(config.backoff_delay(digest, report.fault_count,
                                            faults))


def _run_pool(distinct, config: RuntimeConfig, checkpoint,
              faults: FaultPlan | None, result: RuntimeResult,
              instruments: _Instruments, evaluate) -> None:
    """The ``jobs>1`` path: individual futures over a rebuildable pool."""
    width = min(config.jobs, len(distinct))
    pool = ProcessPoolExecutor(max_workers=width)
    ready: deque[str] = deque(distinct)
    enqueued_at: dict[str, float] = {d: time.monotonic() for d in distinct}
    retry_at: dict[str, float] = {}
    solo: deque[str] = deque()          # bisection queue: run one at a time
    inflight: dict[Future, tuple[str, float]] = {}
    blame: dict[str, int] = {}
    solo_digest: str | None = None
    hang_s = faults.hang_seconds if faults is not None else 0.0
    slow_s = faults.slow_seconds if faults is not None else 0.0

    def finalize(digest: str, status: str, error: str) -> None:
        report = result.reports[digest]
        report.status = status
        report.error = error
        if status == STATUS_QUARANTINED:
            instruments.quarantines.inc()
        _log.warning("task_failed", extra={
            "digest": digest[:12], "status": status,
            "attempts": report.attempts, "error": error})

    def succeed(digest: str, plan: Plan, duration: float,
                worker_snapshot: dict) -> None:
        nonlocal solo_digest
        report = result.reports[digest]
        result.plans[digest] = plan
        report.status = STATUS_RETRIED if report.fault_count else STATUS_OK
        report.duration_s = duration
        report.worker_metrics = worker_snapshot
        instruments.registry.merge(worker_snapshot)
        checkpoint(distinct[digest], plan)
        # Worker processes have no ambient trace context: the span is
        # recorded parent-side, back-dated by the worker's own timing.
        default_tracer().record("runtime.task", duration,
                                digest=digest[:12],
                                attempts=report.attempts)
        _log.info("task_completed", extra={
            "digest": digest[:12], "status": report.status,
            "attempts": report.attempts, "duration_s": round(duration, 6)})
        if solo_digest == digest:
            solo_digest = None

    def charge(digest: str, kind: str, error: str) -> None:
        """One fault on the task's own account: retry or finalize."""
        nonlocal solo_digest
        report = result.reports[digest]
        report.fault_count += 1
        report.error = error
        if kind == "timeout":
            instruments.timeouts.inc()
        if solo_digest == digest:
            solo_digest = None
        if report.fault_count > config.max_retries:
            finalize(digest, STATUS_TIMED_OUT if kind == "timeout"
                     else STATUS_FAILED, error)
        else:
            instruments.retries.inc()
            _log.warning("task_retrying", extra={
                "digest": digest[:12], "attempts": report.attempts,
                "fault_count": report.fault_count, "error": error})
            retry_at[digest] = time.monotonic() + config.backoff_delay(
                digest, report.fault_count, faults)

    def rebuild_pool() -> None:
        nonlocal pool
        result.pool_rebuilds += 1
        instruments.rebuilds.inc()
        _log.warning("pool_rebuilt", extra={
            "rebuilds": result.pool_rebuilds, "width": width})
        _teardown_pool(pool)
        pool = ProcessPoolExecutor(max_workers=width)

    def handle_pool_death() -> None:
        """Blame the in-flight tasks, rebuild, re-enqueue or bisect."""
        nonlocal solo_digest
        victims = [digest for digest, _ in inflight.values()]
        inflight.clear()
        rebuild_pool()
        now = time.monotonic()
        for digest in victims:
            blame[digest] = blame.get(digest, 0) + 1
            report = result.reports[digest]
            report.fault_count += 1
            if blame[digest] >= config.quarantine_after:
                if len(victims) == 1:
                    # Bisection ended: this task killed a pool all alone.
                    finalize(digest, STATUS_QUARANTINED,
                             f"worker pool died {blame[digest]} times with "
                             "this task in flight; quarantined")
                else:
                    solo.append(digest)  # suspicious: isolate and re-run
            else:
                ready.append(digest)
                enqueued_at[digest] = now
        solo_digest = None

    def submit(digest: str) -> bool:
        """Ship one attempt; False when the pool turned out to be dead."""
        report = result.reports[digest]
        fault = (faults.worker_fault(digest, report.attempts)
                 if faults is not None else None)
        try:
            future = pool.submit(_worker, distinct[digest], fault,
                                 hang_s, slow_s, evaluate)
        except (BrokenProcessPool, RuntimeError):
            ready.appendleft(digest)
            return False
        report.attempts += 1
        now = time.monotonic()
        instruments.queue_wait.observe(
            max(0.0, now - enqueued_at.get(digest, now)))
        inflight[future] = (digest, now)
        return True

    try:
        while ready or solo or retry_at or inflight:
            now = time.monotonic()
            for digest, when in list(retry_at.items()):
                if when <= now:
                    del retry_at[digest]
                    ready.append(digest)
                    enqueued_at[digest] = now

            # Fill the pool — or, when the regular queue has drained,
            # bisect one suspect at a time.
            if solo_digest is None:
                dead = False
                while ready and len(inflight) < width and not dead:
                    dead = not submit(ready.popleft())
                if dead:
                    handle_pool_death()
                    continue
                if not inflight and not ready and not retry_at and solo:
                    solo_digest = solo.popleft()
                    if not submit(solo_digest):
                        handle_pool_death()
                        continue

            if not inflight:
                if retry_at:
                    time.sleep(max(0.0, min(retry_at.values())
                                   - time.monotonic()) + 0.001)
                continue

            done, _ = wait(list(inflight), timeout=_TICK_SECONDS,
                           return_when=FIRST_COMPLETED)
            pool_died = False
            for future in done:
                exc = future.exception()
                if isinstance(exc, BrokenProcessPool):
                    pool_died = True
                    continue  # every sibling future is poisoned too
                digest, _started = inflight.pop(future)
                if exc is None:
                    _key, plan, duration, snapshot = future.result()
                    succeed(digest, plan, duration, snapshot)
                else:
                    charge(digest, "error",
                           f"{type(exc).__name__}: {exc}")
            if pool_died:
                handle_pool_death()
                continue

            if config.task_timeout is not None:
                now = time.monotonic()
                overdue = [(future, digest, started)
                           for future, (digest, started) in inflight.items()
                           if now - started > config.task_timeout
                           and not future.done()]
                if overdue:
                    # A wedged worker cannot be cancelled; reclaim the
                    # whole pool and give the innocents a free re-run.
                    victims = dict(inflight.values())
                    inflight.clear()
                    rebuild_pool()
                    timed_out = {digest for _f, digest, _s in overdue}
                    for digest in victims:
                        if digest in timed_out:
                            charge(digest, "timeout",
                                   "attempt exceeded task_timeout="
                                   f"{config.task_timeout}s")
                        else:
                            ready.append(digest)
                            enqueued_at[digest] = now
    finally:
        _teardown_pool(pool)
