"""Parallel fan-out of planner grid evaluations with deterministic merge.

The planner's substrate × ``(alpha_T, alpha_R)`` grid is embarrassingly
parallel: every :class:`~repro.core.planner.GridPoint` evaluation is
independent and budget-free (see
:func:`repro.core.planner.evaluate_grid_point`).  This module farms
deduplicated grid points — possibly pooled across a whole batch of
provisioning requests — over a :class:`concurrent.futures`
process pool and returns results keyed by the store's key schema, so the
caller can reassemble per-request candidate lists *in grid order* and
select winners with :func:`repro.core.planner.select_best`.  Selection
order, not completion order, decides ties; hence ``jobs=1`` and
``jobs=N`` provably produce identical plans.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro._validation import check_int
from repro.core.planner import GridPoint, Plan, evaluate_grid_point
from repro.core.schedule import Schedule
from repro.service.store import key_digest, eval_key

__all__ = ["EvalTask", "task_from_point", "evaluate_tasks"]


@dataclass(frozen=True)
class EvalTask:
    """One self-contained grid-point evaluation, picklable for workers.

    Attributes
    ----------
    family:
        Substrate family name (part of the cache key).
    source:
        The substrate schedule itself, shipped to the worker so it does
        not rebuild the family from scratch.
    n, d:
        The network class the evaluation is quoted for.
    alpha_t, alpha_r:
        Energy parameters of the construction.
    balanced:
        Use the section 7 balanced-energy divisions.
    """

    family: str
    source: Schedule
    n: int
    d: int
    alpha_t: int
    alpha_r: int
    balanced: bool

    def key(self) -> str:
        """The task's store-key digest — its identity for deduplication."""
        return key_digest(eval_key(self.family, self.n, self.d,
                                   self.alpha_t, self.alpha_r, self.balanced))


def task_from_point(point: GridPoint, n: int, d: int, balanced: bool
                    ) -> EvalTask:
    """Package a planner grid point as a pool-shippable task."""
    return EvalTask(family=point.family, source=point.source, n=n, d=d,
                    alpha_t=point.alpha_t, alpha_r=point.alpha_r,
                    balanced=balanced)


def _evaluate_task(task: EvalTask) -> tuple[str, Plan]:
    """Worker entry point: evaluate one task, return ``(digest, plan)``.

    Module-level so the process pool can pickle it by reference.
    """
    point = GridPoint(task.family, task.source, task.alpha_t, task.alpha_r)
    plan = evaluate_grid_point(point, task.d, balanced=task.balanced)
    return task.key(), plan


def evaluate_tasks(tasks: list[EvalTask], *, jobs: int = 1
                   ) -> dict[str, Plan]:
    """Evaluate every task, inline or over a process pool.

    Returns a dict from store-key digest to :class:`Plan`.  Duplicate
    digests in *tasks* are evaluated once.  With ``jobs == 1`` everything
    runs in-process (no pool, no pickling); with ``jobs > 1`` tasks are
    distributed over ``min(jobs, len(tasks))`` workers.  Because results
    come back *keyed*, scheduling order cannot influence which plan a
    request ultimately selects — merging is deterministic by design.
    """
    jobs = check_int(jobs, "jobs", minimum=1)
    distinct: dict[str, EvalTask] = {}
    for task in tasks:
        distinct.setdefault(task.key(), task)
    if not distinct:
        return {}
    todo = list(distinct.values())
    if jobs == 1 or len(todo) == 1:
        return {task.key(): evaluate_grid_point(
            GridPoint(task.family, task.source, task.alpha_t, task.alpha_r),
            task.d, balanced=task.balanced) for task in todo}
    results: dict[str, Plan] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
        for digest, plan in pool.map(_evaluate_task, todo):
            results[digest] = plan
    return results
