"""Parallel fan-out of planner grid evaluations with deterministic merge.

The planner's substrate × ``(alpha_T, alpha_R)`` grid is embarrassingly
parallel: every :class:`~repro.core.planner.GridPoint` evaluation is
independent and budget-free (see
:func:`repro.core.planner.evaluate_grid_point`).  This module farms
deduplicated grid points — possibly pooled across a whole batch of
provisioning requests — over the fault-tolerant runtime of
:mod:`repro.service.runtime` and returns results keyed by the store's key
schema, so the caller can reassemble per-request candidate lists *in grid
order* and select winners with :func:`repro.core.planner.select_best`.
Selection order, not completion order, decides ties; hence ``jobs=1`` and
``jobs=N`` provably produce identical plans.

Failure semantics: a raising task never takes the batch down with it.
:func:`evaluate_tasks` returns every survivor's plan; the failed tasks'
diagnoses live in the :class:`~repro.service.runtime.TaskReport` objects
of :func:`~repro.service.runtime.execute_tasks`, which this function
wraps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._validation import check_int
from repro.core.planner import GridPoint, Plan
from repro.core.schedule import Schedule
from repro.service.runtime import RuntimeConfig, execute_tasks
from repro.service.store import key_digest, eval_key

__all__ = ["EvalTask", "task_from_point", "evaluate_tasks"]


@dataclass(frozen=True)
class EvalTask:
    """One self-contained grid-point evaluation, picklable for workers.

    Attributes
    ----------
    family:
        Substrate family name (part of the cache key).
    source:
        The substrate schedule itself, shipped to the worker so it does
        not rebuild the family from scratch.
    n, d:
        The network class the evaluation is quoted for.
    alpha_t, alpha_r:
        Energy parameters of the construction.
    balanced:
        Use the section 7 balanced-energy divisions.
    """

    family: str
    source: Schedule
    n: int
    d: int
    alpha_t: int
    alpha_r: int
    balanced: bool

    def key(self) -> str:
        """The task's store-key digest — its identity for deduplication."""
        return key_digest(eval_key(self.family, self.n, self.d,
                                   self.alpha_t, self.alpha_r, self.balanced))


def task_from_point(point: GridPoint, n: int, d: int, balanced: bool
                    ) -> EvalTask:
    """Package a planner grid point as a pool-shippable task."""
    return EvalTask(family=point.family, source=point.source, n=n, d=d,
                    alpha_t=point.alpha_t, alpha_r=point.alpha_r,
                    balanced=balanced)


def evaluate_tasks(tasks: list[EvalTask], *, jobs: int = 1,
                   config: RuntimeConfig | None = None, store=None,
                   faults=None) -> dict[str, Plan]:
    """Evaluate every task; survivors always come back, failures never
    poison the batch.

    Returns a dict from store-key digest to :class:`Plan`.  Duplicate
    digests in *tasks* are evaluated once.  With ``jobs == 1`` everything
    runs in-process (no pool, no pickling); with ``jobs > 1`` each task is
    an individual future over ``min(jobs, len(tasks))`` workers under the
    fault-tolerant runtime (per-task timeout, retry with backoff, broken
    pool recovery — see :mod:`repro.service.runtime`).  Because results
    come back *keyed*, scheduling order cannot influence which plan a
    request ultimately selects — merging is deterministic by design.

    A task whose final attempt raises is simply *absent* from the returned
    dict; every other task's plan is still present.  Callers that need the
    per-task diagnosis (status, attempts, error text) should use
    :func:`repro.service.runtime.execute_tasks` directly, which this
    function wraps.  *config*, *store* and *faults* pass through to it:
    *store* checkpoints completed evaluations immediately, *faults*
    injects worker failures for tests and chaos runs.
    """
    jobs = check_int(jobs, "jobs", minimum=1)
    distinct: dict[str, EvalTask] = {}
    for task in tasks:
        distinct.setdefault(task.key(), task)
    if not distinct:
        return {}
    if len(distinct) == 1 and faults is None:
        jobs = 1  # a pool for one task is pure overhead
    config = config or RuntimeConfig()
    if config.jobs != jobs:
        config = replace(config, jobs=jobs)
    outcome = execute_tasks(distinct.values(), config=config, store=store,
                            faults=faults)
    return outcome.plans
