"""Schedule provisioning service: cache, parallel provisioner, batch API.

The first scaling layer of the reproduction.  Where :mod:`repro.core`
computes one schedule exactly, this package serves *many* schedule
requests fast:

``repro.service.store``
    Content-addressed, versioned on-disk schedule cache with an in-memory
    LRU front, atomic writes and corruption-tolerant loads.
``repro.service.provision``
    Deduplicating fan-out of planner grid evaluations over a process
    pool, with deterministic (grid-order) result merging.
``repro.service.api``
    The batch request surface — :class:`ProvisionRequest`,
    :class:`ProvisionResult`, :func:`provision_batch` — exposed on the
    command line as ``repro provision`` (JSONL in/out).
"""

from repro.service.api import ProvisionRequest, ProvisionResult, provision_batch
from repro.service.provision import EvalTask, evaluate_tasks, task_from_point
from repro.service.store import (
    ScheduleStore,
    StoreStats,
    default_cache_dir,
    eval_key,
    key_digest,
    plan_key,
)

__all__ = [
    "ProvisionRequest",
    "ProvisionResult",
    "provision_batch",
    "EvalTask",
    "evaluate_tasks",
    "task_from_point",
    "ScheduleStore",
    "StoreStats",
    "default_cache_dir",
    "eval_key",
    "plan_key",
    "key_digest",
]
