"""Schedule provisioning service: cache, parallel provisioner, batch API.

The first scaling layer of the reproduction.  Where :mod:`repro.core`
computes one schedule exactly, this package serves *many* schedule
requests fast:

``repro.service.store``
    Content-addressed, versioned on-disk schedule cache with an in-memory
    LRU front, atomic writes and corruption-tolerant loads.
``repro.service.provision``
    Deduplicating fan-out of planner grid evaluations with deterministic
    (grid-order) result merging.
``repro.service.runtime``
    The fault-tolerant execution layer underneath: individual futures,
    per-task timeout, retry with seeded backoff, broken-pool recovery
    with bisection quarantine, and checkpointing into the store.
``repro.service.api``
    The batch request surface — :class:`ProvisionRequest`,
    :class:`ProvisionResult`, :func:`provision_batch`,
    :func:`provision_batch_report` — exposed on the command line as
    ``repro provision`` (JSONL in/out).
"""

from repro.service.api import (
    BatchReport,
    ProvisionRequest,
    ProvisionResult,
    provision_batch,
    provision_batch_report,
)
from repro.service.provision import EvalTask, evaluate_tasks, task_from_point
from repro.service.runtime import (
    RuntimeConfig,
    RuntimeResult,
    TaskReport,
    execute_tasks,
)
from repro.service.store import (
    ScheduleStore,
    StoreStats,
    default_cache_dir,
    eval_key,
    key_digest,
    plan_key,
)

__all__ = [
    "ProvisionRequest",
    "ProvisionResult",
    "BatchReport",
    "provision_batch",
    "provision_batch_report",
    "RuntimeConfig",
    "RuntimeResult",
    "TaskReport",
    "execute_tasks",
    "EvalTask",
    "evaluate_tasks",
    "task_from_point",
    "ScheduleStore",
    "StoreStats",
    "default_cache_dir",
    "eval_key",
    "plan_key",
    "key_digest",
]
