"""Content-addressed, versioned on-disk store for schedules and plans.

Deployments compute a schedule once and flash it to motes; a provisioning
service answering many ``(n, D, duty)`` requests should therefore compute
each schedule once, ever.  :class:`ScheduleStore` memoizes the planner's
work at two granularities:

* **eval entries** — one constructed grid point, keyed by
  ``(family, n, D, alpha_T, alpha_R, balanced, FORMAT_VERSION)``.  These
  are budget-independent, so different duty budgets share them.
* **plan entries** — the winning :class:`~repro.core.planner.Plan` of a
  full budget search, keyed by ``(n, D, max_duty, balanced,
  FORMAT_VERSION)``.

Keys are canonical JSON documents hashed with SHA-256 (content
addressing: the digest is the filename, so the key space shards evenly
and is safe to distribute later).  Payloads reuse the versioned
interchange format of :mod:`repro.core.serialization` — a cache entry is
a superset of a flashable schedule file.  Durability rules:

* writes are atomic (`tmp` file + ``os.replace``) so a crashed process
  never leaves a half-written entry;
* loads are corruption-tolerant: any unreadable, unparsable, key-mismatched
  or semantically invalid entry is *evicted* (unlinked) and reported as a
  miss, never raised — the worst case is recomputation;
* bumping :data:`repro.core.serialization.FORMAT_VERSION` invalidates
  every entry implicitly, because the version participates in the key.

A small in-memory LRU sits in front of the disk so hot keys skip JSON
parsing entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Any

from repro._validation import check_int
from repro.core.planner import Plan
from repro.core.serialization import (
    FORMAT_VERSION,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = ["ScheduleStore", "StoreStats", "eval_key", "plan_key",
           "key_digest", "default_cache_dir"]


def default_cache_dir() -> Path:
    """The conventional per-user cache location (XDG aware)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "schedules"


def eval_key(family: str, n: int, d: int, alpha_t: int, alpha_r: int,
             balanced: bool) -> dict[str, Any]:
    """Canonical key document for one constructed grid point."""
    return {
        "kind": "eval",
        "family": str(family),
        "n": check_int(n, "n", minimum=1),
        "d": check_int(d, "d", minimum=1),
        "alpha_t": check_int(alpha_t, "alpha_t", minimum=1),
        "alpha_r": check_int(alpha_r, "alpha_r", minimum=1),
        "balanced": bool(balanced),
        "version": FORMAT_VERSION,
    }


def plan_key(n: int, d: int, budget: Fraction, balanced: bool) -> dict[str, Any]:
    """Canonical key document for a full budget-search result."""
    return {
        "kind": "plan",
        "n": check_int(n, "n", minimum=1),
        "d": check_int(d, "d", minimum=1),
        "max_duty": str(Fraction(budget)),
        "balanced": bool(balanced),
        "version": FORMAT_VERSION,
    }


def key_digest(key: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of a key document.

    Canonical means sorted keys and no whitespace, so the digest is
    stable across processes, machines and Python versions — the property
    the cross-process key-stability test pins down.
    """
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters describing how a :class:`ScheduleStore` has been used.

    Attributes
    ----------
    memory_hits, disk_hits:
        Lookups served by the LRU front and by on-disk entries.
    misses:
        Lookups that found nothing (the caller will recompute).
    stores:
        Entries written.
    corruptions:
        Entries that existed but failed to load (unparsable, key
        mismatch, semantically invalid).  Each is reported as a miss; the
        counter is the store's quiet-failure audit trail.
    evictions:
        Corrupt entries actually removed (unlinked) during a failed load;
        lags :attr:`corruptions` only when the unlink itself fails.
    last_corruption:
        Filename and reason of the most recent corrupt load, for
        diagnosis without digging through logs.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corruptions: int = 0
    evictions: int = 0
    last_corruption: str | None = None

    @property
    def hits(self) -> int:
        """Total lookups served from either layer."""
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of every counter.

        This is what :class:`~repro.service.api.BatchReport` and
        ``repro provision --stats`` surface.
        """
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
            "last_corruption": self.last_corruption,
        }


class ScheduleStore:
    """Persistent schedule cache with an in-memory LRU front.

    Implements the cache protocol :func:`repro.core.planner.plan_schedule`
    and :func:`repro.service.api.provision_batch` consume:
    ``get_eval``/``put_eval`` for grid-point evaluations and
    ``get_plan``/``put_plan`` for winning plans.
    """

    def __init__(self, cache_dir: str | Path | None = None, *,
                 memory_slots: int = 256) -> None:
        """Create a store rooted at *cache_dir* (default: XDG cache).

        *memory_slots* bounds the LRU front; 0 disables it (every hit
        reparses from disk — useful only for tests).
        """
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self.memory_slots = check_int(memory_slots, "memory_slots", minimum=0)
        self._memory: OrderedDict[str, Plan] = OrderedDict()
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # the cache protocol
    # ------------------------------------------------------------------
    def get_eval(self, family: str, n: int, d: int, alpha_t: int,
                 alpha_r: int, balanced: bool) -> Plan | None:
        """Cached evaluation of one grid point, or None."""
        return self._get(eval_key(family, n, d, alpha_t, alpha_r, balanced))

    def put_eval(self, family: str, n: int, d: int, alpha_t: int,
                 alpha_r: int, balanced: bool, plan: Plan) -> None:
        """Persist the evaluation of one grid point."""
        self._put(eval_key(family, n, d, alpha_t, alpha_r, balanced), plan)

    def get_plan(self, n: int, d: int, budget: Fraction, balanced: bool
                 ) -> Plan | None:
        """Cached winner of a full budget search, or None."""
        return self._get(plan_key(n, d, budget, balanced))

    def put_plan(self, n: int, d: int, budget: Fraction, balanced: bool,
                 plan: Plan) -> None:
        """Persist the winner of a full budget search."""
        self._put(plan_key(n, d, budget, balanced), plan)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry (disk and memory); returns entries removed."""
        self._memory.clear()
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def entry_path(self, key: dict[str, Any]) -> Path:
        """The on-disk location a key document maps to (exists or not)."""
        digest = key_digest(key)
        return self.cache_dir / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _get(self, key: dict[str, Any]) -> Plan | None:
        digest = key_digest(key)
        if digest in self._memory:
            self._memory.move_to_end(digest)
            self.stats.memory_hits += 1
            return self._memory[digest]
        path = self.cache_dir / digest[:2] / f"{digest}.json"
        try:
            doc = json.loads(path.read_text())
            plan = self._decode(doc, key)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception as exc:
            # A bad cache entry is evicted and recomputed, never fatal —
            # but never silently either: the stats record what happened.
            self.stats.corruptions += 1
            self.stats.misses += 1
            self.stats.last_corruption = \
                f"{path.name}: {type(exc).__name__}: {exc}"
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
            return None
        self.stats.disk_hits += 1
        self._remember(digest, plan)
        return plan

    def _put(self, key: dict[str, Any], plan: Plan) -> None:
        digest = key_digest(key)
        path = self.cache_dir / digest[:2] / f"{digest}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self._encode(key, plan)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        self.stats.stores += 1
        self._remember(digest, plan)

    def _remember(self, digest: str, plan: Plan) -> None:
        if self.memory_slots == 0:
            return
        self._memory[digest] = plan
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    @staticmethod
    def _encode(key: dict[str, Any], plan: Plan) -> dict[str, Any]:
        return {
            "format": "repro-cache-entry",
            "version": FORMAT_VERSION,
            "key": key,
            "plan": {
                "family": plan.family,
                "alpha_t": plan.alpha_t,
                "alpha_r": plan.alpha_r,
                "throughput": str(plan.throughput),
                "duty_cycle": str(plan.duty_cycle),
                "frame_length": plan.frame_length,
                "schedule": schedule_to_dict(plan.schedule),
            },
        }

    @staticmethod
    def _decode(doc: dict[str, Any], key: dict[str, Any]) -> Plan:
        if doc.get("format") != "repro-cache-entry":
            raise ValueError("not a repro-cache-entry document")
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported cache version {doc.get('version')!r}")
        if doc.get("key") != key:
            raise ValueError("cache entry key mismatch (hash collision or "
                             "corruption)")
        body = doc["plan"]
        schedule = schedule_from_dict(body["schedule"])
        frame_length = check_int(body["frame_length"], "frame_length", minimum=1)
        if frame_length != schedule.frame_length:
            raise ValueError("cache entry frame_length disagrees with payload")
        return Plan(
            schedule=schedule,
            family=str(body["family"]),
            alpha_t=check_int(body["alpha_t"], "alpha_t", minimum=1),
            alpha_r=check_int(body["alpha_r"], "alpha_r", minimum=1),
            throughput=Fraction(body["throughput"]),
            duty_cycle=Fraction(body["duty_cycle"]),
            frame_length=frame_length,
        )
