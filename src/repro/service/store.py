"""Content-addressed, versioned on-disk store for schedules and plans.

Deployments compute a schedule once and flash it to motes; a provisioning
service answering many ``(n, D, duty)`` requests should therefore compute
each schedule once, ever.  :class:`ScheduleStore` memoizes the planner's
work at two granularities:

* **eval entries** — one constructed grid point, keyed by
  ``(family, n, D, alpha_T, alpha_R, balanced, FORMAT_VERSION)``.  These
  are budget-independent, so different duty budgets share them.
* **plan entries** — the winning :class:`~repro.core.planner.Plan` of a
  full budget search, keyed by ``(n, D, max_duty, balanced,
  FORMAT_VERSION)``.

Keys are canonical JSON documents hashed with SHA-256 (content
addressing: the digest is the filename, so the key space shards evenly
and is safe to distribute later).  Payloads reuse the versioned
interchange format of :mod:`repro.core.serialization` — a cache entry is
a superset of a flashable schedule file.  Durability rules:

* writes are atomic (`tmp` file + ``os.replace``) so a crashed process
  never leaves a half-written entry;
* loads are corruption-tolerant: any unreadable, unparsable, key-mismatched
  or semantically invalid entry is **quarantined** — moved into
  ``cache_dir/quarantine/`` for post-mortem instead of silently destroyed
  — and reported as a miss, never raised; the worst case is
  recomputation;
* :meth:`ScheduleStore.scrub` is the offline integrity pass: it re-hashes
  and re-validates every entry on disk (``repro store scrub``), so silent
  corruption is found before a client ever asks for the entry;
* bumping :data:`repro.core.serialization.FORMAT_VERSION` invalidates
  every entry implicitly, because the version participates in the key.

A small in-memory LRU sits in front of the disk so hot keys skip JSON
parsing entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from fractions import Fraction
from pathlib import Path
from time import perf_counter
from typing import Any

from repro._validation import check_int
from repro.core.planner import Plan
from repro.core.serialization import (
    FORMAT_VERSION,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import default_tracer

_log = get_logger("service.store")

__all__ = ["ScheduleStore", "StoreStats", "ScrubReport", "eval_key",
           "plan_key", "key_digest", "default_cache_dir", "QUARANTINE_DIR"]

#: Subdirectory of the cache root that holds quarantined entries.  Its
#: name is longer than the two-character digest shards, so entry walks
#: (``glob("??/*.json")``) can never pick quarantined files back up.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """The conventional per-user cache location (XDG aware)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "schedules"


def eval_key(family: str, n: int, d: int, alpha_t: int, alpha_r: int,
             balanced: bool) -> dict[str, Any]:
    """Canonical key document for one constructed grid point."""
    return {
        "kind": "eval",
        "family": str(family),
        "n": check_int(n, "n", minimum=1),
        "d": check_int(d, "d", minimum=1),
        "alpha_t": check_int(alpha_t, "alpha_t", minimum=1),
        "alpha_r": check_int(alpha_r, "alpha_r", minimum=1),
        "balanced": bool(balanced),
        "version": FORMAT_VERSION,
    }


def plan_key(n: int, d: int, budget: Fraction, balanced: bool) -> dict[str, Any]:
    """Canonical key document for a full budget-search result."""
    return {
        "kind": "plan",
        "n": check_int(n, "n", minimum=1),
        "d": check_int(d, "d", minimum=1),
        "max_duty": str(Fraction(budget)),
        "balanced": bool(balanced),
        "version": FORMAT_VERSION,
    }


def key_digest(key: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of a key document.

    Canonical means sorted keys and no whitespace, so the digest is
    stable across processes, machines and Python versions — the property
    the cross-process key-stability test pins down.
    """
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class StoreStats:
    """A view over the store's registry counters, API-compatible with the
    old bespoke arithmetic.

    The numbers now live in :class:`repro.obs.metrics.MetricsRegistry`
    series (``repro_store_lookups_total{result=...}``,
    ``repro_store_writes_total``, ``repro_store_corruptions_total``,
    ``repro_store_evictions_total``) so one ``--metrics-out`` file
    carries them alongside every other subsystem; this class reads those
    series back as the familiar attributes.

    Attributes
    ----------
    memory_hits, disk_hits:
        Lookups served by the LRU front and by on-disk entries.
    misses:
        Lookups that found nothing (the caller will recompute).
    stores:
        Entries written.
    corruptions:
        Entries that existed but failed to load (unparsable, key
        mismatch, semantically invalid).  Each is reported as a miss; the
        counter is the store's quiet-failure audit trail.
    evictions:
        Corrupt entries actually removed (unlinked) during a failed load;
        lags :attr:`corruptions` only when the unlink itself fails.
    last_corruption:
        Filename and reason of the most recent corrupt load, for
        diagnosis without digging through logs.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        """Bind the view (and its counter series) to *registry*.

        With ``registry=None`` a private registry is created, so every
        :class:`ScheduleStore` keeps isolated statistics by default;
        pass a shared registry (the CLI passes its per-invocation one)
        to surface the counters in an exported snapshot.
        """
        self.registry = registry if registry is not None else MetricsRegistry()
        lookups = self.registry.counter(
            "repro_store_lookups_total",
            "Schedule-store lookups by result "
            "(memory_hit / disk_hit / miss).")
        self._memory_hits = lookups.labels(result="memory_hit")
        self._disk_hits = lookups.labels(result="disk_hit")
        self._misses = lookups.labels(result="miss")
        self._stores = self.registry.counter(
            "repro_store_writes_total", "Schedule-store entries written."
        ).labels()
        self._corruptions = self.registry.counter(
            "repro_store_corruptions_total",
            "Cache entries that existed but failed to load.").labels()
        self._evictions = self.registry.counter(
            "repro_store_evictions_total",
            "Corrupt cache entries removed during a failed load.").labels()
        self.last_corruption: str | None = None

    # -- properties the historical dataclass exposed ---------------------
    @property
    def memory_hits(self) -> int:
        """Lookups served by the in-memory LRU front."""
        return int(self._memory_hits.value)

    @property
    def disk_hits(self) -> int:
        """Lookups served by parsing an on-disk entry."""
        return int(self._disk_hits.value)

    @property
    def misses(self) -> int:
        """Lookups that found nothing usable (corrupt loads included)."""
        return int(self._misses.value)

    @property
    def stores(self) -> int:
        """Entries written (evals, plans and checkpoints alike)."""
        return int(self._stores.value)

    @property
    def corruptions(self) -> int:
        """Entries that existed but failed to load."""
        return int(self._corruptions.value)

    @property
    def evictions(self) -> int:
        """Corrupt entries actually unlinked."""
        return int(self._evictions.value)

    @property
    def hits(self) -> int:
        """Total lookups served from either layer."""
        return self.memory_hits + self.disk_hits

    # -- recording (ScheduleStore-facing) --------------------------------
    def record_memory_hit(self) -> None:
        """Count a lookup served by the LRU front."""
        self._memory_hits.inc()

    def record_disk_hit(self) -> None:
        """Count a lookup served by an on-disk entry."""
        self._disk_hits.inc()

    def record_miss(self) -> None:
        """Count a lookup that found nothing."""
        self._misses.inc()

    def record_store(self) -> None:
        """Count an entry written."""
        self._stores.inc()

    def record_corruption(self, description: str) -> None:
        """Count a corrupt load (also remembered in `last_corruption`)."""
        self._corruptions.inc()
        self.last_corruption = description

    def record_eviction(self) -> None:
        """Count a corrupt entry actually unlinked."""
        self._evictions.inc()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of every counter.

        This is what :class:`~repro.service.api.BatchReport` and
        ``repro provision --stats`` surface.
        """
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
            "last_corruption": self.last_corruption,
        }

    def to_metrics_dict(self) -> dict[str, Any]:
        """The ``repro provision --stats`` document (see docs/observability.md).

        Routed through the metrics exporter: the ``metrics`` key holds the
        registry snapshot restricted to the store's ``repro_store_*``
        series (same shape as a :meth:`MetricsRegistry.snapshot`), while
        the historical flat keys (``hits``/``misses``/``stores``/...)
        remain at top level as aliases for existing consumers.
        """
        snap = self.registry.snapshot()
        doc = self.to_dict()
        doc["metrics"] = {
            "format": snap["format"],
            "version": snap["version"],
            "counters": {name: series
                         for name, series in snap["counters"].items()
                         if name.startswith("repro_store_")},
        }
        return doc


class ScrubReport:
    """Outcome of one :meth:`ScheduleStore.scrub` integrity pass.

    Attributes
    ----------
    scanned, ok:
        Entries examined and entries that re-validated end to end.
    corrupt, unreadable:
        Entries whose payload failed validation (bad JSON, digest or key
        mismatch, semantically invalid plan) and entries the process
        could not read at all (I/O or permission errors).
    quarantined:
        Entries actually moved into ``cache_dir/quarantine/`` — lags
        ``corrupt + unreadable`` only when the move itself fails.
    problems:
        ``(entry_name, reason)`` per bad entry, in walk order.
    """

    def __init__(self) -> None:
        """Start an empty report (all counts zero)."""
        self.scanned = 0
        self.ok = 0
        self.corrupt = 0
        self.unreadable = 0
        self.quarantined = 0
        self.problems: list[tuple[str, str]] = []

    @property
    def clean(self) -> bool:
        """True when every scanned entry re-validated."""
        return self.corrupt == 0 and self.unreadable == 0

    def to_dict(self) -> dict[str, Any]:
        """JSON document ``repro store scrub`` prints."""
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "corrupt": self.corrupt,
            "unreadable": self.unreadable,
            "quarantined": self.quarantined,
            "clean": self.clean,
            "problems": [{"entry": name, "reason": reason}
                         for name, reason in self.problems],
        }


class ScheduleStore:
    """Persistent schedule cache with an in-memory LRU front.

    Implements the cache protocol :func:`repro.core.planner.plan_schedule`
    and :func:`repro.service.api.provision_batch` consume:
    ``get_eval``/``put_eval`` for grid-point evaluations and
    ``get_plan``/``put_plan`` for winning plans.
    """

    def __init__(self, cache_dir: str | Path | None = None, *,
                 memory_slots: int = 256,
                 registry: MetricsRegistry | None = None) -> None:
        """Create a store rooted at *cache_dir* (default: XDG cache).

        *memory_slots* bounds the LRU front; 0 disables it (every hit
        reparses from disk — useful only for tests).  *registry* is the
        metrics registry the store's counters live in; None (default)
        gives the store a private registry so its :attr:`stats` stay
        isolated — pass a shared one to export them with
        ``--metrics-out``.
        """
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self.memory_slots = check_int(memory_slots, "memory_slots", minimum=0)
        self._memory: OrderedDict[str, Plan] = OrderedDict()
        # The LRU front is shared by every thread of a serving process
        # (repro.serve keeps one store hot across requests); its compound
        # mutations (lookup + move_to_end, insert + trim) take this lock.
        # Disk I/O stays outside it — atomicity there comes from
        # tmp-file + os.replace, not from locking.
        self._memory_lock = threading.Lock()
        self.stats = StoreStats(registry)

    # ------------------------------------------------------------------
    # the cache protocol
    # ------------------------------------------------------------------
    def get_eval(self, family: str, n: int, d: int, alpha_t: int,
                 alpha_r: int, balanced: bool) -> Plan | None:
        """Cached evaluation of one grid point, or None."""
        return self._get(eval_key(family, n, d, alpha_t, alpha_r, balanced))

    def put_eval(self, family: str, n: int, d: int, alpha_t: int,
                 alpha_r: int, balanced: bool, plan: Plan) -> None:
        """Persist the evaluation of one grid point."""
        self._put(eval_key(family, n, d, alpha_t, alpha_r, balanced), plan)

    def get_plan(self, n: int, d: int, budget: Fraction, balanced: bool
                 ) -> Plan | None:
        """Cached winner of a full budget search, or None."""
        return self._get(plan_key(n, d, budget, balanced))

    def put_plan(self, n: int, d: int, budget: Fraction, balanced: bool,
                 plan: Plan) -> None:
        """Persist the winner of a full budget search."""
        self._put(plan_key(n, d, budget, balanced), plan)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry (disk and memory); returns entries removed.

        Quarantined files are evidence, not entries — they survive a
        clear and are removed only by an explicit
        :meth:`clear_quarantine`.
        """
        self._memory.clear()
        removed = 0
        if self.cache_dir.is_dir():
            for path in self._entry_paths():
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return removed

    def clear_quarantine(self) -> int:
        """Delete quarantined files; returns how many were removed."""
        removed = 0
        if self.quarantine_dir.is_dir():
            for path in self.quarantine_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk (quarantine excluded)."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self._entry_paths())

    def entry_path(self, key: dict[str, Any]) -> Path:
        """The on-disk location a key document maps to (exists or not)."""
        digest = key_digest(key)
        return self.cache_dir / digest[:2] / f"{digest}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved (``cache_dir/quarantine/``)."""
        return self.cache_dir / QUARANTINE_DIR

    def scrub(self) -> ScrubReport:
        """Re-validate every on-disk entry; quarantine the bad ones.

        The integrity pass behind ``repro store scrub``: each entry is
        re-read, re-hashed (its filename must equal the digest of its
        embedded key) and fully decoded.  Entries failing any of that
        are moved into :attr:`quarantine_dir` and dropped from the LRU
        front, so a later :meth:`_get` can never serve them.  Progress
        lands in the ``repro_store_scrub_*`` counters; the returned
        :class:`ScrubReport` is the caller-facing summary.
        """
        registry = self.stats.registry
        registry.counter(
            "repro_store_scrub_runs_total",
            "Integrity passes completed over the schedule store."
        ).labels().inc()
        entries = registry.counter(
            "repro_store_scrub_entries_total",
            "Entries examined by store scrubs, by verdict "
            "(ok / corrupt / unreadable).")
        quarantined = registry.counter(
            "repro_store_scrub_quarantined_total",
            "Entries moved into quarantine by store scrubs.").labels()
        report = ScrubReport()
        for path in sorted(self._entry_paths()):
            report.scanned += 1
            try:
                text = path.read_text()
            except FileNotFoundError:  # pragma: no cover - concurrent removal
                report.scanned -= 1
                continue
            except OSError as exc:
                reason = f"unreadable: {type(exc).__name__}: {exc}"
                report.unreadable += 1
                entries.labels(result="unreadable").inc()
                self._scrub_bad(path, reason, report, quarantined)
                continue
            try:
                doc = json.loads(text)
                key = doc["key"] if isinstance(doc, dict) else None
                if not isinstance(key, dict):
                    raise ValueError("entry carries no key document")
                if key_digest(key) != path.stem:
                    raise ValueError("entry digest does not match its key "
                                     "(renamed or tampered file)")
                self._decode(doc, key)
            except Exception as exc:  # noqa: BLE001 - verdict, not control
                reason = f"{type(exc).__name__}: {exc}"
                report.corrupt += 1
                entries.labels(result="corrupt").inc()
                self._scrub_bad(path, reason, report, quarantined)
                continue
            report.ok += 1
            entries.labels(result="ok").inc()
        _log.info("store_scrub_done", extra={
            "scanned": report.scanned, "ok": report.ok,
            "corrupt": report.corrupt, "unreadable": report.unreadable,
            "quarantined": report.quarantined})
        return report

    def _scrub_bad(self, path: Path, reason: str, report: ScrubReport,
                   quarantined_counter: Any) -> None:
        report.problems.append((path.name, reason))
        self.stats.record_corruption(f"{path.name}: {reason}")
        _log.warning("store_scrub_bad_entry",
                     extra={"entry": path.name, "reason": reason})
        if self._quarantine(path):
            report.quarantined += 1
            quarantined_counter.inc()

    def _entry_paths(self) -> Any:
        """Entry files under the two-character digest shards only."""
        return self.cache_dir.glob("??/*.json")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _get(self, key: dict[str, Any]) -> Plan | None:
        """Instrumented lookup: a ``store.get`` span (outcome attached)
        and a trace-stamped debug line around :meth:`_lookup`."""
        started = perf_counter()
        digest = key_digest(key)
        plan, outcome = self._lookup(key, digest)
        default_tracer().record("store.get", perf_counter() - started,
                                outcome=outcome, digest=digest[:12])
        _log.debug("store_lookup", extra={"digest": digest[:12],
                                          "outcome": outcome})
        return plan

    def _lookup(self, key: dict[str, Any],
                digest: str) -> tuple[Plan | None, str]:
        with self._memory_lock:
            plan = self._memory.get(digest)
            if plan is not None:
                self._memory.move_to_end(digest)
        if plan is not None:
            self.stats.record_memory_hit()
            return plan, "memory-hit"
        path = self.cache_dir / digest[:2] / f"{digest}.json"
        try:
            doc = json.loads(path.read_text())
            plan = self._decode(doc, key)
        except FileNotFoundError:
            self.stats.record_miss()
            return None, "miss"
        except Exception as exc:
            # A bad cache entry is evicted and recomputed, never fatal —
            # but never silently either: the stats record what happened
            # and the file itself survives in quarantine for post-mortem.
            self.stats.record_corruption(
                f"{path.name}: {type(exc).__name__}: {exc}")
            self.stats.record_miss()
            _log.warning("store_corrupt_entry", extra={
                "entry": path.name, "reason": f"{type(exc).__name__}: {exc}"})
            if self._quarantine(path):
                self.stats.record_eviction()
            return None, "corrupt"
        self.stats.record_disk_hit()
        self._remember(digest, plan)
        return plan, "disk-hit"

    def _put(self, key: dict[str, Any], plan: Plan) -> None:
        started = perf_counter()
        digest = key_digest(key)
        path = self.cache_dir / digest[:2] / f"{digest}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self._encode(key, plan)
        # Unique per writer: two pool threads (or processes) storing the
        # same digest must not share a tmp file, or one writer's replace
        # consumes the file the other is about to move.
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        self.stats.record_store()
        self._remember(digest, plan)
        default_tracer().record("store.put", perf_counter() - started,
                                digest=digest[:12])

    def _quarantine(self, path: Path) -> bool:
        """Move a bad entry into the quarantine dir; True on success.

        ``os.replace`` keeps the move atomic and needs no read access to
        the file itself, so even unreadable entries can be quarantined.
        The digest is also dropped from the LRU front — a quarantined
        entry must never be served from memory either.
        """
        with self._memory_lock:
            self._memory.pop(path.stem, None)
        target = self.quarantine_dir / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            return True
        except OSError:  # pragma: no cover - concurrent removal
            return not path.exists()

    def _remember(self, digest: str, plan: Plan) -> None:
        if self.memory_slots == 0:
            return
        with self._memory_lock:
            self._memory[digest] = plan
            self._memory.move_to_end(digest)
            while len(self._memory) > self.memory_slots:
                self._memory.popitem(last=False)

    @staticmethod
    def _encode(key: dict[str, Any], plan: Plan) -> dict[str, Any]:
        return {
            "format": "repro-cache-entry",
            "version": FORMAT_VERSION,
            "key": key,
            "plan": {
                "family": plan.family,
                "alpha_t": plan.alpha_t,
                "alpha_r": plan.alpha_r,
                "throughput": str(plan.throughput),
                "duty_cycle": str(plan.duty_cycle),
                "frame_length": plan.frame_length,
                "schedule": schedule_to_dict(plan.schedule),
            },
        }

    @staticmethod
    def _decode(doc: dict[str, Any], key: dict[str, Any]) -> Plan:
        if doc.get("format") != "repro-cache-entry":
            raise ValueError("not a repro-cache-entry document")
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported cache version {doc.get('version')!r}")
        if doc.get("key") != key:
            raise ValueError("cache entry key mismatch (hash collision or "
                             "corruption)")
        body = doc["plan"]
        schedule = schedule_from_dict(body["schedule"])
        frame_length = check_int(body["frame_length"], "frame_length", minimum=1)
        if frame_length != schedule.frame_length:
            raise ValueError("cache entry frame_length disagrees with payload")
        return Plan(
            schedule=schedule,
            family=str(body["family"]),
            alpha_t=check_int(body["alpha_t"], "alpha_t", minimum=1),
            alpha_r=check_int(body["alpha_r"], "alpha_r", minimum=1),
            throughput=Fraction(body["throughput"]),
            duty_cycle=Fraction(body["duty_cycle"]),
            frame_length=frame_length,
        )
