"""Batch schedule-provisioning API: many ``(n, D, duty)`` requests at once.

The deployment story of the paper is "compute a schedule offline, flash it
to motes"; at fleet scale that becomes a service answering batches of
per-class requests.  :func:`provision_batch` is that service's core:

1. duplicate requests collapse to one computation;
2. plan-level cache hits (via a :class:`~repro.service.store.ScheduleStore`)
   short-circuit entire searches;
3. the surviving grid points of *all* requests are pooled, deduplicated
   and evaluated together — inline or across a process pool — so a batch
   sharing substrates pays for each construction once;
4. per-request winners are selected in grid order
   (:func:`repro.core.planner.select_best`), making the parallel path
   bit-identical to sequential :func:`repro.core.planner.plan_schedule`.

Requests that fail (impossible class parameters, infeasible budgets) are
reported per-request via :attr:`ProvisionResult.error`; one bad request
never poisons the batch.  Grid evaluations run under the fault-tolerant
runtime of :mod:`repro.service.runtime`: a crashed, hung or raising
worker costs *at most* the grid points it was computing — every healthy
task's plan still comes back, the faulty tasks' statuses are reported per
task, and requests whose grid lost points are answered from the
survivors and marked ``degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Iterable

from repro._validation import check_class_params, check_int
from repro.core.planner import (
    Plan,
    candidate_sources,
    duty_budget_fraction,
    duty_grid,
    select_best,
)
from repro.core.serialization import schedule_from_dict, schedule_to_dict
from repro.faults import FaultPlan
from repro.obs.tracing import span
from repro.service.provision import task_from_point
from repro.service.runtime import RuntimeConfig, TaskReport, execute_tasks
from repro.service.store import ScheduleStore, StoreStats

__all__ = ["ProvisionRequest", "ProvisionResult", "BatchReport",
           "provision_batch", "provision_batch_report"]


@dataclass(frozen=True)
class ProvisionRequest:
    """One schedule request: a network class plus an energy budget.

    Attributes
    ----------
    n, d:
        The network class ``N_n^D``.
    max_duty:
        Duty budget; floats, exact fractions and ``"3/10"``-style strings
        are accepted (see
        :func:`repro.core.planner.duty_budget_fraction`).
    balanced:
        Use the section 7 balanced-energy divisions.
    """

    n: int
    d: int
    max_duty: float | str | Fraction
    balanced: bool = False

    def signature(self) -> tuple[int, int, Fraction, bool]:
        """Exact identity of the request — the deduplication key.

        Raises ``ValueError``/``TypeError`` when the request is invalid;
        :func:`provision_batch` converts that into a per-request error.
        """
        n, d = check_class_params(self.n, self.d)
        return n, d, duty_budget_fraction(self.max_duty), bool(self.balanced)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ProvisionRequest":
        """Parse a JSONL request line (``n``, ``d``, ``max_duty``, opt. ``balanced``).

        Strict by design — this is the parse boundary for untrusted input
        (``repro provision`` files and the ``repro.serve`` HTTP body).
        Unknown keys and wrong-typed fields raise a ``ValueError`` naming
        the offending key; nothing mis-typed ever reaches the planner.
        """
        if not isinstance(doc, dict):
            raise ValueError("request must be a JSON object")
        missing = {"n", "d", "max_duty"} - set(doc)
        if missing:
            raise ValueError(f"request missing fields: {sorted(missing)}")
        unknown = set(doc) - {"n", "d", "max_duty", "balanced"}
        if unknown:
            raise ValueError(f"request has unknown fields: {sorted(unknown)}")
        for key in ("n", "d"):
            if isinstance(doc[key], bool) or not isinstance(doc[key], int):
                raise ValueError(f"request field {key!r} must be an integer, "
                                 f"got {type(doc[key]).__name__}")
        max_duty = doc["max_duty"]
        if isinstance(max_duty, bool) or \
                not isinstance(max_duty, (int, float, str)):
            raise ValueError("request field 'max_duty' must be a number or "
                             f"a fraction string, got {type(max_duty).__name__}")
        balanced = doc.get("balanced", False)
        if not isinstance(balanced, bool):
            raise ValueError("request field 'balanced' must be a boolean, "
                             f"got {type(balanced).__name__}")
        return cls(n=doc["n"], d=doc["d"], max_duty=max_duty,
                   balanced=balanced)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable echo of the request."""
        max_duty = self.max_duty
        if isinstance(max_duty, Fraction):
            max_duty = str(max_duty)
        return {"n": self.n, "d": self.d, "max_duty": max_duty,
                "balanced": self.balanced}


@dataclass(frozen=True)
class ProvisionResult:
    """Outcome of one request within a batch.

    Attributes
    ----------
    request:
        The request this result answers.
    plan:
        The winning plan, or None when *error* is set.
    from_cache:
        True when the whole plan came from a plan-level cache hit
        (no grid point of this request was evaluated or even looked up).
    error:
        Human-readable failure description, or None on success.
    degraded:
        True when some of this request's grid evaluations were lost to
        worker faults and the winner was selected among the survivors
        only — the plan is valid but possibly not the global optimum.
        Degraded winners are never written to the plan-level cache.
    failed_tasks:
        ``(digest, status)`` pairs for the lost grid points of this
        request (statuses from :mod:`repro.service.runtime`).
    """

    request: ProvisionRequest
    plan: Plan | None
    from_cache: bool = False
    error: str | None = None
    degraded: bool = False
    failed_tasks: tuple[tuple[str, str], ...] = ()

    def to_dict(self, *, include_schedule: bool = True) -> dict[str, Any]:
        """JSONL result line; with *include_schedule*, embeds the flashable
        schedule document of :mod:`repro.core.serialization`."""
        doc: dict[str, Any] = {"request": self.request.to_dict()}
        if self.failed_tasks:
            doc["failed_tasks"] = {d: s for d, s in self.failed_tasks}
        if self.error is not None:
            doc["error"] = self.error
            return doc
        assert self.plan is not None
        if self.degraded:
            doc["degraded"] = True
        doc.update({
            "family": self.plan.family,
            "alpha_t": self.plan.alpha_t,
            "alpha_r": self.plan.alpha_r,
            "throughput": str(self.plan.throughput),
            "duty_cycle": str(self.plan.duty_cycle),
            "frame_length": self.plan.frame_length,
            "from_cache": self.from_cache,
        })
        if include_schedule:
            doc["schedule"] = schedule_to_dict(self.plan.schedule, meta={
                "class_n": self.plan.schedule.n, "class_d": self.request.d,
                "family": self.plan.family, "alpha_t": self.plan.alpha_t,
                "alpha_r": self.plan.alpha_r,
                "balanced": self.request.balanced,
            })
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ProvisionResult":
        """Inverse of :meth:`to_dict` — rebuild a result from its JSON line.

        This is what ``repro call provision`` and the serve client use to
        round-trip server responses; ``from_dict(r.to_dict()).to_dict()``
        equals ``r.to_dict()`` exactly.  Success documents must embed the
        ``schedule`` payload (``to_dict(include_schedule=True)``) — a plan
        cannot be reconstructed without its slot tables, so a document
        missing that key raises a ``ValueError`` naming it.
        """
        if not isinstance(doc, dict):
            raise ValueError("result must be a JSON object")
        request = ProvisionRequest.from_dict(doc["request"])
        failed = tuple(sorted(doc.get("failed_tasks", {}).items()))
        if "error" in doc:
            return cls(request, None, error=str(doc["error"]),
                       failed_tasks=failed)
        if "schedule" not in doc:
            raise ValueError("result missing field 'schedule' (serialize "
                             "with include_schedule=True to round-trip)")
        plan = Plan(
            schedule=schedule_from_dict(doc["schedule"]),
            family=str(doc["family"]),
            alpha_t=check_int(doc["alpha_t"], "alpha_t", minimum=1),
            alpha_r=check_int(doc["alpha_r"], "alpha_r", minimum=1),
            throughput=Fraction(doc["throughput"]),
            duty_cycle=Fraction(doc["duty_cycle"]),
            frame_length=check_int(doc["frame_length"], "frame_length",
                                   minimum=1),
        )
        return cls(request, plan, from_cache=bool(doc.get("from_cache", False)),
                   degraded=bool(doc.get("degraded", False)),
                   failed_tasks=failed)


@dataclass
class _Pending:
    """Book-keeping for one distinct request signature being computed."""

    n: int
    d: int
    budget: Fraction
    balanced: bool
    digests: list[str] = field(default_factory=list)
    cached: dict[str, Plan] = field(default_factory=dict)


def _no_plan_error(n: int, max_duty, balanced: bool) -> str:
    """The planner's infeasible-budget message, shared verbatim."""
    return (f"no ({'balanced ' if balanced else ''}alpha_T, alpha_R) choice "
            f"fits duty budget {max_duty} for n={n} (need >= 2/n)")


@dataclass
class BatchReport:
    """Full accounting of one :func:`provision_batch_report` run.

    Attributes
    ----------
    results:
        One :class:`ProvisionResult` per request, in request order —
        exactly what :func:`provision_batch` returns.
    task_reports:
        Digest -> :class:`~repro.service.runtime.TaskReport` for every
        distinct grid evaluation the batch attempted (cache hits are not
        attempts and do not appear).
    pool_rebuilds:
        Times the runtime rebuilt its worker pool (crashes + reclaimed
        hangs).
    store_stats:
        The live :class:`~repro.service.store.StoreStats` of the store
        used, or None when caching was disabled.
    """

    results: list[ProvisionResult]
    task_reports: dict[str, TaskReport] = field(default_factory=dict)
    pool_rebuilds: int = 0
    store_stats: StoreStats | None = None

    def task_summary(self) -> dict[str, int]:
        """Status -> count over every attempted grid evaluation."""
        counts: dict[str, int] = {}
        for report in self.task_reports.values():
            counts[report.status] = counts.get(report.status, 0) + 1
        return counts

    @property
    def degraded(self) -> bool:
        """True when any request lost grid points to worker faults."""
        return any(r.degraded or (r.error is not None and r.failed_tasks)
                   for r in self.results)


def provision_batch(requests: Iterable[ProvisionRequest], *,
                    store: ScheduleStore | None = None,
                    jobs: int = 1, runtime: RuntimeConfig | None = None,
                    faults: FaultPlan | None = None) -> list[ProvisionResult]:
    """Answer a batch of provisioning requests, cached and in parallel.

    Thin wrapper over :func:`provision_batch_report` that keeps the
    historical return type (results only).  Never raises for a worker
    fault: requests whose grid evaluations were lost come back partial —
    answered from the surviving candidates and marked ``degraded``, or
    carrying an ``error`` when nothing survived.

    Parameters
    ----------
    requests:
        The batch; results come back in the same order.
    store:
        Optional :class:`~repro.service.store.ScheduleStore` (or anything
        honouring its protocol).  None disables caching entirely.
    jobs:
        Process-pool width for grid-point evaluation; ``1`` runs inline.
        The selected plans are identical for every value of *jobs*.
    runtime:
        Optional :class:`~repro.service.runtime.RuntimeConfig` tuning
        timeouts, retries and quarantine; *jobs* (when not 1) overrides
        its pool width.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injecting worker
        faults — the hook used by crash-path tests and chaos benchmarks.
    """
    return provision_batch_report(requests, store=store, jobs=jobs,
                                  runtime=runtime, faults=faults).results


def provision_batch_report(requests: Iterable[ProvisionRequest], *,
                           store: ScheduleStore | None = None,
                           jobs: int = 1,
                           runtime: RuntimeConfig | None = None,
                           faults: FaultPlan | None = None) -> BatchReport:
    """Like :func:`provision_batch`, returning the full :class:`BatchReport`.

    The report adds what operators need under faults: per-task statuses
    (``ok / retried / timed-out / failed / quarantined``), pool-rebuild
    counts, and the store's hit/miss/corruption statistics.
    """
    jobs = check_int(jobs, "jobs", minimum=1)
    config = runtime if runtime is not None else RuntimeConfig()
    if jobs != 1 and config.jobs != jobs:
        config = replace(config, jobs=jobs)
    requests = list(requests)
    signatures: list[tuple | None] = []
    errors: dict[int, str] = {}
    for i, request in enumerate(requests):
        try:
            signatures.append(request.signature())
        except (ValueError, TypeError) as exc:
            signatures.append(None)
            errors[i] = str(exc)

    # Resolve each distinct signature once.
    resolved: dict[tuple, tuple[Plan | None, bool]] = {}
    pending: dict[tuple, _Pending] = {}
    tasks = []
    grids: dict[tuple[int, int], list] = {}
    with span("provision.plan", requests=len(requests)):
        for sig in signatures:
            if sig is None or sig in resolved or sig in pending:
                continue
            n, d, budget, balanced = sig
            if store is not None:
                hit = store.get_plan(n, d, budget, balanced)
                if hit is not None:
                    resolved[sig] = (hit, True)
                    continue
            if (n, d) not in grids:
                grids[(n, d)] = candidate_sources(n, d)
            work = _Pending(n, d, budget, balanced)
            for point in duty_grid(n, d, budget, grids[(n, d)]):
                task = task_from_point(point, n, d, balanced)
                digest = task.key()
                work.digests.append(digest)
                plan = None
                if store is not None:
                    plan = store.get_eval(point.family, n, d, point.alpha_t,
                                          point.alpha_r, balanced)
                if plan is not None:
                    work.cached[digest] = plan
                else:
                    tasks.append(task)
            pending[sig] = work

    # The fault-tolerant runtime: individual futures, retry/backoff,
    # broken-pool recovery, and checkpointing of every completed
    # evaluation straight into the store (so an interrupted batch
    # resumes warm — cache lookups above already reap old checkpoints).
    with span("provision.evaluate", tasks=len(tasks), jobs=config.jobs):
        outcome = execute_tasks(tasks, config=config, store=store,
                                faults=faults)
    fresh = outcome.plans

    lost: dict[tuple, list[tuple[str, str]]] = {}
    with span("provision.store", signatures=len(pending)):
        for sig, work in pending.items():
            candidates = []
            for digest in work.digests:
                plan = work.cached.get(digest) or fresh.get(digest)
                if plan is None:  # evaluation lost to a worker fault
                    report = outcome.reports[digest]
                    lost.setdefault(sig, []).append((digest, report.status))
                    continue
                if plan.duty_cycle <= work.budget:
                    candidates.append(plan)
            best = select_best(candidates)
            resolved[sig] = (best, False)
            # Degraded winners are never cached: with the full grid they
            # might lose to one of the lost points, and a poisoned cache
            # would outlive the fault.
            if best is not None and store is not None and sig not in lost:
                store.put_plan(work.n, work.d, work.budget, work.balanced,
                               best)

    results: list[ProvisionResult] = []
    for i, (request, sig) in enumerate(zip(requests, signatures)):
        if sig is None:
            results.append(ProvisionResult(request, None, error=errors[i]))
            continue
        plan, from_cache = resolved[sig]
        failed = tuple(lost.get(sig, ()))
        if plan is None and failed:
            results.append(ProvisionResult(
                request, None, failed_tasks=failed,
                error=(f"no plan within budget: {len(failed)} grid "
                       "evaluation(s) lost to worker faults ("
                       + ", ".join(f"{d[:12]}={s}" for d, s in failed)
                       + ") and no surviving candidate fits")))
        elif plan is None:
            results.append(ProvisionResult(
                request, None,
                error=_no_plan_error(sig[0], request.max_duty, sig[3])))
        else:
            results.append(ProvisionResult(request, plan,
                                           from_cache=from_cache,
                                           degraded=bool(failed),
                                           failed_tasks=failed))
    return BatchReport(results=results, task_reports=outcome.reports,
                       pool_rebuilds=outcome.pool_rebuilds,
                       store_stats=store.stats if store is not None else None)
