"""In-flight request coalescing: one computation, many waiters.

A schedule server's natural workload is *hot-keyed*: every node of a
deployed class ``N_n^D`` asks for the same ``(n, D, duty)`` plan.  The
:class:`~repro.service.store.ScheduleStore` already collapses repeats
*across* time; this module collapses them *within* it — concurrent
requests sharing a :meth:`~repro.service.api.ProvisionRequest.signature`
await one single planner evaluation, whose result fans out to every
waiter the moment it lands.

Semantics, precisely:

* the first request for a key becomes the **leader**: its computation is
  started as an independent task;
* every request arriving while that task is in flight **joins** it —
  zero additional planner work;
* the computation is *shielded* from any individual waiter's
  cancellation (a client hanging up, a per-request deadline firing), so
  one impatient waiter can never poison the others;
* failures propagate to every waiter of that flight but are **never
  cached** — the next request for the key leads a fresh computation.

The two counters (:attr:`Coalescer.led` / :attr:`Coalescer.joined`) are
exported as ``repro_serve_coalesce_total{result=...}``; the bench and
the acceptance tests read the hit rate straight from them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Hashable

from repro.obs import context as _context
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import default_tracer, span

__all__ = ["Coalescer"]

_log = get_logger("serve.coalesce")


class Coalescer:
    """Deduplicate concurrent computations by key (single-flight)."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        """Create a coalescer; counters live in *registry* when given."""
        self._inflight: dict[Hashable, asyncio.Task] = {}
        self._flight_trace: dict[Hashable, str | None] = {}
        registry = registry if registry is not None else MetricsRegistry()
        counter = registry.counter(
            "repro_serve_coalesce_total",
            "Coalescer outcomes: led = computations started, "
            "joined = requests that shared an in-flight computation.")
        self._led = counter.labels(result="led")
        self._joined = counter.labels(result="joined")

    @property
    def led(self) -> int:
        """Computations actually started (flight leaders)."""
        return int(self._led.value)

    @property
    def joined(self) -> int:
        """Requests answered by someone else's in-flight computation."""
        return int(self._joined.value)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests that joined instead of computing."""
        total = self.led + self.joined
        return self.joined / total if total else 0.0

    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._inflight)

    async def run(self, key: Hashable,
                  compute: Callable[[], Awaitable[Any]], *,
                  on_outcome: Callable[[str, str | None], None]
                  | None = None) -> Any:
        """Await the (possibly shared) computation for *key*.

        *compute* is only invoked when no flight for *key* exists; its
        result (or exception) is delivered to every waiter of the
        flight.  Awaiting this method is cancellable per waiter — the
        shared computation itself is not.  *on_outcome*, when given, is
        called synchronously with ``("led" | "joined",
        leader_trace_id)`` before awaiting.

        Trace correlation: the flight remembers its leader's
        ``trace_id``; a joining waiter records a zero-work
        ``serve.coalesce.join`` span whose ``leader_trace_id`` attribute
        names the trace that did the computing, so the N→1 dedup is
        visible from either side's trace tree.
        """
        task = self._inflight.get(key)
        if task is not None and not task.done():
            self._joined.inc()
            leader_trace_id = self._flight_trace.get(key)
            default_tracer().record("serve.coalesce.join", 0.0,
                                    leader_trace_id=leader_trace_id)
            _log.debug("coalesce_joined",
                       extra={"leader_trace_id": leader_trace_id})
            if on_outcome is not None:
                on_outcome("joined", leader_trace_id)
        else:
            self._led.inc()
            task = asyncio.get_running_loop().create_task(
                self._lead(key, compute))
            self._inflight[key] = task
            leader_trace_id = _context.current_trace_id()
            self._flight_trace[key] = leader_trace_id
            if on_outcome is not None:
                on_outcome("led", leader_trace_id)
        # shield(): cancelling one waiter must not cancel the flight the
        # other waiters (and the leader's bookkeeping) depend on.
        return await asyncio.shield(task)

    async def _lead(self, key: Hashable,
                    compute: Callable[[], Awaitable[Any]]) -> Any:
        try:
            with span("serve.coalesce.lead"):
                return await compute()
        finally:
            # Leave the flight map before waiters wake: a request racing
            # the fan-out either joins this finished task (done() guard
            # above) or leads a fresh one — failures are never cached.
            self._inflight.pop(key, None)
            self._flight_trace.pop(key, None)
