"""Supervised restarts for the schedule server (or any child process).

A single unsupervised ``repro serve`` process is a single point of
failure; the paper's own standard is self-stabilization after transient
faults.  :class:`Supervisor` closes the gap at the process level:

* a crashed child (nonzero exit, or killed by a signal) is **restarted**
  after a seeded exponential backoff — the delay sequence is a pure
  :meth:`repro.faults.FaultPlan.backoff_jitter` draw, so a chaos run's
  restart timeline is reproducible given the seed;
* a **crash loop** — more than ``max_restarts`` crashes inside
  ``restart_window_s`` — makes the supervisor give up and exit nonzero
  (exit code 3), because restarting a deterministically-broken server
  forever only hides the outage;
* a **clean child exit** (code 0 — e.g. the server finished a SIGTERM
  drain) ends supervision with exit 0;
* the ``--ready-file`` handshake is reused for observability: the file
  is removed before every (re)start, so its reappearance marks the
  moment the replacement child is accepting connections.

The supervisor owns no sockets and parses no HTTP — it watches one child
and keeps an auditable :attr:`Supervisor.events` timeline, which the
chaos acceptance suite asserts against.  ``repro serve --supervise``
wraps the stock serve command in one.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro._validation import check_int
from repro.faults import FaultPlan
from repro.obs import context as _context
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["SupervisorConfig", "Supervisor", "CRASH_LOOP_EXIT_CODE"]

_log = get_logger("serve.supervisor")

#: Exit code of a supervisor that detected a crash loop and gave up.
CRASH_LOOP_EXIT_CODE = 3


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart policy of one :class:`Supervisor`.

    Attributes
    ----------
    max_restarts:
        Crashes tolerated inside *restart_window_s* before the
        supervisor declares a crash loop and exits nonzero.
    restart_window_s:
        Sliding window (seconds) the crash-loop detector counts over.
    backoff_base_s, backoff_cap_s:
        Exponential restart backoff: crash ``k`` (within the window)
        waits ``min(cap, base * 2**(k-1))`` seconds scaled by the seeded
        jitter in ``[0.5, 1.5)``.
    seed:
        Seed of the backoff jitter draws.
    """

    max_restarts: int = 5
    restart_window_s: float = 60.0
    backoff_base_s: float = 0.2
    backoff_cap_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_int(self.max_restarts, "max_restarts", minimum=0)
        check_int(self.seed, "seed", minimum=0)
        if self.restart_window_s <= 0:
            raise ValueError("restart_window_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff_base_s/backoff_cap_s must be >= 0")


class Supervisor:
    """Run *argv* as a child process; restart it when it crashes.

    :meth:`run` blocks until the child exits cleanly, the crash-loop
    bound trips, or :meth:`request_stop` ends supervision.  *clock*,
    *sleep* and *popen* are injectable so tests pin time and process
    creation.

    Attributes
    ----------
    events:
        Auditable timeline of ``(kind, detail)`` tuples — ``start``
        (pid), ``exit`` (return code), ``backoff`` (seconds),
        ``crash-loop`` (crashes in window) — in order.
    trace_id:
        The trace id of the supervision run, set when :meth:`run`
        begins; every restart event logged inside the run is stamped
        with it (see :mod:`repro.obs.context`).
    """

    def __init__(self, argv: Sequence[str], *,
                 config: SupervisorConfig | None = None,
                 ready_file: str | Path | None = None,
                 registry: MetricsRegistry | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 popen: Callable[..., Any] = subprocess.Popen) -> None:
        """Supervise ``argv`` (a full command line, argv[0] included)."""
        self.argv = list(argv)
        if not self.argv:
            raise ValueError("supervisor needs a non-empty command line")
        self.config = config if config is not None else SupervisorConfig()
        self.ready_file = Path(ready_file) if ready_file is not None \
            else None
        self.registry = registry if registry is not None \
            else default_registry()
        self._plan = FaultPlan(seed=self.config.seed)
        self._clock = clock
        self._sleep = sleep
        self._popen = popen
        self._child: Any | None = None
        self._stopping = False
        self._crash_times: list[float] = []
        self.restarts = 0
        self.events: list[tuple[str, Any]] = []
        self.trace_id: str | None = None
        self._starts = self.registry.counter(
            "repro_supervisor_starts_total",
            "Child processes launched by the supervisor.").labels()
        self._crashes = self.registry.counter(
            "repro_supervisor_crashes_total",
            "Child exits the supervisor counted as crashes.").labels()

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------
    def backoff_delay(self, crash_index: int) -> float:
        """Seconds to wait before the restart after crash *crash_index*
        (1-based within the current window) — pure in ``(seed, index)``."""
        base = min(self.config.backoff_cap_s,
                   self.config.backoff_base_s
                   * 2.0 ** max(0, crash_index - 1))
        return base * self._plan.backoff_jitter("supervisor", crash_index)

    @property
    def child_pid(self) -> int | None:
        """PID of the currently running child, or None."""
        child = self._child
        return child.pid if child is not None else None

    def request_stop(self, sig: int = signal.SIGTERM) -> None:
        """End supervision: forward *sig* to the child, stop restarting.

        Signal-handler safe and idempotent.  The child is expected to
        exit on the signal (the serve child drains and exits 0);
        :meth:`run` then returns without restarting.
        """
        self._stopping = True
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(sig)
            except (OSError, ValueError):  # pragma: no cover - child raced
                pass

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Supervise until clean exit, stop request, or crash loop.

        Returns the final exit code: the child's own code after a clean
        exit or stop request, :data:`CRASH_LOOP_EXIT_CODE` when the
        crash-loop bound trips.

        The whole supervision run shares one trace scope (adopted from
        any active context, opened fresh otherwise), so every restart
        event it logs carries the same ``trace_id`` — the id is kept on
        :attr:`trace_id` for callers that want to correlate externally.
        """
        with _context.trace_context() as ctx:
            self.trace_id = ctx.trace_id
            return self._run()

    def _run(self) -> int:
        while True:
            self._clear_ready_file()
            try:
                self._child = self._popen(self.argv)
            except OSError as exc:
                _log.error("supervisor_spawn_failed",
                           extra={"argv": self.argv[:3], "error": str(exc)})
                return CRASH_LOOP_EXIT_CODE
            self._starts.inc()
            self.events.append(("start", self._child.pid))
            _log.info("supervisor_child_started",
                      extra={"pid": self._child.pid,
                             "restarts": self.restarts})
            code = self._child.wait()
            self.events.append(("exit", code))
            if self._stopping or code == 0:
                _log.info("supervisor_done", extra={"code": code,
                                                    "restarts": self.restarts})
                return code if not self._stopping else max(code, 0)
            # A crash: count it against the sliding window.
            self._crashes.inc()
            now = self._clock()
            self._crash_times.append(now)
            window = self.config.restart_window_s
            self._crash_times = [t for t in self._crash_times
                                 if now - t <= window]
            crashes = len(self._crash_times)
            _log.warning("supervisor_child_crashed",
                         extra={"code": code, "crashes_in_window": crashes})
            if crashes > self.config.max_restarts:
                self.events.append(("crash-loop", crashes))
                _log.error("supervisor_crash_loop",
                           extra={"crashes_in_window": crashes,
                                  "window_s": window})
                return CRASH_LOOP_EXIT_CODE
            delay = self.backoff_delay(crashes)
            self.events.append(("backoff", delay))
            self.restarts += 1
            if delay > 0:
                self._sleep(delay)
            if self._stopping:  # a stop arrived during the backoff
                return 0

    def _clear_ready_file(self) -> None:
        """Drop the ready file so its reappearance marks the restart."""
        if self.ready_file is None:
            return
        try:
            self.ready_file.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - unwritable ready dir
            _log.warning("supervisor_ready_file_unlink_failed",
                         extra={"path": str(self.ready_file)})


def serve_child_argv(args: Any) -> list[str]:
    """The child command line ``repro serve --supervise`` launches.

    Rebuilt explicitly from the parsed CLI namespace (never from
    ``sys.argv``) so supervisor-only flags can never leak into the
    child and start a fork bomb of supervisors.
    """
    argv = [sys.executable, "-m", "repro", "serve",
            "--host", args.host, "--port", str(args.port),
            "--jobs", str(args.jobs),
            "--max-inflight", str(args.max_inflight),
            "--deadline", str(args.deadline)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.ready_file:
        argv += ["--ready-file", args.ready_file]
    if getattr(args, "pid_file", None):
        argv += ["--pid-file", args.pid_file]
    if args.log_level:
        argv += ["--log-level", args.log_level]
    if args.log_format != "human":
        argv += ["--log-format", args.log_format]
    return argv
