"""Always-on schedule server: asyncio HTTP/JSON over the provisioning core.

The paper provisions a fixed ``(alpha_T, alpha_R)``-schedule once per
network class ``N_n^D`` and lets every node of the class reuse it — a
lookup service by construction.  :mod:`repro.serve` is that service: one
process keeps a :class:`~repro.service.store.ScheduleStore` and a
provisioning worker pool hot across requests, answers ``/provision`` and
``/plan`` over HTTP/JSON, coalesces concurrent identical requests onto a
single planner evaluation, refuses work beyond an explicit admission
bound instead of queueing unboundedly, and drains in-flight requests
before exiting on SIGTERM.

Layers (each its own module, dependency-free stdlib only):

* :mod:`repro.serve.protocol` — request/response schemas, strict
  validation of untrusted JSON, versioned error codes;
* :mod:`repro.serve.coalesce` — in-flight deduplication keyed on
  :meth:`repro.service.api.ProvisionRequest.signature`;
* :mod:`repro.serve.server` — the asyncio server (admission control,
  deadlines, drain, ``/healthz`` + ``/metrics`` endpoints);
* :mod:`repro.serve.client` — a synchronous client with seeded
  retry/backoff, used by ``repro call``, the tests and the load bench;
* :mod:`repro.serve.chaos` — a deterministic fault-injecting TCP proxy
  for chaos drills (refuse / reset / delay / truncate, all seeded);
* :mod:`repro.serve.failover` — a multi-endpoint client with
  per-endpoint circuit breakers and seeded half-open probes;
* :mod:`repro.serve.supervisor` — restart-on-crash process supervision
  with seeded backoff and crash-loop detection
  (``repro serve --supervise``).
"""

from repro.serve.chaos import BackgroundProxy, ChaosProxy
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalesce import Coalescer
from repro.serve.failover import CircuitBreaker, FailoverClient
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import BackgroundServer, ScheduleServer, ServeConfig
from repro.serve.supervisor import Supervisor, SupervisorConfig

__all__ = ["ServeClient", "ServeError", "Coalescer", "PROTOCOL_VERSION",
           "ProtocolError", "BackgroundServer", "ScheduleServer",
           "ServeConfig", "ChaosProxy", "BackgroundProxy", "FailoverClient",
           "CircuitBreaker", "Supervisor", "SupervisorConfig"]
