"""A deterministic fault-injecting TCP proxy for chaos-testing the serve tier.

The paper's schedules guarantee delivery whatever the topology does; the
serving stack should make the analogous promise about the *network*.
:class:`ChaosProxy` sits between a client and a
:class:`~repro.serve.server.ScheduleServer` and injects transport-level
faults — the failure modes a real deployment meets between two hosts:

==============  =====================================================
``refuse``      the connection is aborted on accept, before any bytes
                (connection refused / reset on connect)
``reset``       the upstream response is severed mid-stream with an
                abortive close (RST) after a seeded byte offset
``delay``       every byte of the exchange waits behind a seeded
                latency injection (slow network)
``truncate``    the upstream response is cut short after a seeded byte
                offset and closed *cleanly* — the nastier case, because
                the client sees a well-formed FIN on a half response
==============  =====================================================

Every decision is a pure :class:`~repro.faults.FaultPlan` draw keyed on
``(seed, connection_index)`` — no RNG state, no wall clock — so a chaos
run's fault sequence is byte-reproducible: the same seed and the same
accept order produce the identical :attr:`ChaosProxy.fault_log`, which is
exactly what the acceptance suite asserts.

The proxy is observability-first: ``repro_chaos_connections_total`` (by
injected fault) and ``repro_chaos_upstream_failures_total`` land in the
injected metrics registry, and the per-connection fault log names which
connection got what.

:class:`BackgroundProxy` mirrors :class:`~repro.serve.server.BackgroundServer`
for synchronous contexts (tests, benches, the chaos-smoke CI job).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro._validation import check_int
from repro.faults import FaultPlan
from repro.obs import context as _context
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["ChaosProxy", "BackgroundProxy"]

_log = get_logger("serve.chaos")

_CHUNK = 65536


class ChaosProxy:
    """One fault-injecting TCP relay in front of an upstream server.

    Lifecycle mirrors :class:`~repro.serve.server.ScheduleServer`:
    ``await start()`` binds the listener (port 0 for ephemeral), ``await
    close()`` aborts the listener and every live relay.

    Attributes
    ----------
    fault_log:
        ``(connection_index, kind)`` per accepted connection, in accept
        order; *kind* is one of
        :data:`~repro.faults.PROXY_FAULT_KINDS` or ``"ok"``.  Two runs
        with the same plan seed and accept order log identical
        sequences.
    fault_events:
        The richer record behind :attr:`fault_log`: one dict per
        accepted connection with ``connection``, ``kind`` and
        ``trace_id`` — the active
        :func:`repro.obs.context.current_trace_id` at accept time, so a
        chaos run embedded in a traced scope ties its injected faults
        back to the request under test (``None`` for a bare
        transport-level run, where the proxy cannot see inside the
        payload).
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 plan: FaultPlan | None = None, host: str = "127.0.0.1",
                 port: int = 0, cut_window: int = 64,
                 registry: MetricsRegistry | None = None) -> None:
        """Proxy ``host:port`` -> ``upstream_host:upstream_port``.

        *plan* supplies the seeded fault draws (default: a clean plan,
        pure pass-through).  *cut_window* bounds the byte offset at
        which ``reset``/``truncate`` sever the upstream response; the
        default of 64 cuts inside the HTTP response head, so the injected
        damage is always client-visible.
        """
        self.upstream_host = upstream_host
        self.upstream_port = check_int(upstream_port, "upstream_port",
                                       minimum=1)
        self.plan = plan if plan is not None else FaultPlan()
        self.cut_window = check_int(cut_window, "cut_window", minimum=1)
        self.registry = registry if registry is not None \
            else default_registry()
        self.host = host
        self.port = port
        self.fault_log: list[tuple[int, str]] = []
        self.fault_events: list[dict[str, Any]] = []
        self._server: asyncio.base_events.Server | None = None
        self._connections = 0
        self._relays: set[asyncio.Task] = set()
        self._conn_counter = self.registry.counter(
            "repro_chaos_connections_total",
            "Connections accepted by the chaos proxy, by injected fault.")
        self._upstream_failures = self.registry.counter(
            "repro_chaos_upstream_failures_total",
            "Proxied connections dropped because the upstream was "
            "unreachable.").labels()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener; returns the concrete ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("proxy already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        _log.info("chaos_proxy_started", extra={
            "host": self.host, "port": self.port,
            "upstream": f"{self.upstream_host}:{self.upstream_port}",
            "seed": self.plan.seed})
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting and abort every live relay (idempotent)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._relays):
            task.cancel()
        if self._relays:
            await asyncio.gather(*self._relays, return_exceptions=True)
        self._server = None
        _log.info("chaos_proxy_stopped", extra={"host": self.host,
                                                "port": self.port})

    @property
    def connections(self) -> int:
        """Connections accepted so far (== next connection index)."""
        return self._connections

    # ------------------------------------------------------------------
    # the relay
    # ------------------------------------------------------------------
    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._relays.add(task)
        try:
            await self._relay_connection(client_reader, client_writer)
        except asyncio.CancelledError:
            pass  # proxy closing: the abort below is the cleanup
        finally:
            if task is not None:
                self._relays.discard(task)
            if not client_writer.is_closing():
                _abort(client_writer)

    async def _relay_connection(self, client_reader: asyncio.StreamReader,
                                client_writer: asyncio.StreamWriter) -> None:
        index = self._connections
        self._connections += 1
        kind = self.plan.proxy_fault(index) or "ok"
        trace_id = _context.current_trace_id()
        self.fault_log.append((index, kind))
        self.fault_events.append({"connection": index, "kind": kind,
                                  "trace_id": trace_id})
        self._conn_counter.labels(fault=kind).inc()
        if kind != "ok":
            _log.debug("chaos_fault", extra={"connection": index,
                                             "kind": kind,
                                             "trace_id": trace_id})
        if kind == "refuse":
            return  # the finally-abort is the whole fault
        if kind == "delay":
            await asyncio.sleep(self.plan.proxy_delay(index))
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port)
        except OSError:
            self._upstream_failures.inc()
            return  # upstream down: the client sees an aborted connect
        cut = self.plan.proxy_cut(index, self.cut_window) \
            if kind in ("reset", "truncate") else None
        forward = asyncio.create_task(
            _pump(client_reader, up_writer, eof=True))
        try:
            await _pump(up_reader, client_writer, limit=cut)
            if kind == "reset":
                _abort(client_writer)
            else:
                # Clean close — for ``truncate`` that is the fault itself:
                # a well-formed FIN on a half response.
                try:
                    client_writer.close()
                    await client_writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            forward.cancel()
            try:
                await forward
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            _abort(up_writer)


async def _pump(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                *, limit: int | None = None, eof: bool = False) -> None:
    """Relay *reader* into *writer* until EOF or *limit* bytes are sent.

    With *eof*, a clean source EOF is propagated as ``write_eof`` so the
    upstream sees the end of the request while the response still flows
    back on the other half of the socket.
    """
    sent = 0
    try:
        while True:
            budget = _CHUNK if limit is None else min(_CHUNK, limit - sent)
            if budget <= 0:
                return
            chunk = await reader.read(budget)
            if not chunk:
                if eof and not writer.is_closing():
                    try:
                        writer.write_eof()
                    except (OSError, RuntimeError):
                        pass
                return
            sent += len(chunk)
            writer.write(chunk)
            await writer.drain()
    except (ConnectionError, OSError):
        return  # either side went away; the caller owns the cleanup


def _abort(writer: asyncio.StreamWriter) -> None:
    """Abortive close (RST where the platform allows), never raising."""
    try:
        writer.transport.abort()
    except (OSError, RuntimeError):  # pragma: no cover - already gone
        pass


class BackgroundProxy:
    """Run a :class:`ChaosProxy` on a daemon thread (tests, benches).

    Context manager, mirroring
    :class:`~repro.serve.server.BackgroundServer`::

        with BackgroundProxy("127.0.0.1", upstream_port,
                             plan=FaultPlan(seed=7,
                                            proxy_reset_rate=0.1)) as bp:
            ServeClient(bp.host, bp.port).health()
            print(bp.proxy.fault_log)
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 **proxy_kwargs: Any) -> None:
        """Arguments pass through to :class:`ChaosProxy`."""
        self._args = (upstream_host, upstream_port)
        self._kwargs = proxy_kwargs
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._failure: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-chaos-bg")
        self.proxy: ChaosProxy | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.host = ""
        self.port = 0

    def __enter__(self) -> "BackgroundProxy":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("background proxy failed to start in time")
        if self._failure is not None:
            raise RuntimeError("background proxy failed to start") \
                from self._failure
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def fault_log(self) -> list[tuple[int, str]]:
        """The proxy's per-connection fault log (accept order)."""
        assert self.proxy is not None
        return list(self.proxy.fault_log)

    @property
    def fault_events(self) -> list[dict[str, Any]]:
        """The proxy's trace-aware fault events (accept order)."""
        assert self.proxy is not None
        return list(self.proxy.fault_events)

    def stop(self, timeout: float = 30.0) -> None:
        """Close the proxy and join its thread (idempotent)."""
        if self.loop is not None and self._stop is not None \
                and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("background proxy failed to stop in time")

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced in __enter__
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.proxy = ChaosProxy(*self._args, **self._kwargs)
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.proxy.start()
        self._ready.set()
        await self._stop.wait()
        await self.proxy.close()
