"""The asyncio schedule server: admission control, deadlines, drain.

One process, nine endpoints, no dependencies beyond the stdlib:

========================  ==============================================
``POST /provision``       answer a batch of ``(n, D, duty)`` requests
                          (coalesced per signature, backed by the hot
                          store and worker pool)
``POST /plan``            single-request convenience form of the same
``GET /healthz``          liveness + serving/draining state + inflight
``GET /metrics``          Prometheus text exposition of the registry
``GET /metrics.json``     the same registry as a ``repro-metrics``
                          snapshot (validates with
                          ``tools/validate_metrics.py``)
``GET /metrics/history``  the last K registry snapshots, scraped on a
                          background task every ``history_interval_s``
                          (``repro-metrics-history`` document; feeds
                          ``repro obs top``)
``GET /slo``              objectives evaluated against the live
                          registry, with rolling burn rates
                          (``repro-slo`` report)
``GET /debugz``           the flight recorder: hop timelines of the
                          last K completed/failed requests, trace ids
                          included
``GET /profilez``         sample every server thread (event loop *and*
                          worker pool) for ``?seconds=N`` at ``?hz=H``;
                          returns collapsed stacks (text/plain, ready
                          for flamegraph tooling)
========================  ==============================================

Every admitted request runs inside a
:func:`repro.obs.context.trace_context` — adopted from the body's
additive ``trace_id``/``parent_id`` fields when the client sent them,
freshly generated otherwise — so its spans, its log lines, its store
lookups and its flight-recorder entry all share one ``trace_id``, and
the executor hop propagates the context into the planner thread via
``contextvars.copy_context``.  Success envelopes echo ``trace_id``.

Three properties the one-shot CLI cannot offer, each load-bearing:

* **Warm state.**  One :class:`~repro.service.store.ScheduleStore` and
  one worker pool (a thread pool of ``jobs`` planner slots) live for the
  process lifetime; the cache and the LRU front survive across requests.
* **Admission control.**  At most ``max_inflight`` provisioning requests
  are admitted at once — ``jobs`` of them execute, the rest wait in a
  bounded queue of ``max_inflight - jobs``.  A request beyond the bound
  is answered *immediately* with ``503 overloaded`` instead of queueing
  unboundedly; a client with backoff gets strictly better tail latency
  than an unbounded queue would give it.  Ops endpoints (``/healthz``,
  ``/metrics``) bypass admission so the server stays observable while
  saturated.
* **Graceful drain.**  SIGTERM (or :meth:`ScheduleServer.begin_drain`)
  flips the server into draining: new provisioning work is refused with
  ``503 draining``, every admitted request runs to completion, then the
  listener closes and :meth:`ScheduleServer.wait_closed` returns.

Per-request deadlines (``request_deadline_s``) bound the time a caller
can be held: past the deadline the response is ``504
deadline-exceeded``.  The underlying planner thread is not preempted
(Python threads cannot be), but its result still lands in the store, so
the abandoned work is not wasted — the retry hits the cache.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace as dc_replace
from time import perf_counter
from typing import Any, Callable

from urllib.parse import parse_qs

from repro._validation import check_int
from repro.obs import context as _context
from repro.obs import profile as _profile
from repro.obs import slo as _slo
from repro.obs import timeseries as _timeseries
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import span
from repro.serve import protocol
from repro.serve.coalesce import Coalescer
from repro.service.api import (
    ProvisionRequest,
    ProvisionResult,
    provision_batch_report,
)
from repro.service.store import ScheduleStore

__all__ = ["ServeConfig", "ScheduleServer", "BackgroundServer",
           "FlightRecord", "FlightRecorder", "SERVE_LATENCY_BUCKETS"]

_log = get_logger("serve.server")

#: Request-latency histogram bounds.  Warm cache hits answer in well
#: under a millisecond, so the default seconds-flavoured buckets crushed
#: the entire warm distribution into the first bucket; the sub-ms decade
#: here keeps warm p50 readable while the upper bounds still cover cold
#: planner evaluations.  The SLO threshold default (1.0s) stays a bound.
SERVE_LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                         0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                         5.0, 10.0, 30.0)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

#: Seconds a connection may take to deliver its request head and body
#: before the server hangs up (slow-client protection).
_READ_TIMEOUT_S = 10.0


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`ScheduleServer`.

    Attributes
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (the bound one is
        readable as :attr:`ScheduleServer.port` after ``start()``).
    jobs:
        Width of the hot worker pool — provisioning requests evaluating
        concurrently.  Admitted requests beyond *jobs* wait for a slot.
    max_inflight:
        Admission bound: provisioning requests admitted at once
        (executing + queued).  Beyond it, ``503 overloaded``.
    request_deadline_s:
        Per-request processing budget in seconds; ``None`` disables.
    max_body_bytes:
        Largest request body accepted; beyond it, ``413``.
    flight_capacity:
        Requests the ``/debugz`` flight recorder retains (oldest drop).
    slo_threshold_s, slo_latency_target, slo_availability_target:
        The ``/slo`` endpoint's stock objectives: *slo_latency_target*
        of requests under *slo_threshold_s* (pick a histogram bucket
        bound), *slo_availability_target* of answers non-5xx.
    history_interval_s, history_capacity:
        The ``/metrics/history`` scrape cadence and ring depth — the
        defaults keep 30 minutes of 5-second samples in ~O(capacity)
        memory.
    profilez_max_seconds:
        Longest profiling window one ``GET /profilez`` call may request.
    """

    host: str = "127.0.0.1"
    port: int = 8177
    jobs: int = 2
    max_inflight: int = 64
    request_deadline_s: float | None = 30.0
    max_body_bytes: int = 1 << 20
    flight_capacity: int = 128
    slo_threshold_s: float = 1.0
    slo_latency_target: float = 0.99
    slo_availability_target: float = 0.999
    history_interval_s: float = 5.0
    history_capacity: int = 360
    profilez_max_seconds: float = 30.0

    def __post_init__(self) -> None:
        check_int(self.port, "port", minimum=0)
        check_int(self.jobs, "jobs", minimum=1)
        check_int(self.max_inflight, "max_inflight", minimum=0)
        check_int(self.max_body_bytes, "max_body_bytes", minimum=1)
        check_int(self.flight_capacity, "flight_capacity", minimum=1)
        check_int(self.history_capacity, "history_capacity", minimum=1)
        if self.request_deadline_s is not None \
                and self.request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive or None")
        if self.slo_threshold_s <= 0:
            raise ValueError("slo_threshold_s must be positive")
        if self.history_interval_s <= 0:
            raise ValueError("history_interval_s must be positive")
        if self.profilez_max_seconds <= 0:
            raise ValueError("profilez_max_seconds must be positive")
        for name in ("slo_latency_target", "slo_availability_target"):
            if not 0.0 < getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be a fraction in (0, 1)")


class FlightRecord:
    """The hop timeline of one admitted (or refused) request.

    Mutable while the request is in flight; :meth:`FlightRecorder.begin`
    hands one out and :meth:`finish` freezes outcome and duration.  Hops
    (``admit``, ``coalesce``, ``pool.submit``, ``pool.done``, ...) carry
    offsets from the request's start, so a ``/debugz`` entry reads as a
    self-contained timeline.
    """

    __slots__ = ("endpoint", "trace_id", "started_unix", "_started",
                 "hops", "status", "error", "duration_s")

    def __init__(self, endpoint: str):
        self.endpoint = endpoint
        self.trace_id: str | None = None
        self.started_unix = time.time()
        self._started = perf_counter()
        self.hops: list[dict[str, Any]] = []
        self.status: int | None = None
        self.error: str | None = None
        self.duration_s: float | None = None

    def hop(self, name: str, **attrs: Any) -> None:
        """Append a timeline entry at the current offset."""
        entry = {"hop": name,
                 "t_s": round(perf_counter() - self._started, 6)}
        entry.update(attrs)
        self.hops.append(entry)

    def finish(self, status: int, error: str | None = None) -> None:
        """Freeze the outcome (idempotent — first call wins)."""
        if self.status is None:
            self.status = status
            self.error = error
            self.duration_s = round(perf_counter() - self._started, 6)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (one ``/debugz`` entry)."""
        doc: dict[str, Any] = {"endpoint": self.endpoint,
                               "trace_id": self.trace_id,
                               "started_unix": round(self.started_unix, 6),
                               "status": self.status,
                               "duration_s": self.duration_s,
                               "hops": list(self.hops)}
        if self.error is not None:
            doc["error"] = self.error
        return doc


class FlightRecorder:
    """A bounded ring of the last *capacity* finished requests.

    The in-memory black box behind ``GET /debugz``: always on, O(K)
    memory, and answerable while the server is saturated (ops endpoints
    bypass admission).  Entries land in the ring at :meth:`finish` time
    only — an in-flight request is visible in ``/healthz``'s inflight
    count, not here.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = check_int(capacity, "capacity", minimum=1)
        self._ring: deque[FlightRecord] = deque(maxlen=capacity)

    def begin(self, endpoint: str) -> FlightRecord:
        """A fresh record for one request (not yet in the ring)."""
        return FlightRecord(endpoint)

    def finish(self, record: FlightRecord, status: int,
               error: str | None = None) -> None:
        """Freeze *record* and append it to the ring."""
        record.finish(status, error)
        self._ring.append(record)

    def to_list(self) -> list[dict[str, Any]]:
        """Every retained record, newest first."""
        return [record.to_dict() for record in reversed(self._ring)]


class ScheduleServer:
    """One serving process: hot store, hot pool, coalesced planning.

    Lifecycle: ``await start()`` binds the listener; ``await
    wait_closed()`` blocks until a drain completes; ``begin_drain()``
    (signal-handler safe) or ``await drain()`` initiates shutdown.

    *plan_fn* is the per-request computation — by default one
    single-request :func:`~repro.service.api.provision_batch_report`
    against the hot store.  Tests inject counting or blocking fakes here
    to pin down coalescing, overload and drain behaviour
    deterministically.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 store: ScheduleStore | None = None,
                 registry: MetricsRegistry | None = None,
                 plan_fn: Callable[[ProvisionRequest], ProvisionResult]
                 | None = None) -> None:
        """Build a server (not yet listening; call :meth:`start`)."""
        self.config = config if config is not None else ServeConfig()
        self.store = store
        self.registry = registry if registry is not None \
            else default_registry()
        self._plan_fn = plan_fn if plan_fn is not None else self._plan_one
        self._coalescer = Coalescer(self.registry)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.jobs,
            thread_name_prefix="repro-serve-plan")
        self._active = 0
        self._draining = False
        self._drained: asyncio.Event | None = None
        self._server: asyncio.base_events.Server | None = None
        self.host = self.config.host
        self.port = self.config.port

        self._requests = self.registry.counter(
            "repro_serve_requests_total",
            "HTTP requests answered, by endpoint and outcome code.")
        self._latency = self.registry.histogram(
            "repro_serve_request_seconds",
            "Wall-clock seconds from request head to response flush.",
            buckets=SERVE_LATENCY_BUCKETS, exemplars=True)
        self._inflight_gauge = self.registry.gauge(
            "repro_serve_inflight",
            "Provisioning requests currently admitted.").labels()
        self._computed = self.registry.counter(
            "repro_serve_plans_computed_total",
            "Planner evaluations actually run (post-coalescing).").labels()
        self._flights = FlightRecorder(self.config.flight_capacity)
        self._objectives = _slo.default_serve_objectives(
            threshold_s=self.config.slo_threshold_s,
            latency_target=self.config.slo_latency_target,
            availability_target=self.config.slo_availability_target)
        self._burn = _slo.BurnRateTracker(self._objectives,
                                          registry=self.registry)
        self._history = _timeseries.SnapshotRing(
            capacity=self.config.history_capacity)
        self._history_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener; returns the concrete ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._history_task = asyncio.create_task(self._scrape_history())
        _log.info("serve_started", extra={
            "host": self.host, "port": self.port, "jobs": self.config.jobs,
            "max_inflight": self.config.max_inflight})
        return self.host, self.port

    async def _scrape_history(self) -> None:
        """Background task: snapshot the registry into the history ring.

        Takes an immediate first sample (``/metrics/history`` answers
        from the very first scrape), then one every
        ``history_interval_s`` until cancelled at shutdown.
        """
        while True:
            self._history.append(self.registry.snapshot())
            await asyncio.sleep(self.config.history_interval_s)

    @property
    def draining(self) -> bool:
        """True once shutdown has been initiated."""
        return self._draining

    @property
    def active(self) -> int:
        """Provisioning requests currently admitted."""
        return self._active

    def begin_drain(self) -> None:
        """Initiate shutdown (signal-handler safe, idempotent).

        New provisioning requests are refused with ``503 draining``; the
        listener closes once every admitted request has been answered.
        """
        if self._draining:
            return
        self._draining = True
        _log.info("serve_draining", extra={"inflight": self._active})
        if self._active == 0 and self._drained is not None:
            self._drained.set()

    async def drain(self) -> None:
        """:meth:`begin_drain`, then block until fully closed."""
        self.begin_drain()
        await self.wait_closed()

    async def wait_closed(self) -> None:
        """Block until a drain completes and the listener is closed."""
        if self._server is None or self._drained is None:
            return
        await self._drained.wait()
        if self._history_task is not None:
            self._history_task.cancel()
            try:
                await self._history_task
            except asyncio.CancelledError:
                pass
        self._server.close()
        await self._server.wait_closed()
        # wait=False: a deadline-abandoned planner thread must not block
        # shutdown; its checkpoint into the store already happened or
        # will be discarded with the process.
        self._executor.shutdown(wait=False)
        _log.info("serve_stopped", extra={"host": self.host,
                                          "port": self.port})

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _plan_one(self, request: ProvisionRequest) -> ProvisionResult:
        """The default computation: one batch-of-one against the store."""
        report = provision_batch_report([request], store=self.store, jobs=1)
        return report.results[0]

    async def _answer(self, request: ProvisionRequest,
                      flight: FlightRecord | None = None) -> ProvisionResult:
        """Resolve one request through the coalescer and worker pool."""
        try:
            key = request.signature()
        except (ValueError, TypeError) as exc:
            # Domain-invalid parameters: a per-request error result,
            # exactly like a bad `repro provision` line.
            return ProvisionResult(request, None, error=str(exc))
        loop = asyncio.get_running_loop()

        async def compute() -> ProvisionResult:
            self._computed.inc()
            if flight is not None:
                flight.hop("pool.submit")
            # copy_context(): contextvars do not cross the executor hop
            # by themselves; the snapshot carries the trace context (and
            # the coalesce.lead span) into the planner thread, so store
            # lookups and runtime task spans land in the right tree.
            ctx = contextvars.copy_context()
            started = perf_counter()
            try:
                return await loop.run_in_executor(
                    self._executor, ctx.run, self._plan_fn, request)
            finally:
                if flight is not None:
                    flight.hop("pool.done",
                               seconds=round(perf_counter() - started, 6))

        def note(outcome: str, leader_trace_id: str | None) -> None:
            if flight is not None:
                flight.hop("coalesce", outcome=outcome,
                           leader_trace_id=leader_trace_id)

        result = await self._coalescer.run(key, compute, on_outcome=note)
        # Joined waiters echo their own request document (identical
        # signature, possibly different spelling of max_duty).
        if result.request is not request:
            result = dc_replace(result, request=request)
        return result

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        started = perf_counter()
        endpoint, status, body = "?", 0, b""
        content_type = "application/json"
        info: dict[str, Any] = {}  # filled by _admit: trace_id
        try:
            try:
                parsed = await asyncio.wait_for(
                    self._read_request(reader), timeout=_READ_TIMEOUT_S)
            except asyncio.TimeoutError:
                parsed = None  # slow client: hang up without a response
            if parsed is not None:
                method, path, query, raw = parsed
                endpoint = path
                status, body, content_type = await self._route(
                    method, path, query, raw, info)
        except protocol.ProtocolError as exc:
            status, body = exc.status, _encode(exc.to_doc())
        except Exception:  # noqa: BLE001 - last-ditch 500, never a crash
            _log.exception("serve_internal_error")
            status, body = 500, _encode(protocol.error_doc(
                protocol.ERR_INTERNAL, "internal server error"))
        try:
            if status:
                # Count before the flush: a client that has its response
                # in hand must find its own request in /metrics already.
                self._requests.labels(endpoint=endpoint,
                                      code=str(status)).inc()
                await self._write_response(writer, status, body, content_type)
            else:
                writer.close()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it
        if status:
            self._latency.labels(endpoint=endpoint).observe(
                perf_counter() - started, trace_id=info.get("trace_id"))

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, str, bytes] | None:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise protocol.ProtocolError(protocol.ERR_BAD_REQUEST,
                                         "malformed HTTP request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise protocol.ProtocolError(protocol.ERR_BAD_REQUEST,
                                         "invalid Content-Length header")
        if length < 0:
            raise protocol.ProtocolError(protocol.ERR_BAD_REQUEST,
                                         "invalid Content-Length header")
        if length > self.config.max_body_bytes:
            raise protocol.ProtocolError(
                protocol.ERR_PAYLOAD_TOO_LARGE,
                f"body of {length} bytes exceeds the limit of "
                f"{self.config.max_body_bytes}")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, query, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, body: bytes,
                              content_type: str) -> None:
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        writer.close()

    # ------------------------------------------------------------------
    # routing and endpoints
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, query: str, raw: bytes,
                     info: dict[str, Any]) -> tuple[int, bytes, str]:
        if path == "/healthz":
            _require(method, "GET")
            return 200, _encode(protocol.ok_doc(
                status="draining" if self._draining else "serving",
                inflight=self._active,
                max_inflight=self.config.max_inflight)), "application/json"
        if path == "/metrics":
            _require(method, "GET")
            return (200, self.registry.to_prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8")
        if path == "/metrics.json":
            _require(method, "GET")
            return 200, self.registry.to_json().encode("utf-8"), \
                "application/json"
        if path == "/metrics/history":
            _require(method, "GET")
            doc = self._history.to_doc(
                interval_s=self.config.history_interval_s)
            return 200, _encode(doc), "application/json"
        if path == "/profilez":
            _require(method, "GET")
            return await self._profilez(query)
        if path == "/slo":
            _require(method, "GET")
            snapshot = self.registry.snapshot()
            self._burn.sample(snapshot)
            report = _slo.evaluate(self._objectives, snapshot,
                                   self._burn.burn_rates())
            return 200, _encode(protocol.ok_doc(slo=report)), \
                "application/json"
        if path == "/debugz":
            _require(method, "GET")
            return 200, _encode(protocol.ok_doc(
                capacity=self._flights.capacity,
                requests=self._flights.to_list())), "application/json"
        if path in ("/provision", "/plan"):
            _require(method, "POST")
            return await self._admit(path, raw, info)
        raise protocol.ProtocolError(protocol.ERR_NOT_FOUND,
                                     f"no such endpoint: {path}")

    async def _profilez(self, query: str) -> tuple[int, bytes, str]:
        """``GET /profilez?seconds=N&hz=H``: sample the live process.

        Runs a :class:`~repro.obs.profile.SamplingProfiler` for the
        requested window while the event loop keeps serving (the sampler
        is its own thread; this coroutine just awaits), then answers
        with the collapsed-stack text.  Sees *every* thread — the event
        loop and the ``repro-serve-plan`` worker pool — so a profile
        taken under load shows exactly where planner time goes.  Ops
        endpoint: bypasses admission, usable while saturated.
        """
        params = parse_qs(query, keep_blank_values=False)

        def scalar(name: str, default: float, cast) -> Any:
            values = params.get(name)
            if not values:
                return default
            try:
                return cast(values[-1])
            except (TypeError, ValueError):
                raise protocol.ProtocolError(
                    protocol.ERR_BAD_REQUEST,
                    f"invalid {name!r} query parameter: {values[-1]!r}")

        seconds = scalar("seconds", 1.0, float)
        hz = scalar("hz", _profile.DEFAULT_HZ, int)
        if not 0.0 < seconds <= self.config.profilez_max_seconds:
            raise protocol.ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"seconds must be in (0, {self.config.profilez_max_seconds:g}]"
                f", got {seconds:g}")
        try:
            profiler = _profile.SamplingProfiler(hz=hz)
        except (TypeError, ValueError) as exc:
            raise protocol.ProtocolError(protocol.ERR_BAD_REQUEST, str(exc))
        profiler.start()
        try:
            await asyncio.sleep(seconds)
        finally:
            prof = profiler.stop()
        _log.info("profilez", extra={"seconds": seconds, "hz": hz,
                                     "samples": prof.samples})
        return (200, prof.collapsed().encode("utf-8"),
                "text/plain; charset=utf-8")

    def _retry_after_hint(self) -> float:
        """Backoff hint (seconds) for refused requests, from queue depth.

        A small floor plus a linear term per request queued beyond the
        worker pool, capped at 5s — deterministic in the current load, so
        a deeper queue tells clients to stay away longer.
        """
        queued = max(0, self._active - self.config.jobs)
        return round(min(5.0, 0.05 + 0.01 * queued), 4)

    async def _admit(self, path: str, raw: bytes,
                     info: dict[str, Any]) -> tuple[int, bytes, str]:
        """Admission control around the two provisioning endpoints.

        Admitted requests run inside a trace context (adopted from the
        body's ``trace_id``/``parent_id`` or freshly generated) and
        leave a :class:`FlightRecord` in the ``/debugz`` ring; refusals
        are recorded too, with the refusal as their only hop.
        """
        if self._draining:
            self._record_refusal(path, protocol.ERR_DRAINING)
            raise protocol.ProtocolError(
                protocol.ERR_DRAINING,
                "server is draining for shutdown; retry elsewhere",
                retry_after_s=self._retry_after_hint())
        if self._active >= self.config.max_inflight:
            self._record_refusal(path, protocol.ERR_OVERLOADED)
            raise protocol.ProtocolError(
                protocol.ERR_OVERLOADED,
                f"admission bound of {self.config.max_inflight} in-flight "
                "requests reached; retry with backoff",
                retry_after_s=self._retry_after_hint())
        self._active += 1
        self._inflight_gauge.set(self._active)
        flight = self._flights.begin(path)
        try:
            doc = protocol.parse_body(raw)
            trace_id, parent_id = protocol.pop_trace(doc)
            with _context.trace_context(trace_id=trace_id,
                                        parent_id=parent_id) as tctx:
                flight.trace_id = tctx.trace_id
                info["trace_id"] = tctx.trace_id
                flight.hop("admit", inflight=self._active)
                handler = (self._handle_provision if path == "/provision"
                           else self._handle_plan)
                with span("serve.request", endpoint=path):
                    if self.config.request_deadline_s is None:
                        response = await handler(doc, flight)
                    else:
                        try:
                            response = await asyncio.wait_for(
                                handler(doc, flight),
                                timeout=self.config.request_deadline_s)
                        except asyncio.TimeoutError:
                            raise protocol.ProtocolError(
                                protocol.ERR_DEADLINE_EXCEEDED,
                                "request exceeded its deadline of "
                                f"{self.config.request_deadline_s}s")
            self._flights.finish(flight, response[0])
            return response
        except protocol.ProtocolError as exc:
            self._flights.finish(flight, exc.status, error=exc.code)
            raise
        except Exception:
            self._flights.finish(flight, 500, error=protocol.ERR_INTERNAL)
            raise
        finally:
            self._active -= 1
            self._inflight_gauge.set(self._active)
            if self._draining and self._active == 0 \
                    and self._drained is not None:
                self._drained.set()

    def _record_refusal(self, path: str, code: str) -> None:
        """One flight-recorder entry for a request refused at admission."""
        flight = self._flights.begin(path)
        flight.hop("refused", code=code, inflight=self._active)
        self._flights.finish(flight, protocol.ERROR_STATUS[code], error=code)

    async def _handle_provision(self, doc: dict[str, Any],
                                flight: FlightRecord
                                ) -> tuple[int, bytes, str]:
        requests, include = protocol.parse_provision_body(doc)
        with span("serve.provision", requests=len(requests)):
            results = await asyncio.gather(
                *(self._answer(req, flight) for req in requests))
        docs = [r.to_dict(include_schedule=include) for r in results]
        return 200, _encode(protocol.ok_doc(
            results=docs, trace_id=_context.current_trace_id())), \
            "application/json"

    async def _handle_plan(self, doc: dict[str, Any],
                           flight: FlightRecord) -> tuple[int, bytes, str]:
        request, include = protocol.parse_plan_body(doc)
        with span("serve.plan", n=request.n, d=request.d):
            result = await self._answer(request, flight)
        return 200, _encode(protocol.ok_doc(
            result=result.to_dict(include_schedule=include),
            trace_id=_context.current_trace_id())), \
            "application/json"


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise protocol.ProtocolError(
            protocol.ERR_METHOD_NOT_ALLOWED,
            f"endpoint accepts {expected}, not {method}")


def _encode(doc: dict[str, Any]) -> bytes:
    return (json.dumps(doc) + "\n").encode("utf-8")


class BackgroundServer:
    """Run a :class:`ScheduleServer` on a daemon thread (tests, benches).

    Context manager: entering starts an event loop on a fresh thread,
    binds the server and blocks until it is accepting; exiting drains it
    and joins the thread.  ``host``/``port``/``server``/``loop`` are
    available inside the block::

        with BackgroundServer(ServeConfig(port=0)) as bs:
            ServeClient(bs.host, bs.port).health()
    """

    def __init__(self, config: ServeConfig | None = None,
                 **server_kwargs: Any) -> None:
        """*config* and *server_kwargs* pass to :class:`ScheduleServer`."""
        self._config = config
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve-bg")
        self.server: ScheduleServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.host = ""
        self.port = 0

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("background server failed to start in time")
        if self._failure is not None:
            raise RuntimeError("background server failed to start") \
                from self._failure
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server and join its thread (idempotent)."""
        if self.loop is not None and self.server is not None \
                and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.begin_drain)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("background server failed to drain in time")

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced in __enter__
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.server = ScheduleServer(self._config, **self._kwargs)
        self.loop = asyncio.get_running_loop()
        self.host, self.port = await self.server.start()
        self._ready.set()
        await self.server.wait_closed()
