"""Wire protocol of the schedule server: schemas, validation, error codes.

Everything the server reads off a socket is untrusted; this module is the
single place where raw JSON becomes typed values.  Validation is strict
in the same spirit as :meth:`repro.service.api.ProvisionRequest.from_dict`
(which it reuses): unknown keys, wrong-typed fields and oversized batches
raise a :class:`ProtocolError` naming the offending key, and nothing
mis-typed ever reaches the planner.

Every response body is a JSON object carrying the protocol version::

    {"protocol": 1, "ok": true, ...}                       # success
    {"protocol": 1, "ok": false,
     "error": {"code": "overloaded", "message": "..."}}    # failure

Error codes are versioned contract, not prose: clients branch on
``error.code`` (see :data:`RETRYABLE_CODES`), never on the message text.
The HTTP status of each code is fixed by :data:`ERROR_STATUS`.

Retryable errors (``overloaded``, ``draining``) may additionally carry a
``retry_after_s`` hint inside the ``error`` object — seconds the server
suggests waiting before the retry, derived from its current queue depth.
The field is additive and optional (protocol version stays 1): old
clients ignore it, new clients fall back to their own seeded backoff
when it is absent.

**Trace correlation** rides the same additive-field policy: a ``POST``
body may carry ``trace_id`` (and ``parent_id``, the caller's span id) —
:func:`pop_trace` strips and validates them before schema validation,
the server adopts the ids via :mod:`repro.obs.context`, and success
envelopes echo ``trace_id`` back.  Clients generate-or-forward: an
active :func:`repro.obs.context.trace_context` is forwarded, otherwise
the client mints a fresh id per logical call (stable across its
retries), so every request is correlatable end to end.

Domain failures — an infeasible duty budget, impossible class parameters —
are *not* protocol errors: they travel as per-request ``error`` fields
inside a ``200`` response, exactly like a ``repro provision`` result line.
Protocol errors mean the request never made it to the planner at all.
"""

from __future__ import annotations

import json
from typing import Any

from repro.service.api import ProvisionRequest

__all__ = ["PROTOCOL_VERSION", "MAX_BATCH", "ProtocolError",
           "ERR_BAD_REQUEST", "ERR_NOT_FOUND", "ERR_METHOD_NOT_ALLOWED",
           "ERR_PAYLOAD_TOO_LARGE", "ERR_OVERLOADED", "ERR_DRAINING",
           "ERR_DEADLINE_EXCEEDED", "ERR_INTERNAL", "ERROR_STATUS",
           "RETRYABLE_CODES", "MAX_TRACE_ID_LEN", "ok_doc", "error_doc",
           "retry_after_hint", "parse_body", "pop_trace",
           "parse_provision_body", "parse_plan_body"]

#: Version stamped into every response body.  Bump on any incompatible
#: change to the envelope, the error codes or the endpoint schemas.
PROTOCOL_VERSION = 1

#: Largest ``requests`` list one ``/provision`` call may carry; bigger
#: batches must be split client-side (the admission queue bounds work in
#: requests, so one request must stay boundedly sized too).
MAX_BATCH = 256

# -- versioned error codes (the client contract) -----------------------
#: Malformed body: not JSON, wrong shape, unknown or mis-typed field.
ERR_BAD_REQUEST = "bad-request"
#: No such endpoint.
ERR_NOT_FOUND = "not-found"
#: Endpoint exists but not for this HTTP method.
ERR_METHOD_NOT_ALLOWED = "method-not-allowed"
#: Body exceeds the server's ``max_body_bytes``.
ERR_PAYLOAD_TOO_LARGE = "payload-too-large"
#: Admission bound reached; the request was refused, not queued.  Safe to
#: retry with backoff.
ERR_OVERLOADED = "overloaded"
#: Server is draining for shutdown; it will answer in-flight work but
#: admits nothing new.  Safe to retry against a replacement instance.
ERR_DRAINING = "draining"
#: The request was admitted but exceeded its processing deadline.
ERR_DEADLINE_EXCEEDED = "deadline-exceeded"
#: Unexpected server-side failure (a bug — the body carries no detail).
ERR_INTERNAL = "internal"

#: Error code -> HTTP status line of the response that carries it.
ERROR_STATUS = {
    ERR_BAD_REQUEST: 400,
    ERR_NOT_FOUND: 404,
    ERR_METHOD_NOT_ALLOWED: 405,
    ERR_PAYLOAD_TOO_LARGE: 413,
    ERR_OVERLOADED: 503,
    ERR_DRAINING: 503,
    ERR_DEADLINE_EXCEEDED: 504,
    ERR_INTERNAL: 500,
}

#: Codes a client may blindly retry (with backoff): the request was never
#: processed, so a retry cannot double-apply anything.
RETRYABLE_CODES = frozenset({ERR_OVERLOADED, ERR_DRAINING})


class ProtocolError(ValueError):
    """A request the server refuses before any planner work happens."""

    def __init__(self, code: str, message: str, *,
                 retry_after_s: float | None = None):
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    @property
    def status(self) -> int:
        """The HTTP status this error is served with."""
        return ERROR_STATUS[self.code]

    def to_doc(self) -> dict[str, Any]:
        """The response body for this error."""
        return error_doc(self.code, self.message,
                         retry_after_s=self.retry_after_s)


def ok_doc(**payload: Any) -> dict[str, Any]:
    """A success envelope: ``{"protocol": N, "ok": true, **payload}``."""
    return {"protocol": PROTOCOL_VERSION, "ok": True, **payload}


def error_doc(code: str, message: str, *,
              retry_after_s: float | None = None) -> dict[str, Any]:
    """A failure envelope carrying one versioned error code.

    *retry_after_s* (retryable codes only, optional) is the server's
    backoff hint in seconds; ``None`` omits the field entirely.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = retry_after_s
    return {"protocol": PROTOCOL_VERSION, "ok": False, "error": error}


def retry_after_hint(doc: Any) -> float | None:
    """The ``error.retry_after_s`` hint of a response document, if sane.

    Returns ``None`` for non-error documents, absent hints and anything
    mis-typed or negative — a malformed hint must never turn into a
    client sleep.
    """
    if not isinstance(doc, dict):
        return None
    error = doc.get("error")
    if not isinstance(error, dict):
        return None
    hint = error.get("retry_after_s")
    if isinstance(hint, (int, float)) and not isinstance(hint, bool) \
            and hint >= 0:
        return float(hint)
    return None


#: Longest accepted ``trace_id``/``parent_id`` value — ids are opaque
#: client-chosen strings, but they end up in logs and span files, so
#: they stay bounded and single-line.
MAX_TRACE_ID_LEN = 128


def pop_trace(doc: dict[str, Any]) -> tuple[str | None, str | None]:
    """Strip the additive trace envelope fields from a request body.

    Returns ``(trace_id, parent_id)`` (either may be None) and removes
    the keys from *doc* so endpoint schema validation stays strict about
    everything else.  Mis-typed, empty, oversized or non-printable
    values raise bad-request — these strings flow into logs verbatim.
    """
    values = []
    for key in ("trace_id", "parent_id"):
        value = doc.pop(key, None)
        if value is None:
            values.append(None)
            continue
        if not isinstance(value, str) or not value \
                or len(value) > MAX_TRACE_ID_LEN \
                or not value.isprintable():
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"field {key!r} must be a printable string of at most "
                f"{MAX_TRACE_ID_LEN} characters")
        values.append(value)
    return values[0], values[1]


def parse_body(raw: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object, or raise bad-request."""
    if not raw:
        raise ProtocolError(ERR_BAD_REQUEST, "request body required")
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_REQUEST, f"body is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "body must be a JSON object")
    return doc


def _check_flag(doc: dict[str, Any], key: str, default: bool) -> bool:
    value = doc.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(ERR_BAD_REQUEST,
                            f"field {key!r} must be a boolean, "
                            f"got {type(value).__name__}")
    return value


def parse_provision_body(doc: dict[str, Any]
                         ) -> tuple[list[ProvisionRequest], bool]:
    """Validate a ``POST /provision`` body.

    Schema: ``{"requests": [{n, d, max_duty[, balanced]}, ...]``
    (1..:data:`MAX_BATCH` items)``[, "include_schedules": bool]}``.
    Returns ``(requests, include_schedules)``.
    """
    unknown = set(doc) - {"requests", "include_schedules"}
    if unknown:
        raise ProtocolError(ERR_BAD_REQUEST,
                            f"body has unknown fields: {sorted(unknown)}")
    entries = doc.get("requests")
    if not isinstance(entries, list) or not entries:
        raise ProtocolError(ERR_BAD_REQUEST,
                            "field 'requests' must be a non-empty list")
    if len(entries) > MAX_BATCH:
        raise ProtocolError(ERR_BAD_REQUEST,
                            f"batch of {len(entries)} exceeds the limit of "
                            f"{MAX_BATCH} requests per call")
    requests = []
    for i, entry in enumerate(entries):
        try:
            requests.append(ProvisionRequest.from_dict(entry))
        except ValueError as exc:
            raise ProtocolError(ERR_BAD_REQUEST, f"requests[{i}]: {exc}")
    return requests, _check_flag(doc, "include_schedules", True)


def parse_plan_body(doc: dict[str, Any]) -> tuple[ProvisionRequest, bool]:
    """Validate a ``POST /plan`` body.

    Schema: one request object — ``{n, d, max_duty[, balanced]
    [, include_schedule: bool]}``.  Returns ``(request,
    include_schedule)``.
    """
    include = _check_flag(doc, "include_schedule", True)
    fields = {k: v for k, v in doc.items() if k != "include_schedule"}
    try:
        return ProvisionRequest.from_dict(fields), include
    except ValueError as exc:
        raise ProtocolError(ERR_BAD_REQUEST, str(exc))
