"""Client-side failover: endpoint spreading, circuit breakers, retry budget.

One :class:`~repro.serve.client.ServeClient` talks to one server; a fleet
needs a client that survives *servers*.  :class:`FailoverClient` spreads
requests over several endpoints round-robin and wraps each in a
:class:`CircuitBreaker`:

* **closed** — requests flow; consecutive retryable failures count up;
* **open** — the endpoint is skipped entirely until a seeded reset
  timeout elapses (no connect attempts, no socket timeouts burned on a
  known-dead host);
* **half-open** — exactly one probe request is let through; success
  closes the breaker, failure re-opens it with a fresh seeded timeout.

The reset timeout is jittered by the same
:meth:`repro.faults.FaultPlan.backoff_jitter` draw every other backoff in
the stack uses, keyed on ``(endpoint, open_count)`` — two clients with
the same seed probe at identical offsets, so a chaos run's failover
behaviour is reproducible, yet a real fleet's probes do not stampede.

Retries against *different* endpoints replace the single-endpoint retry
ladder: each inner client runs with ``retries=0`` and this layer owns the
policy — seeded exponential backoff between attempts, the server's
``retry_after_s`` hint when one was offered, and a total *retry_budget_s*
wall-clock cap so a retry storm cannot outlive its usefulness.  Every
outcome lands in the metrics registry (``repro_failover_*`` series), so
endpoint health is visible in the same snapshot as everything else.

Failure contract, identical to :class:`ServeClient`: every call either
returns a parsed response or raises a typed
:class:`~repro.serve.client.ServeError` — never a bare socket error, and
never an unbounded hang.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Sequence

from repro._validation import check_int
from repro.faults import FaultPlan
from repro.obs import context as _context
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import span
from repro.serve.client import ServeClient, ServeError
from repro.service.api import ProvisionRequest, ProvisionResult

__all__ = ["BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
           "CircuitBreaker", "FailoverClient"]

_log = get_logger("serve.failover")

#: Breaker states (the values the metrics gauge and tests see).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Gauge encoding of each breaker state.
_STATE_LEVEL = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 0.5,
                BREAKER_OPEN: 1.0}


class CircuitBreaker:
    """Per-endpoint failure gate: closed / open / half-open.

    Pure state machine over an injectable *clock* (tests pin time); the
    only nondeterminism in a real run is the wall clock itself — the
    reset timeout's jitter is a seeded draw keyed on
    ``(endpoint, open_count)``.
    """

    def __init__(self, endpoint: str, *, failure_threshold: int = 3,
                 reset_timeout_s: float = 1.0,
                 plan: FaultPlan | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str, str], None] | None = None
                 ) -> None:
        """Gate *endpoint*; open after *failure_threshold* consecutive
        retryable failures, probe again after a seeded multiple of
        *reset_timeout_s*.  *on_transition(endpoint, new_state)* fires on
        every state change (metrics hook)."""
        self.endpoint = endpoint
        self.failure_threshold = check_int(
            failure_threshold, "failure_threshold", minimum=1)
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.reset_timeout_s = reset_timeout_s
        self.plan = plan if plan is not None else FaultPlan()
        self._clock = clock
        self._on_transition = on_transition
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opens = 0
        self._open_until = 0.0

    @property
    def state(self) -> str:
        """The current state (without side effects)."""
        return self._state

    @property
    def opens(self) -> int:
        """How many times this breaker has opened."""
        return self._opens

    def reset_delay(self, open_count: int) -> float:
        """The seeded open->half-open delay for the *open_count*-th open."""
        return self.reset_timeout_s * self.plan.backoff_jitter(
            f"breaker:{self.endpoint}", open_count)

    def seconds_until_probe(self) -> float:
        """Seconds until an open breaker admits its probe (0 if not open)."""
        if self._state != BREAKER_OPEN:
            return 0.0
        return max(0.0, self._open_until - self._clock())

    def allow(self) -> bool:
        """Whether a request may use this endpoint right now.

        An open breaker whose reset timeout has elapsed transitions to
        half-open and admits exactly one probe; the probe's
        :meth:`record_success` / :meth:`record_failure` decides what
        happens next.  A half-open breaker with its probe still in
        flight admits nothing.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN \
                and self._clock() >= self._open_until:
            self._transition(BREAKER_HALF_OPEN)
            return True
        return False

    def record_success(self) -> None:
        """The endpoint answered: close the breaker, forget failures."""
        self._failures = 0
        if self._state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A retryable failure: count it; trip or re-open as due."""
        self._failures += 1
        if self._state == BREAKER_HALF_OPEN \
                or (self._state == BREAKER_CLOSED
                    and self._failures >= self.failure_threshold):
            self._opens += 1
            self._open_until = self._clock() + self.reset_delay(self._opens)
            self._transition(BREAKER_OPEN)

    def _transition(self, state: str) -> None:
        self._state = state
        _log.debug("breaker_transition", extra={
            "endpoint": self.endpoint, "state": state})
        if self._on_transition is not None:
            self._on_transition(self.endpoint, state)


def _parse_endpoint(spec: Any) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` -> a concrete address pair."""
    if isinstance(spec, str):
        host, sep, port = spec.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"endpoint {spec!r} must look like 'host:port'")
        return host, check_int(int(port), "port", minimum=1)
    host, port = spec
    return str(host), check_int(port, "port", minimum=1)


class _Endpoint:
    """One endpoint's client + breaker + bound metric series."""

    __slots__ = ("name", "client", "breaker", "ok", "failed", "rejected")

    def __init__(self, name: str, client: ServeClient,
                 breaker: CircuitBreaker, requests) -> None:
        self.name = name
        self.client = client
        self.breaker = breaker
        self.ok = requests.labels(endpoint=name, outcome="ok")
        self.failed = requests.labels(endpoint=name, outcome="failed")
        self.rejected = requests.labels(endpoint=name, outcome="rejected")


class FailoverClient:
    """Spread requests over endpoints; survive the death of any of them.

    *endpoints* is a non-empty sequence of ``"host:port"`` strings or
    ``(host, port)`` pairs.  *retries* counts extra attempts beyond the
    first, each against the next healthy endpoint in rotation.  All the
    knobs of the single-endpoint client (*timeout*, *backoff_base*,
    *backoff_cap*, *retry_budget_s*, *seed*) apply to the failover layer
    itself; the inner per-endpoint clients run single-shot.
    """

    def __init__(self, endpoints: Iterable[Any], *, timeout: float = 60.0,
                 retries: int = 6, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 retry_budget_s: float | None = None, seed: int = 0,
                 failure_threshold: int = 3,
                 breaker_reset_s: float = 1.0,
                 registry: MetricsRegistry | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        """Build the rotation; *clock*/*sleep* are injectable for tests."""
        specs = [_parse_endpoint(spec) for spec in endpoints]
        if not specs:
            raise ValueError("FailoverClient needs at least one endpoint")
        self.retries = check_int(retries, "retries", minimum=0)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if retry_budget_s is not None and retry_budget_s < 0:
            raise ValueError("retry_budget_s must be >= 0 or None")
        self.retry_budget_s = retry_budget_s
        self.registry = registry if registry is not None \
            else default_registry()
        self._plan = FaultPlan(seed=seed)
        self._clock = clock
        self._sleep = sleep
        self._calls = 0

        requests = self.registry.counter(
            "repro_failover_requests_total",
            "Failover attempts, by endpoint and outcome "
            "(ok / failed / rejected).")
        self._transitions = self.registry.counter(
            "repro_failover_breaker_transitions_total",
            "Circuit-breaker state changes, by endpoint and new state.")
        self._state_gauge = self.registry.gauge(
            "repro_failover_breaker_open",
            "Breaker state per endpoint: 0 closed, 0.5 half-open, 1 open.")
        self._retries_total = self.registry.counter(
            "repro_failover_retries_total",
            "Retry sleeps taken by the failover layer.").labels()
        self._exhausted = self.registry.counter(
            "repro_failover_exhausted_total",
            "Calls that failed after every retry (or budget).").labels()

        self._endpoints: list[_Endpoint] = []
        for host, port in specs:
            name = f"{host}:{port}"
            client = ServeClient(host, port, timeout=timeout, retries=0,
                                 backoff_base=backoff_base,
                                 backoff_cap=backoff_cap, seed=seed)
            breaker = CircuitBreaker(
                name, failure_threshold=failure_threshold,
                reset_timeout_s=breaker_reset_s, plan=self._plan,
                clock=clock, on_transition=self._record_transition)
            self._state_gauge.labels(endpoint=name).set(0.0)
            self._endpoints.append(_Endpoint(name, client, breaker,
                                             requests))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> list[str]:
        """Endpoint names, in rotation order."""
        return [ep.name for ep in self._endpoints]

    def breaker(self, endpoint: str) -> CircuitBreaker:
        """The breaker gating *endpoint* (KeyError if unknown)."""
        for ep in self._endpoints:
            if ep.name == endpoint:
                return ep.breaker
        raise KeyError(endpoint)

    def breaker_states(self) -> dict[str, str]:
        """Endpoint -> current breaker state."""
        return {ep.name: ep.breaker.state for ep in self._endpoints}

    def backoff_delay(self, path: str, attempt: int) -> float:
        """The seeded inter-attempt backoff (1-based *attempt*)."""
        base = min(self.backoff_cap,
                   self.backoff_base * 2.0 ** max(0, attempt - 1))
        return base * self._plan.backoff_jitter(path, attempt)

    # ------------------------------------------------------------------
    # the failover loop
    # ------------------------------------------------------------------
    def call(self, method: str, path: str,
             body: dict[str, Any] | None = None) -> dict[str, Any]:
        """A JSON exchange against the first healthy endpoint to answer.

        Raises :class:`ServeError` when the request is refused
        non-retryably (immediately, from the answering endpoint) or when
        every attempt/budget is exhausted (the *last* failure, so the
        caller sees a real code, not a synthetic one).

        The whole rotation runs inside **one** trace scope: however many
        endpoints a request visits before succeeding, every attempt
        carries the same ``trace_id`` (the inner clients forward the
        active context instead of minting their own).
        """
        with _context.trace_context():
            with span("client.failover", method=method, path=path):
                return self._call_rotation(method, path, body)

    def _call_rotation(self, method: str, path: str,
                       body: dict[str, Any] | None) -> dict[str, Any]:
        deadline = None if self.retry_budget_s is None \
            else self._clock() + self.retry_budget_s
        start = self._calls
        self._calls += 1
        last_error: ServeError | None = None
        attempt = 0
        while True:
            ep = self._select(start + attempt)
            hint: float | None = None
            if ep is None:
                # Every breaker is open: the only useful wait is until
                # the soonest one half-opens.
                hint = min(e.breaker.seconds_until_probe()
                           for e in self._endpoints)
                if last_error is None:
                    last_error = ServeError(
                        0, "unavailable",
                        "every endpoint's circuit breaker is open")
            else:
                try:
                    doc = ep.client.call(method, path, body)
                except ServeError as exc:
                    if not exc.retryable:
                        # The endpoint is alive and answered with a
                        # verdict; that is endpoint *health*, even
                        # though the caller's request failed.
                        ep.breaker.record_success()
                        ep.rejected.inc()
                        raise
                    ep.breaker.record_failure()
                    ep.failed.inc()
                    last_error = exc
                    hint = exc.retry_after_s
                else:
                    ep.breaker.record_success()
                    ep.ok.inc()
                    return doc
            if attempt >= self.retries:
                break
            attempt += 1
            delay = min(hint, self.backoff_cap) if hint is not None \
                else self.backoff_delay(path, attempt)
            if deadline is not None and self._clock() + delay > deadline:
                break  # the budget is spent: surface the final outcome
            self._retries_total.inc()
            self._sleep(delay)
        self._exhausted.inc()
        assert last_error is not None
        raise last_error

    def _select(self, slot: int) -> _Endpoint | None:
        """The first endpoint in rotation whose breaker admits *slot*."""
        n = len(self._endpoints)
        for offset in range(n):
            ep = self._endpoints[(slot + offset) % n]
            if ep.breaker.allow():
                return ep
        return None

    def _record_transition(self, endpoint: str, state: str) -> None:
        self._transitions.labels(endpoint=endpoint, state=state).inc()
        self._state_gauge.labels(endpoint=endpoint).set(
            _STATE_LEVEL[state])

    # ------------------------------------------------------------------
    # endpoint conveniences (mirroring ServeClient)
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz`` against the first healthy endpoint."""
        return self.call("GET", "/healthz")

    def metrics_snapshot(self) -> dict[str, Any]:
        """``GET /metrics.json`` against the first healthy endpoint."""
        return self.call("GET", "/metrics.json")

    def provision(self, requests: Sequence[ProvisionRequest
                                           | dict[str, Any]], *,
                  include_schedules: bool = True) -> list[dict[str, Any]]:
        """``POST /provision`` — raw result documents (see ServeClient)."""
        docs = [r.to_dict() if isinstance(r, ProvisionRequest) else r
                for r in requests]
        doc = self.call("POST", "/provision", {
            "requests": docs, "include_schedules": include_schedules})
        return doc["results"]

    def provision_results(self, requests: Sequence[ProvisionRequest
                                                   | dict[str, Any]]
                          ) -> list[ProvisionResult]:
        """:meth:`provision`, parsed back into :class:`ProvisionResult`."""
        return [ProvisionResult.from_dict(doc)
                for doc in self.provision(requests, include_schedules=True)]

    def plan(self, n: int, d: int, max_duty: float | str, *,
             balanced: bool = False,
             include_schedule: bool = True) -> dict[str, Any]:
        """``POST /plan`` — one request, one raw result document."""
        doc = self.call("POST", "/plan", {
            "n": n, "d": d, "max_duty": max_duty, "balanced": balanced,
            "include_schedule": include_schedule})
        return doc["result"]
