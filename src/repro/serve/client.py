"""Synchronous client for the schedule server, with seeded retry/backoff.

The counterpart of :mod:`repro.serve.server`, built on stdlib
``http.client`` only.  Used by ``repro call``, the acceptance tests and
the loopback load benchmark — one implementation of the retry policy so
every consumer behaves identically.

Retry policy: connection-level failures (refused, reset, timed out
sockets) and responses carrying a code in
:data:`repro.serve.protocol.RETRYABLE_CODES` (``overloaded``,
``draining``) are retried up to *retries* times with exponential backoff.
The backoff jitter is **seeded** via the same
:meth:`repro.faults.FaultPlan.backoff_jitter` draw the fault-tolerant
runtime uses — two clients with the same seed back off identically, so a
load test's retry storm is byte-reproducible.  Anything else (``400``,
``404``, ``504``...) raises :class:`ServeError` immediately: retrying a
request the server *rejected* cannot help.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from repro._validation import check_int
from repro.faults import FaultPlan
from repro.serve import protocol
from repro.service.api import ProvisionRequest, ProvisionResult

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A request that failed after every retry.

    Attributes
    ----------
    status:
        HTTP status of the final response, or 0 when no response was
        ever received (connection-level failure).
    code:
        The protocol error code of the final response (see
        :mod:`repro.serve.protocol`), or ``"unavailable"`` when the
        server could not be reached at all.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServeClient:
    """Talk to a running :class:`~repro.serve.server.ScheduleServer`.

    Thread-compatible: every call opens its own connection, so one
    client instance may be shared across load-generator threads.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8177, *,
                 timeout: float = 60.0, retries: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 seed: int = 0) -> None:
        """Configure the endpoint and the retry/backoff schedule.

        *retries* counts extra attempts beyond the first; retry ``k``
        waits ``min(cap, base * 2**(k-1))`` seconds scaled by the seeded
        jitter in ``[0.5, 1.5)``.
        """
        self.host = host
        self.port = check_int(port, "port", minimum=1)
        self.timeout = timeout
        self.retries = check_int(retries, "retries", minimum=0)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._jitter = FaultPlan(seed=seed)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def backoff_delay(self, path: str, attempt: int) -> float:
        """Seconds to sleep before retry *attempt* (1-based) of *path*."""
        base = min(self.backoff_cap,
                   self.backoff_base * 2.0 ** max(0, attempt - 1))
        return base * self._jitter.backoff_jitter(path, attempt)

    def request(self, method: str, path: str,
                body: dict[str, Any] | None = None) -> tuple[int, bytes, str]:
        """One HTTP exchange with retries; returns
        ``(status, body_bytes, content_type)`` of the final response.

        Raises :class:`ServeError` when the final outcome is a
        connection failure or a retryable error code that never cleared.
        Non-retryable error responses are returned, not raised — callers
        that want exceptions use :meth:`call`.
        """
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        last_exc: OSError | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff_delay(path, attempt))
            conn = http.client.HTTPConnection(self.host, self.port,
                                             timeout=self.timeout)
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                data = response.read()
                status = response.status
                content_type = response.getheader("Content-Type", "")
            except (OSError, http.client.HTTPException) as exc:
                last_exc = exc if isinstance(exc, OSError) \
                    else OSError(str(exc))
                continue
            finally:
                conn.close()
            if _error_code(status, data) in protocol.RETRYABLE_CODES \
                    and attempt < self.retries:
                continue
            return status, data, content_type
        raise ServeError(0, "unavailable",
                         f"{self.host}:{self.port} unreachable after "
                         f"{self.retries + 1} attempts: {last_exc}")

    def call(self, method: str, path: str,
             body: dict[str, Any] | None = None) -> dict[str, Any]:
        """A JSON exchange; returns the parsed response document.

        Raises :class:`ServeError` for any non-200 outcome, carrying the
        server's versioned error code.
        """
        status, data, _content_type = self.request(method, path, body)
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = None
        if status == 200 and isinstance(doc, dict):
            return doc
        code = _error_code(status, data) or "unavailable"
        message = "unparseable response body"
        if isinstance(doc, dict):
            message = str(doc.get("error", {}).get("message", message))
        raise ServeError(status, code, message)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz`` — serving/draining state and inflight count."""
        return self.call("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        status, data, _ct = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, _error_code(status, data) or "internal",
                             "metrics endpoint failed")
        return data.decode("utf-8")

    def metrics_snapshot(self) -> dict[str, Any]:
        """``GET /metrics.json`` — the ``repro-metrics`` snapshot."""
        return self.call("GET", "/metrics.json")

    def provision(self, requests: list[ProvisionRequest | dict[str, Any]], *,
                  include_schedules: bool = True) -> list[dict[str, Any]]:
        """``POST /provision`` — returns the raw result documents.

        Result lines have exactly the shape ``repro provision`` writes;
        parse them with :meth:`ProvisionResult.from_dict` (requires
        ``include_schedules=True`` for successful results).
        """
        docs = [r.to_dict() if isinstance(r, ProvisionRequest) else r
                for r in requests]
        doc = self.call("POST", "/provision", {
            "requests": docs, "include_schedules": include_schedules})
        return doc["results"]

    def provision_results(self, requests: list[ProvisionRequest
                                               | dict[str, Any]]
                          ) -> list[ProvisionResult]:
        """:meth:`provision`, parsed back into :class:`ProvisionResult`."""
        return [ProvisionResult.from_dict(doc)
                for doc in self.provision(requests, include_schedules=True)]

    def plan(self, n: int, d: int, max_duty: float | str, *,
             balanced: bool = False,
             include_schedule: bool = True) -> dict[str, Any]:
        """``POST /plan`` — one request, one raw result document."""
        doc = self.call("POST", "/plan", {
            "n": n, "d": d, "max_duty": max_duty, "balanced": balanced,
            "include_schedule": include_schedule})
        return doc["result"]


def _error_code(status: int, data: bytes) -> str | None:
    """The protocol error code of a response, or None for non-errors."""
    if status == 200:
        return None
    try:
        doc = json.loads(data.decode("utf-8"))
        code = doc["error"]["code"]
    except Exception:  # noqa: BLE001 - any malformed body: no code
        return None
    return code if isinstance(code, str) else None
