"""Synchronous client for the schedule server, with seeded retry/backoff.

The counterpart of :mod:`repro.serve.server`, built on stdlib
``http.client`` only.  Used by ``repro call``, the acceptance tests and
the loopback load benchmark — one implementation of the retry policy so
every consumer behaves identically.

Retry policy: connection-level failures (refused, reset, timed out
sockets) and responses carrying a code in
:data:`repro.serve.protocol.RETRYABLE_CODES` (``overloaded``,
``draining``) are retried up to *retries* times with exponential backoff.
The backoff jitter is **seeded** via the same
:meth:`repro.faults.FaultPlan.backoff_jitter` draw the fault-tolerant
runtime uses — two clients with the same seed back off identically, so a
load test's retry storm is byte-reproducible.  When a retryable response
carries the server's ``retry_after_s`` hint, the hint (capped at
*backoff_cap*) replaces the seeded backoff for that retry — the server
knows its own queue depth better than the client does.  Anything else
(``400``, ``404``, ``504``...) raises :class:`ServeError` immediately:
retrying a request the server *rejected* cannot help.

*retry_budget_s* bounds the whole retry storm in wall-clock terms: once
the next sleep would overrun the budget, the client stops retrying and
surfaces the final outcome instead — a saturated fleet cannot amplify
itself indefinitely.

Trace correlation (generate-or-forward): every ``POST`` body gains a
``trace_id`` — the active :func:`repro.obs.context.trace_context` when
one is in flight, a freshly minted id otherwise — plus the caller's
span id as ``parent_id``, so the server's spans nest under the client's
``client.call`` span.  The id is attached **once per logical call** and
reused verbatim across every retry, which is what makes a
retried-then-succeeded request one trace instead of several.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from repro._validation import check_int
from repro.faults import FaultPlan
from repro.obs import context as _context
from repro.obs.tracing import span
from repro.serve import protocol
from repro.service.api import ProvisionRequest, ProvisionResult

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A request that failed after every retry.

    Attributes
    ----------
    status:
        HTTP status of the final response, or 0 when no response was
        ever received (connection-level failure).
    code:
        The protocol error code of the final response (see
        :mod:`repro.serve.protocol`), or ``"unavailable"`` when the
        server could not be reached at all.
    retry_after_s:
        The server's backoff hint from the final response, or ``None``
        when it carried none — failover layers reuse it when spreading
        the retry over other endpoints.
    """

    def __init__(self, status: int, code: str, message: str, *,
                 retry_after_s: float | None = None):
        super().__init__(f"{code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    @property
    def retryable(self) -> bool:
        """Whether a retry (here or elsewhere) could plausibly help."""
        return self.code == "unavailable" \
            or self.code in protocol.RETRYABLE_CODES


class ServeClient:
    """Talk to a running :class:`~repro.serve.server.ScheduleServer`.

    Thread-compatible: every call opens its own connection, so one
    client instance may be shared across load-generator threads.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8177, *,
                 timeout: float = 60.0, retries: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 retry_budget_s: float | None = None,
                 seed: int = 0) -> None:
        """Configure the endpoint and the retry/backoff schedule.

        *retries* counts extra attempts beyond the first; retry ``k``
        waits ``min(cap, base * 2**(k-1))`` seconds scaled by the seeded
        jitter in ``[0.5, 1.5)``, unless the response carried a
        ``retry_after_s`` hint (used instead, capped at *backoff_cap*).
        *retry_budget_s* is the wall-clock budget the retries of one
        request may spend in total; ``None`` means unbounded.
        """
        self.host = host
        self.port = check_int(port, "port", minimum=1)
        self.timeout = timeout
        self.retries = check_int(retries, "retries", minimum=0)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if retry_budget_s is not None and retry_budget_s < 0:
            raise ValueError("retry_budget_s must be >= 0 or None")
        self.retry_budget_s = retry_budget_s
        self._jitter = FaultPlan(seed=seed)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def backoff_delay(self, path: str, attempt: int) -> float:
        """Seconds to sleep before retry *attempt* (1-based) of *path*."""
        base = min(self.backoff_cap,
                   self.backoff_base * 2.0 ** max(0, attempt - 1))
        return base * self._jitter.backoff_jitter(path, attempt)

    def retry_delay(self, path: str, attempt: int, *,
                    retry_after_s: float | None = None) -> float:
        """Seconds to sleep before retry *attempt*, honouring the hint.

        The server's ``retry_after_s`` hint wins when present (capped at
        *backoff_cap* so a confused server cannot park a client); absent
        a hint the seeded :meth:`backoff_delay` applies.
        """
        if retry_after_s is not None:
            return min(retry_after_s, self.backoff_cap)
        return self.backoff_delay(path, attempt)

    def request(self, method: str, path: str,
                body: dict[str, Any] | None = None) -> tuple[int, bytes, str]:
        """One HTTP exchange with retries; returns
        ``(status, body_bytes, content_type)`` of the final response.

        Raises :class:`ServeError` when the final outcome is a
        connection failure.  Error responses — including a retryable code
        that never cleared within *retries*/*retry_budget_s* — are
        returned, not raised; callers that want exceptions use
        :meth:`call`.
        """
        payload = None
        if body is not None:
            if "trace_id" not in body:
                body = dict(body)
                ctx = _context.current()
                if ctx is not None:
                    body["trace_id"] = ctx.trace_id
                    body.setdefault("parent_id", ctx.span_id)
                else:
                    body["trace_id"] = _context.new_trace_id()
            # Serialized once: every retry of this call reuses the same
            # trace_id, so a retried request stays one trace.
            payload = json.dumps(body).encode("utf-8")
        deadline = None if self.retry_budget_s is None \
            else time.monotonic() + self.retry_budget_s
        last_exc: OSError | None = None
        attempt = 0
        while True:
            reached = False
            hint: float | None = None
            conn = http.client.HTTPConnection(self.host, self.port,
                                             timeout=self.timeout)
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                data = response.read()
                status = response.status
                content_type = response.getheader("Content-Type", "")
                reached = True
            except (OSError, http.client.HTTPException) as exc:
                last_exc = exc if isinstance(exc, OSError) \
                    else OSError(str(exc))
            finally:
                conn.close()
            if reached and _error_code(status, data) \
                    not in protocol.RETRYABLE_CODES:
                return status, data, content_type
            if reached:
                hint = _retry_hint(data)
            if attempt >= self.retries:
                break
            attempt += 1
            delay = self.retry_delay(path, attempt, retry_after_s=hint)
            if deadline is not None and time.monotonic() + delay > deadline:
                break  # the budget is spent: surface the final outcome
            time.sleep(delay)
        if reached:
            return status, data, content_type
        raise ServeError(0, "unavailable",
                         f"{self.host}:{self.port} unreachable after "
                         f"{attempt + 1} attempts: {last_exc}")

    def call(self, method: str, path: str,
             body: dict[str, Any] | None = None) -> dict[str, Any]:
        """A JSON exchange; returns the parsed response document.

        Raises :class:`ServeError` for any non-200 outcome, carrying the
        server's versioned error code (and its ``retry_after_s`` hint,
        when present).

        Runs inside a trace scope (adopted from any active context,
        opened fresh otherwise) and records a ``client.call`` span — the
        root of the request's hop tree on the client side.
        """
        with _context.trace_context():
            with span("client.call", method=method, path=path,
                      endpoint=f"{self.host}:{self.port}"):
                status, data, _content_type = self.request(method, path,
                                                           body)
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = None
        if status == 200 and isinstance(doc, dict):
            return doc
        code = _error_code(status, data) or "unavailable"
        message = "unparseable response body"
        if isinstance(doc, dict):
            message = str(doc.get("error", {}).get("message", message))
        raise ServeError(status, code, message,
                         retry_after_s=protocol.retry_after_hint(doc))

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz`` — serving/draining state and inflight count."""
        return self.call("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        status, data, _ct = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, _error_code(status, data) or "internal",
                             "metrics endpoint failed")
        return data.decode("utf-8")

    def metrics_snapshot(self) -> dict[str, Any]:
        """``GET /metrics.json`` — the ``repro-metrics`` snapshot."""
        return self.call("GET", "/metrics.json")

    def slo(self) -> dict[str, Any]:
        """``GET /slo`` — objectives, compliance and burn rates."""
        return self.call("GET", "/slo")

    def debugz(self) -> dict[str, Any]:
        """``GET /debugz`` — the server's flight-recorder dump."""
        return self.call("GET", "/debugz")

    def metrics_history(self) -> dict[str, Any]:
        """``GET /metrics/history`` — the ``repro-metrics-history`` ring."""
        return self.call("GET", "/metrics/history")

    def profilez(self, seconds: float = 1.0, *,
                 hz: int | None = None) -> str:
        """``GET /profilez`` — collapsed-stack profile of the live server.

        Blocks for *seconds* (plus transport time); raise the client
        *timeout* accordingly for long windows.
        """
        path = f"/profilez?seconds={seconds:g}"
        if hz is not None:
            path += f"&hz={hz}"
        status, data, _ct = self.request("GET", path)
        if status != 200:
            raise ServeError(status, _error_code(status, data) or "internal",
                             "profilez endpoint failed")
        return data.decode("utf-8")

    def provision(self, requests: list[ProvisionRequest | dict[str, Any]], *,
                  include_schedules: bool = True) -> list[dict[str, Any]]:
        """``POST /provision`` — returns the raw result documents.

        Result lines have exactly the shape ``repro provision`` writes;
        parse them with :meth:`ProvisionResult.from_dict` (requires
        ``include_schedules=True`` for successful results).
        """
        docs = [r.to_dict() if isinstance(r, ProvisionRequest) else r
                for r in requests]
        doc = self.call("POST", "/provision", {
            "requests": docs, "include_schedules": include_schedules})
        return doc["results"]

    def provision_results(self, requests: list[ProvisionRequest
                                               | dict[str, Any]]
                          ) -> list[ProvisionResult]:
        """:meth:`provision`, parsed back into :class:`ProvisionResult`."""
        return [ProvisionResult.from_dict(doc)
                for doc in self.provision(requests, include_schedules=True)]

    def plan(self, n: int, d: int, max_duty: float | str, *,
             balanced: bool = False,
             include_schedule: bool = True) -> dict[str, Any]:
        """``POST /plan`` — one request, one raw result document."""
        doc = self.call("POST", "/plan", {
            "n": n, "d": d, "max_duty": max_duty, "balanced": balanced,
            "include_schedule": include_schedule})
        return doc["result"]


def _retry_hint(data: bytes) -> float | None:
    """The ``retry_after_s`` hint of a raw response body, if any."""
    try:
        doc = json.loads(data.decode("utf-8"))
    except Exception:  # noqa: BLE001 - any malformed body: no hint
        return None
    return protocol.retry_after_hint(doc)


def _error_code(status: int, data: bytes) -> str | None:
    """The protocol error code of a response, or None for non-errors."""
    if status == 200:
        return None
    try:
        doc = json.loads(data.decode("utf-8"))
        code = doc["error"]["code"]
    except Exception:  # noqa: BLE001 - any malformed body: no code
        return None
    return code if isinstance(code, str) else None
