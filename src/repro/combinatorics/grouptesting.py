"""Non-adaptive group testing on cover-free families.

The paper traces cover-free families to Erdős-Frankl-Füredi and the group
-testing literature ([5, 9]).  The connection is exact: a ``d``-cover-free
family, read as an incidence matrix *pools x items* (pool ``e`` contains
item ``x`` iff ``e ∈ B_x``), is a ``d``-disjunct testing design — up to
``d`` defective items can be identified from one round of pooled tests by
the **naive decoder**: an item is defective iff every pool containing it
tests positive.

Implemented here both as a demonstration that the substrate really has
the claimed combinatorial strength (the round-trip *encode -> noiseless
test -> decode* must recover any ≤ d defective set exactly — property-
tested), and because WSN deployments use the same trick for, e.g.,
identifying up to ``d`` jammed slots or failed reporters in one frame of
aggregate observations.
"""

from __future__ import annotations

from repro._validation import check_int
from repro.combinatorics.coverfree import CoverFreeFamily

__all__ = ["pools_for_item", "run_tests", "decode", "identify_defectives"]


def pools_for_item(family: CoverFreeFamily, item: int) -> frozenset[int]:
    """The pools (ground elements) item *item*'s block places it in."""
    check_int(item, "item", minimum=0, maximum=family.size - 1)
    mask = family.blocks[item]
    return frozenset(i for i in range(family.ground) if mask >> i & 1)


def run_tests(family: CoverFreeFamily, defectives: set[int]) -> int:
    """Noiseless pooled tests: bitmask of pools that test positive.

    Pool ``e`` is positive iff it contains at least one defective item.
    """
    positive = 0
    for item in defectives:
        check_int(item, "defective", minimum=0, maximum=family.size - 1)
        positive |= family.blocks[item]
    return positive


def decode(family: CoverFreeFamily, positive_pools: int) -> set[int]:
    """The naive decoder: item defective iff all its pools are positive.

    Exact for any defective set of size ≤ d when the family is
    ``d``-cover-free: a non-defective item's block cannot be covered by
    the union of the ≤ d defective blocks, so it has a negative pool.
    """
    check_int(positive_pools, "positive_pools", minimum=0,
              maximum=(1 << family.ground) - 1)
    out = set()
    for item, block in enumerate(family.blocks):
        if block and block & ~positive_pools == 0:
            out.add(item)
    return out


def identify_defectives(family: CoverFreeFamily, defectives: set[int],
                        d: int) -> set[int]:
    """End-to-end: test then decode, asserting the capacity contract.

    Raises ``ValueError`` when more than *d* defectives are supplied —
    beyond the design's capacity the decoder may return supersets.
    """
    d = check_int(d, "d", minimum=1)
    if len(defectives) > d:
        raise ValueError(
            f"{len(defectives)} defectives exceed the design capacity d={d}"
        )
    return decode(family, run_tests(family, defectives))
