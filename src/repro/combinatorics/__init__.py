"""Design-theory substrate: finite fields, orthogonal arrays, Steiner
systems and cover-free families.

The paper's construction (Figure 2) takes a *topology-transparent
non-sleeping schedule* as input and cites the literature ([2, 13, 22, 3, 5])
for how to build one.  The standard route — pointed out by Syrotiuk/Colbourn/
Ling and by Colbourn/Ling/Syrotiuk — is through *cover-free families*, which
in turn come from orthogonal arrays (polynomial codes over a finite field)
and Steiner systems.  This subpackage implements that whole substrate from
scratch:

* :mod:`repro.combinatorics.gf` — arithmetic in ``GF(p)`` and ``GF(p^m)``;
* :mod:`repro.combinatorics.polynomials` — polynomial evaluation and
  enumeration over a field;
* :mod:`repro.combinatorics.orthogonal` — orthogonal arrays from polynomial
  codes, plus an exhaustive verifier;
* :mod:`repro.combinatorics.steiner` — Steiner triple systems (Bose and
  Skolem-type constructions) and projective planes;
* :mod:`repro.combinatorics.coverfree` — the :class:`CoverFreeFamily`
  abstraction with exact and randomized ``d``-cover-freeness checkers and
  constructions from all of the above.
"""

from repro.combinatorics.gf import GF, is_prime, is_prime_power, prime_power_decomposition
from repro.combinatorics.polynomials import evaluate_poly, enumerate_polynomials
from repro.combinatorics.orthogonal import polynomial_code, is_orthogonal_array
from repro.combinatorics.steiner import (
    steiner_triple_system,
    is_steiner_triple_system,
    projective_plane,
    is_projective_plane,
    affine_plane,
)
from repro.combinatorics.coverfree import CoverFreeFamily
from repro.combinatorics.latin import (
    is_latin_square,
    are_orthogonal,
    mols,
    macneish_bound,
    transversal_design,
)

__all__ = [
    "GF",
    "is_prime",
    "is_prime_power",
    "prime_power_decomposition",
    "evaluate_poly",
    "enumerate_polynomials",
    "polynomial_code",
    "is_orthogonal_array",
    "steiner_triple_system",
    "is_steiner_triple_system",
    "projective_plane",
    "is_projective_plane",
    "affine_plane",
    "CoverFreeFamily",
    "is_latin_square",
    "are_orthogonal",
    "mols",
    "macneish_bound",
    "transversal_design",
]
