"""Orthogonal arrays from polynomial codes, with an exhaustive verifier.

Chlamtac-Farago and Ju-Li build topology-transparent schedules from the
codewords of a Reed-Solomon-style polynomial code; Syrotiuk, Colbourn and
Ling later recast both as cover-free families obtained from an *orthogonal
array*.  This module provides

* :func:`polynomial_code` — the ``q**(t) x q`` array whose rows are the
  value tables of all polynomials of degree < t over ``GF(q)`` (an
  ``OA(q**t, q, q, t)`` of index 1), and
* :func:`is_orthogonal_array` — a brute-force verifier used by the tests.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro._validation import check_int
from repro.combinatorics.gf import GF, field
from repro.combinatorics.polynomials import value_table

__all__ = ["polynomial_code", "is_orthogonal_array"]


def polynomial_code(q: int, k: int, count: int | None = None) -> np.ndarray:
    """Rows = value tables of the first *count* polynomials of degree <= k.

    With ``count == q**(k+1)`` (the default) the result is an orthogonal
    array ``OA(q**(k+1), q, q, k+1)`` of index 1: restricted to any ``k+1``
    columns, every ``(k+1)``-tuple over ``GF(q)`` appears exactly once,
    because a polynomial of degree <= k is determined by its values at any
    ``k+1`` distinct points (Lagrange interpolation).

    Parameters
    ----------
    q:
        A prime power — the field order and number of columns.
    k:
        Maximum polynomial degree; the array has strength ``k+1``.
    count:
        Number of rows to emit (a prefix of the canonical enumeration);
        defaults to all ``q**(k+1)``.
    """
    k = check_int(k, "k", minimum=0)
    f: GF = field(q)
    total = q ** (k + 1)
    if count is None:
        count = total
    count = check_int(count, "count", minimum=1, maximum=total)
    return value_table(f, k, count)


def is_orthogonal_array(array: np.ndarray, strength: int, levels: int | None = None
                        ) -> bool:
    """Exhaustively check that *array* is an OA of the given *strength*.

    An ``N x c`` array with entries in ``[0, s)`` is an orthogonal array of
    strength ``t`` and index ``lam = N / s**t`` when every ``t``-column
    projection contains every ``t``-tuple exactly ``lam`` times.  ``lam``
    must be a positive integer or the check fails immediately.
    """
    strength = check_int(strength, "strength", minimum=1)
    a = np.asarray(array)
    if a.ndim != 2:
        raise ValueError(f"array must be 2-D, got shape {a.shape}")
    n_rows, n_cols = a.shape
    if strength > n_cols:
        raise ValueError(f"strength {strength} exceeds column count {n_cols}")
    s = int(a.max()) + 1 if levels is None else check_int(levels, "levels", minimum=1)
    if a.min() < 0 or a.max() >= s:
        return False
    lam, rem = divmod(n_rows, s**strength)
    if rem != 0 or lam == 0:
        return False
    for cols in combinations(range(n_cols), strength):
        # Encode each row's t-tuple as a single integer, then histogram.
        codes = np.zeros(n_rows, dtype=np.int64)
        for c in cols:
            codes = codes * s + a[:, c]
        counts = np.bincount(codes, minlength=s**strength)
        if not np.all(counts == lam):
            return False
    return True
