"""Polynomial evaluation and enumeration over a finite field.

The polynomial construction of topology-transparent schedules assigns to
every node a distinct polynomial of degree at most ``k`` over ``GF(q)`` and
derives the node's transmission slots from the polynomial's value table.
This module provides the two primitives that construction needs:

* :func:`evaluate_poly` / :func:`evaluate_poly_all` — Horner evaluation of a
  coefficient vector at one point / at every field element;
* :func:`enumerate_polynomials` — a canonical enumeration of all ``q**(k+1)``
  coefficient vectors, indexed so that low indices have low degree (index 0
  is the zero polynomial, indices ``< q`` are the constants, and so on),
  which keeps per-slot transmitter counts balanced when only a prefix of the
  enumeration is used.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro._validation import check_int
from repro.combinatorics.gf import GF

__all__ = [
    "evaluate_poly",
    "evaluate_poly_all",
    "enumerate_polynomials",
    "poly_from_index",
    "value_table",
]


def evaluate_poly(field: GF, coeffs: Sequence[int], x: int) -> int:
    """Evaluate the polynomial with little-endian *coeffs* at *x* (Horner)."""
    x = check_int(x, "x", minimum=0, maximum=field.order - 1)
    acc = 0
    for c in reversed(list(coeffs)):
        acc = field.add(field.mul(acc, x), c)
    return acc


def evaluate_poly_all(field: GF, coeffs: Sequence[int]) -> np.ndarray:
    """Evaluate the polynomial at every field element; shape ``(q,)``.

    Vectorized Horner scheme over the field's lookup tables.
    """
    q = field.order
    xs = np.arange(q, dtype=np.int64)
    acc = np.zeros(q, dtype=np.int64)
    for c in reversed(list(coeffs)):
        acc = field.add_vec(field.mul_vec(acc, xs), np.full(q, int(c), dtype=np.int64))
    return acc


def poly_from_index(field: GF, k: int, index: int) -> tuple[int, ...]:
    """Return the coefficient vector of the *index*-th polynomial of degree <= k.

    The enumeration writes *index* in base ``q``; digit ``i`` is the
    coefficient of ``x**i``.  Hence index 0 is the zero polynomial and the
    first ``q`` indices are the constant polynomials.
    """
    q = field.order
    k = check_int(k, "k", minimum=0)
    index = check_int(index, "index", minimum=0, maximum=q ** (k + 1) - 1)
    coeffs = []
    v = index
    for _ in range(k + 1):
        coeffs.append(v % q)
        v //= q
    return tuple(coeffs)


def enumerate_polynomials(field: GF, k: int, count: int | None = None
                          ) -> Iterator[tuple[int, ...]]:
    """Yield coefficient vectors of polynomials of degree <= k in index order.

    At most *count* polynomials are yielded (all ``q**(k+1)`` when None).
    """
    q = field.order
    k = check_int(k, "k", minimum=0)
    total = q ** (k + 1)
    if count is None:
        count = total
    count = check_int(count, "count", minimum=0, maximum=total)
    for index in range(count):
        yield poly_from_index(field, k, index)


def value_table(field: GF, k: int, count: int) -> np.ndarray:
    """Value table of the first *count* polynomials of degree <= k.

    Returns an int64 array of shape ``(count, q)`` whose row ``r`` holds
    ``f_r(x)`` for every field element ``x``; rows are the canonical
    enumeration order of :func:`enumerate_polynomials`.  Two distinct rows
    agree in at most ``k`` columns (a nonzero polynomial of degree <= k has
    at most ``k`` roots), which is the property the cover-free construction
    relies on.
    """
    q = field.order
    rows = np.empty((count, q), dtype=np.int64)
    for r, coeffs in enumerate(enumerate_polynomials(field, k, count)):
        rows[r] = evaluate_poly_all(field, coeffs)
    return rows
