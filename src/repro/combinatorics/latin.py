"""Mutually orthogonal Latin squares (MOLS) and transversal designs.

The polynomial construction needs a prime-power alphabet.  Transversal
designs lift that restriction: ``k - 2`` MOLS of order ``m`` give a
``TD(k, m)`` — equivalently an orthogonal array ``OA(m**2, k, m, 2)`` of
index 1 — whose blocks pairwise meet in at most one point, hence a
``(k - 1)``-cover-free family of ``m**2`` blocks over ``k * m`` points.
That yields topology-transparent schedules with frame length ``k * m`` for
*any* order ``m``, prime power or not:

* prime powers: the complete set of ``q - 1`` MOLS from ``GF(q)``
  (``L_a(i, j) = a*i + j``);
* composite orders: MacNeish's product — ``N(m1 * m2) >=
  min(N(m1), N(m2))`` via the componentwise Kronecker-style composition.

(The classical caveat applies: no pair of MOLS of order 6 exists, and
MacNeish is only a lower bound — e.g. it gives 1 for order 10 though 2
exist.  The bound is all the schedule construction needs.)
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_int
from repro.combinatorics.gf import field, prime_power_decomposition

__all__ = [
    "is_latin_square",
    "are_orthogonal",
    "cyclic_latin_square",
    "mols_prime_power",
    "mols",
    "macneish_bound",
    "transversal_design",
    "oa_from_mols",
]


def is_latin_square(square: np.ndarray) -> bool:
    """True iff *square* is an ``m x m`` array with each row and column a
    permutation of ``0 .. m-1``."""
    a = np.asarray(square)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        return False
    m = a.shape[0]
    want = np.arange(m)
    for i in range(m):
        if not np.array_equal(np.sort(a[i, :]), want):
            return False
        if not np.array_equal(np.sort(a[:, i]), want):
            return False
    return True


def are_orthogonal(sq1: np.ndarray, sq2: np.ndarray) -> bool:
    """True iff superimposing the squares yields every ordered pair once."""
    a, b = np.asarray(sq1), np.asarray(sq2)
    if a.shape != b.shape or a.ndim != 2:
        return False
    m = a.shape[0]
    codes = (a.astype(np.int64) * m + b.astype(np.int64)).ravel()
    return len(np.unique(codes)) == m * m


def cyclic_latin_square(m: int) -> np.ndarray:
    """The Cayley table of ``Z_m``: ``L[i, j] = (i + j) mod m``."""
    m = check_int(m, "m", minimum=1)
    i = np.arange(m)
    return (i[:, None] + i[None, :]) % m


def mols_prime_power(q: int, count: int | None = None) -> list[np.ndarray]:
    """The complete set of ``q - 1`` MOLS of prime-power order *q*.

    ``L_a(i, j) = a*i + j`` over ``GF(q)`` for each nonzero ``a``; any two
    are orthogonal because ``(a - a')i`` is a bijection in ``i``.
    """
    f = field(q)
    idx = np.arange(q, dtype=np.int64)
    out = []
    limit = q - 1 if count is None else check_int(count, "count", minimum=0,
                                                  maximum=q - 1)
    for a in range(1, limit + 1):
        rows = f.add_vec(f.mul_vec(np.full(q, a, dtype=np.int64), idx)[:, None],
                         idx[None, :])
        out.append(rows)
    return out


def _product_square(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Componentwise product of Latin squares: order ``m1 * m2``.

    Cell ``((i1, i2), (j1, j2)) -> (a[i1, j1], b[i2, j2])`` with row/column/
    symbol indices flattened as ``x1 * m2 + x2``.
    """
    m1, m2 = a.shape[0], b.shape[0]
    big = np.empty((m1 * m2, m1 * m2), dtype=np.int64)
    for i1 in range(m1):
        for i2 in range(m2):
            row = (a[i1][:, None] * m2 + b[i2][None, :]).reshape(-1)
            big[i1 * m2 + i2] = row
    return big


def macneish_bound(m: int) -> int:
    """MacNeish's lower bound on the number of MOLS of order *m*.

    ``min over prime-power factors p**e of (p**e - 1)``; 0 for ``m = 1``.
    """
    m = check_int(m, "m", minimum=1)
    if m == 1:
        return 0
    best = None
    rest = m
    p = 2
    while p * p <= rest:
        if rest % p == 0:
            e = 0
            while rest % p == 0:
                rest //= p
                e += 1
            value = p**e - 1
            best = value if best is None else min(best, value)
        p += 1
    if rest > 1:
        best = rest - 1 if best is None else min(best, rest - 1)
    assert best is not None
    return best


def mols(m: int, count: int | None = None) -> list[np.ndarray]:
    """*count* MOLS of order *m* (default: the MacNeish bound's worth).

    Prime powers get the complete set; composite orders use the MacNeish
    product over the prime-power factorization.  Raises ValueError when
    more squares are requested than the construction provides.
    """
    m = check_int(m, "m", minimum=2)
    available = macneish_bound(m)
    if count is None:
        count = available
    count = check_int(count, "count", minimum=0)
    if count > available:
        raise ValueError(
            f"MacNeish construction provides only {available} MOLS of order "
            f"{m}; {count} requested"
        )
    if count == 0:
        return []
    if prime_power_decomposition(m) is not None:
        return mols_prime_power(m, count)
    # Factor into prime powers and compose pairwise.
    factors = []
    rest = m
    p = 2
    while p * p <= rest:
        if rest % p == 0:
            pe = 1
            while rest % p == 0:
                rest //= p
                pe *= p
            factors.append(pe)
        p += 1
    if rest > 1:
        factors.append(rest)
    per_factor = [mols_prime_power(pe, count) for pe in factors]
    combined = per_factor[0]
    for nxt in per_factor[1:]:
        combined = [_product_square(a, b) for a, b in zip(combined, nxt)]
    return combined


def oa_from_mols(m: int, k: int) -> np.ndarray:
    """An ``OA(m**2, k, m, 2)`` of index 1 from ``k - 2`` MOLS of order *m*.

    Columns: row index, column index, and one per Latin square.  Any two
    rows of the result agree in at most one column — the transversal-design
    property the cover-free construction uses.
    """
    m = check_int(m, "m", minimum=2)
    k = check_int(k, "k", minimum=2)
    squares = mols(m, k - 2)
    rows = np.empty((m * m, k), dtype=np.int64)
    r = 0
    for i in range(m):
        for j in range(m):
            rows[r, 0] = i
            rows[r, 1] = j
            for c, sq in enumerate(squares):
                rows[r, 2 + c] = sq[i, j]
            r += 1
    return rows


def transversal_design(k: int, m: int) -> tuple[int, list[frozenset[int]]]:
    """The transversal design ``TD(k, m)``: ``(points, blocks)``.

    ``k * m`` points in ``k`` groups (point ``(g, s)`` is index
    ``g * m + s``); ``m**2`` blocks of size ``k``, one per OA row, meeting
    each group once and pairwise intersecting in at most one point.
    """
    rows = oa_from_mols(m, k)
    blocks = [
        frozenset(int(g) * m + int(v) for g, v in enumerate(row))
        for row in rows
    ]
    return k * m, blocks
