"""Steiner triple systems and finite planes.

Colbourn, Ling and Syrotiuk ("Cover-free families and topology-transparent
scheduling for MANETs") obtain cover-free families — hence topology-
transparent schedules — from Steiner systems: the blocks of an
``S(2, k, v)`` pairwise intersect in at most one point, so a family that
assigns distinct blocks to nodes is ``(k-1)``-cover-free over the ``v``
points.  This module constructs the designs from scratch:

* :func:`steiner_triple_system` — an ``STS(v)`` for every admissible
  ``v === 1, 3 (mod 6)``:

  - ``v === 3 (mod 6)``: the Bose construction over an idempotent
    commutative quasigroup on ``Z_{2t+1}``;
  - ``v === 1 (mod 6)``: a cyclic system from a *difference-triple*
    partition of ``{1..3t}`` found by backtracking (existence for every
    admissible order is Peltesohn's theorem; the search is exact and its
    output is verified).

* :func:`projective_plane` — ``PG(2, q)``: ``q**2+q+1`` points and lines,
  lines of size ``q+1`` meeting pairwise in exactly one point.
* :func:`affine_plane` — ``AG(2, q)``: ``q**2`` points, ``q**2+q`` lines of
  size ``q``, pairwise meeting in at most one point.
"""

from __future__ import annotations

from itertools import combinations

from repro._validation import check_int
from repro.combinatorics.gf import GF, field, is_prime_power

__all__ = [
    "steiner_triple_system",
    "is_steiner_triple_system",
    "difference_triples",
    "projective_plane",
    "affine_plane",
    "is_projective_plane",
]


def _bose_sts(v: int) -> list[frozenset[int]]:
    """Bose construction of STS(v) for v = 6t + 3.

    Points are ``Z_m x {0, 1, 2}`` with ``m = 2t + 1`` odd, flattened as
    ``point = i * 3 + layer``.  Uses the idempotent commutative quasigroup
    ``i o j = (i + j) * inv2  (mod m)`` where ``inv2 = (m + 1) // 2``.
    """
    m = v // 3
    inv2 = (m + 1) // 2
    blocks: list[frozenset[int]] = []
    for i in range(m):
        blocks.append(frozenset(i * 3 + layer for layer in range(3)))
    for i in range(m):
        for j in range(i + 1, m):
            h = ((i + j) * inv2) % m
            for layer in range(3):
                blocks.append(
                    frozenset(
                        (i * 3 + layer, j * 3 + layer, h * 3 + (layer + 1) % 3)
                    )
                )
    return blocks


def difference_triples(t: int, v: int) -> list[tuple[int, int, int]] | None:
    """Partition ``{1..3t}`` into t triples with ``a+b == c`` or ``a+b+c == v``.

    Each triple ``(a, b, c)`` is a *difference triple* for the cyclic group
    ``Z_v``: the base block ``{0, a, a+b}`` generates, under translation,
    every pair whose cyclic difference lies in ``{a, b, c}`` exactly once.
    A full partition therefore yields a cyclic ``STS(v)`` for ``v = 6t+1``.

    Returns None if no partition exists (never happens for admissible
    inputs, by Peltesohn's theorem, but the search is honest about failure).
    The branch-and-bound is exact but exponential; it is fast through
    ``t = 17`` (``v = 103``) and raises ``ValueError`` when its node budget
    is exhausted rather than hanging — larger Steiner orders should use
    ``v == 3 (mod 6)``, where the Bose construction is direct.
    """
    t = check_int(t, "t", minimum=1)
    top = 3 * t
    unused = [True] * (top + 1)  # index 0 unused sentinel

    out: list[tuple[int, int, int]] = []
    budget = [5_000_000]  # search-node cap; exceeded => give up honestly

    def largest_unused() -> int:
        for d in range(top, 0, -1):
            if unused[d]:
                return d
        return 0

    # Branch on the LARGEST unconsumed value: it is the most constrained
    # (few decompositions), which is what makes Skolem-style partition
    # searches tractable (the smallest-first direction stalls by t ~ 16).
    def search() -> bool:
        if budget[0] <= 0:
            raise _SearchBudgetExceeded()
        budget[0] -= 1
        z = largest_unused()
        if z == 0:
            return True
        unused[z] = False
        # Case 1: z = a + b is the sum of a triple.
        for a in range(1, (z + 1) // 2):
            b = z - a
            if a != b and unused[a] and unused[b]:
                unused[a] = unused[b] = False
                out.append((a, b, z))
                if search():
                    return True
                out.pop()
                unused[a] = unused[b] = True
        # Case 2: z sits in a wrap triple a + b + z = v (a < b < z, since
        # a + b = v - z > 3t >= z guarantees neither equals z).
        rest = v - z
        for a in range(max(1, rest - z + 1), (rest + 1) // 2):
            b = rest - a
            if a != b and b < z and b <= top and unused[a] and unused[b]:
                unused[a] = unused[b] = False
                out.append((a, b, z))
                if search():
                    return True
                out.pop()
                unused[a] = unused[b] = True
        unused[z] = True
        return False

    try:
        if search():
            return list(out)
    except _SearchBudgetExceeded:
        raise ValueError(
            f"difference-triple search for t={t} (v={v}) exceeded its node "
            "budget; beyond v ~ 103 use an order v == 3 (mod 6) (the Bose "
            "construction is direct at every scale) or another schedule "
            "family"
        ) from None
    return None


class _SearchBudgetExceeded(Exception):
    """Internal: the difference-triple search hit its node cap."""


def _cyclic_sts(v: int) -> list[frozenset[int]]:
    """Cyclic STS(v) for v = 6t + 1 from a difference-triple partition."""
    t = v // 6
    triples = difference_triples(t, v)
    if triples is None:  # pragma: no cover - impossible for admissible v
        raise AssertionError(
            f"difference-triple search failed for v={v}; "
            "Peltesohn's theorem says it must succeed - this is a bug"
        )
    blocks: list[frozenset[int]] = []
    for a, b, _c in triples:
        for shift in range(v):
            blocks.append(
                frozenset(((0 + shift) % v, (a + shift) % v, (a + b + shift) % v))
            )
    return blocks


def steiner_triple_system(v: int) -> list[frozenset[int]]:
    """Construct a Steiner triple system on the point set ``0 .. v-1``.

    An ``STS(v)`` exists iff ``v === 1 or 3 (mod 6)``; other orders raise
    ValueError.  The returned list has ``v(v-1)/6`` blocks of size 3 and
    every pair of points occurs in exactly one block.
    """
    v = check_int(v, "v", minimum=3)
    if v % 6 == 3:
        blocks = _bose_sts(v)
    elif v % 6 == 1:
        blocks = _cyclic_sts(v)
    else:
        raise ValueError(f"an STS(v) exists only for v == 1,3 (mod 6); got v={v}")
    expected = v * (v - 1) // 6
    if len(blocks) != expected:  # pragma: no cover - construction invariant
        raise AssertionError(
            f"STS({v}) produced {len(blocks)} blocks, expected {expected}"
        )
    return blocks


def is_steiner_triple_system(v: int, blocks: list[frozenset[int]]) -> bool:
    """Exhaustively verify that *blocks* is an STS on ``0 .. v-1``."""
    v = check_int(v, "v", minimum=3)
    seen: set[tuple[int, int]] = set()
    for block in blocks:
        if len(block) != 3 or not all(0 <= p < v for p in block):
            return False
        for pair in combinations(sorted(block), 2):
            if pair in seen:
                return False
            seen.add(pair)
    return len(seen) == v * (v - 1) // 2


def _normalize(f: GF, vec: tuple[int, int, int]) -> tuple[int, int, int] | None:
    """Scale *vec* so its first nonzero coordinate is 1; None for the zero vector."""
    for i, coord in enumerate(vec):
        if coord != 0:
            inv = f.inv(coord)
            return tuple(f.mul(inv, c) for c in vec)[:3]  # type: ignore[return-value]
    return None


def projective_plane(q: int) -> tuple[int, list[frozenset[int]]]:
    """The projective plane ``PG(2, q)`` for a prime power *q*.

    Returns ``(v, lines)`` where ``v = q**2 + q + 1`` is the number of
    points (indexed ``0 .. v-1``) and *lines* is the list of ``v`` lines,
    each a frozenset of ``q + 1`` point indices.  Any two distinct lines
    meet in exactly one point, which makes the lines a ``q``-cover-free
    family over the points.
    """
    if not is_prime_power(q):
        raise ValueError(f"q must be a prime power, got {q}")
    f = field(q)
    # Points: normalized representatives of 1-dim subspaces of GF(q)^3.
    points: list[tuple[int, int, int]] = []
    index: dict[tuple[int, int, int], int] = {}
    for x in range(q):
        for y in range(q):
            for z in range(q):
                rep = _normalize(f, (x, y, z))
                if rep is not None and rep not in index:
                    index[rep] = len(points)
                    points.append(rep)
    v = q * q + q + 1
    if len(points) != v:  # pragma: no cover - field-arithmetic invariant
        raise AssertionError(f"PG(2,{q}) has {len(points)} points, expected {v}")
    # Lines are also indexed by normalized coefficient vectors [a:b:c];
    # point (x,y,z) lies on line (a,b,c) iff ax + by + cz == 0.
    lines: list[frozenset[int]] = []
    for a, b, c in points:
        members = frozenset(
            index[p]
            for p in points
            if f.add(f.add(f.mul(a, p[0]), f.mul(b, p[1])), f.mul(c, p[2])) == 0
        )
        if len(members) != q + 1:  # pragma: no cover - invariant
            raise AssertionError(
                f"line {(a, b, c)} of PG(2,{q}) has {len(members)} points"
            )
        lines.append(members)
    return v, lines


def affine_plane(q: int) -> tuple[int, list[frozenset[int]]]:
    """The affine plane ``AG(2, q)`` for a prime power *q*.

    Returns ``(v, lines)`` with ``v = q**2`` points (point ``(x, y)`` is
    index ``x * q + y``) and ``q**2 + q`` lines of size ``q``: the graphs
    ``y = m*x + b`` for all slopes/intercepts plus the vertical lines
    ``x = c``.  Two distinct lines meet in at most one point.
    """
    if not is_prime_power(q):
        raise ValueError(f"q must be a prime power, got {q}")
    f = field(q)
    lines: list[frozenset[int]] = []
    for m in range(q):
        for b in range(q):
            lines.append(
                frozenset(x * q + f.add(f.mul(m, x), b) for x in range(q))
            )
    for c in range(q):
        lines.append(frozenset(c * q + y for y in range(q)))
    return q * q, lines


def is_projective_plane(v: int, lines: list[frozenset[int]]) -> bool:
    """Verify the projective-plane axioms for *lines* over points ``0..v-1``.

    Checks: correct counts for some order ``q``, uniform line size ``q+1``,
    every pair of points on exactly one common line (which implies any two
    lines meet in exactly one point, by double counting).
    """
    v = check_int(v, "v", minimum=7)
    if not lines:
        return False
    size = len(next(iter(lines)))
    q = size - 1
    if q < 2 or v != q * q + q + 1 or len(lines) != v:
        return False
    seen: set[tuple[int, int]] = set()
    for line in lines:
        if len(line) != size or not all(0 <= p < v for p in line):
            return False
        for pair in combinations(sorted(line), 2):
            if pair in seen:
                return False
            seen.add(pair)
    return len(seen) == v * (v - 1) // 2
