"""Cover-free families: the combinatorial core behind topology transparency.

A family of blocks ``B_0, ..., B_{n-1}`` over a ground set ``[L]`` is
*d-cover-free* when no block is contained in the union of any ``d`` others.
Requirement 1 of the paper says a non-sleeping schedule ``<T>`` is
topology-transparent for ``N_n^D`` exactly when the transmission-slot sets
``tran(x)`` form a ``D``-cover-free family over the frame's slots.

This module provides:

* :class:`CoverFreeFamily` — blocks stored as Python-int bitmasks (the
  frame is short, so single machine-word set algebra beats NumPy here);
* an **exact** ``d``-cover-freeness decision procedure based on a
  branch-and-bound set-cover search (with dominated-candidate elimination
  and fewest-candidates-first branching);
* a **randomized refuter** for instances too large for the exact search;
* constructions from polynomial codes (orthogonal arrays), Steiner triple
  systems, projective/affine planes, and the trivial identity family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._validation import check_int
from repro.combinatorics.gf import field, prime_powers
from repro.combinatorics.orthogonal import polynomial_code
from repro.combinatorics.steiner import affine_plane, projective_plane, steiner_triple_system

__all__ = ["CoverFreeFamily", "mask_from_set", "set_from_mask", "can_cover", "max_coverage"]


def mask_from_set(elements: Iterable[int]) -> int:
    """Pack an iterable of non-negative ints into a bitmask."""
    mask = 0
    for e in elements:
        mask |= 1 << e
    return mask


def set_from_mask(mask: int) -> frozenset[int]:
    """Unpack a bitmask into a frozenset of bit positions."""
    out = set()
    bit = 0
    while mask:
        if mask & 1:
            out.add(bit)
        mask >>= 1
        bit += 1
    return frozenset(out)


def _prune_dominated(candidates: list[int]) -> list[int]:
    """Drop candidates that are subsets of another candidate.

    For the *existence* question "can r candidates cover the target" it is
    always at least as good to use a superset, so dominated candidates can
    be discarded.  Quadratic, but candidate lists are small.
    """
    # Sorting by popcount descending lets us only test against bigger sets.
    cands = sorted(set(candidates), key=lambda m: -m.bit_count())
    kept: list[int] = []
    for c in cands:
        if not any(c & ~k == 0 for k in kept):
            kept.append(c)
    return kept


def can_cover(target: int, candidates: Sequence[int], r: int) -> bool:
    """Exact decision: can the union of at most *r* candidates cover *target*?

    Branch and bound over the uncovered element with the fewest covering
    candidates; this is the standard exact set-cover search and is fast for
    the shallow depths (``r = D`` or ``D - 1``) that topology-transparency
    checking needs.
    """
    target = check_int(target, "target", minimum=0)
    r = check_int(r, "r", minimum=0)
    if target == 0:
        return True
    if r == 0:
        return False
    useful = _prune_dominated([c & target for c in candidates if c & target])

    def rec(remaining: int, depth: int, cands: list[int]) -> bool:
        if remaining == 0:
            return True
        if depth == 0:
            return False
        cands = [c for c in cands if c & remaining]
        if not cands:
            return False
        # Bound: even the 'depth' largest candidates cannot cover remaining.
        sizes = sorted((c & remaining).bit_count() for c in cands)
        if sum(sizes[-depth:]) < remaining.bit_count():
            return False
        # Branch on the uncovered bit with fewest covering candidates.
        best_bit = -1
        best_owners: list[int] = []
        probe = remaining
        while probe:
            bit = probe & -probe
            owners = [c for c in cands if c & bit]
            if not owners:
                return False
            if best_bit == -1 or len(owners) < len(best_owners):
                best_bit, best_owners = bit, owners
                if len(owners) == 1:
                    break
            probe &= probe - 1
        for c in best_owners:
            if rec(remaining & ~c, depth - 1, cands):
                return True
        return False

    return rec(target, r, useful)


def max_coverage(target: int, candidates: Sequence[int], r: int,
                 *, exact: bool = True) -> int:
    """Maximum number of *target* bits coverable by a union of *r* candidates.

    With ``exact=True`` a branch-and-bound search returns the true optimum
    (used by the exact minimum-throughput computation, where the adversary
    chooses the worst neighbourhood).  With ``exact=False`` a greedy sweep
    returns a lower bound on the optimum.
    """
    target = check_int(target, "target", minimum=0)
    r = check_int(r, "r", minimum=0)
    cands = _prune_dominated([c & target for c in candidates if c & target])
    if r == 0 or not cands:
        return 0
    if not exact:
        covered = 0
        for _ in range(r):
            best = max(cands, key=lambda c: (c & ~covered).bit_count(), default=0)
            gain = (best & ~covered).bit_count()
            if gain == 0:
                break
            covered |= best
        return (covered & target).bit_count()

    cands.sort(key=lambda m: -m.bit_count())
    best_seen = 0
    total = target.bit_count()

    def rec(covered: int, depth: int, start: int) -> None:
        nonlocal best_seen
        count = covered.bit_count()
        if count > best_seen:
            best_seen = count
        if depth == 0 or best_seen == total:
            return
        for idx in range(start, len(cands)):
            c = cands[idx]
            gain = (c & ~covered).bit_count()
            if gain == 0:
                continue
            # Bound: remaining picks cannot beat best_seen.
            if count + depth * cands[idx].bit_count() <= best_seen:
                break  # sorted by size, no later candidate can help more
            rec(covered | c, depth - 1, idx + 1)

    rec(0, r, 0)
    return best_seen


@dataclass(frozen=True)
class CoverFreeFamily:
    """An indexed family of blocks over the ground set ``0 .. ground-1``.

    ``blocks[i]`` is a bitmask over ground elements.  Instances are
    immutable; constructions are provided as classmethods.
    """

    ground: int
    blocks: tuple[int, ...]

    def __post_init__(self) -> None:
        check_int(self.ground, "ground", minimum=1)
        limit = 1 << self.ground
        for i, b in enumerate(self.blocks):
            if not isinstance(b, int) or b < 0 or b >= limit:
                raise ValueError(
                    f"block {i} is not a bitmask over [0, {self.ground})"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_sets(cls, ground: int, sets: Iterable[Iterable[int]]) -> "CoverFreeFamily":
        """Build a family from explicit element sets."""
        ground = check_int(ground, "ground", minimum=1)
        blocks = []
        for s in sets:
            elems = sorted(set(s))
            if elems and (elems[0] < 0 or elems[-1] >= ground):
                raise ValueError(f"set {elems} not within ground [0, {ground})")
            blocks.append(mask_from_set(elems))
        return cls(ground, tuple(blocks))

    @classmethod
    def trivial(cls, n: int) -> "CoverFreeFamily":
        """The identity family: block ``i`` is ``{i}``; d-cover-free for all d.

        Corresponds to classical one-slot-per-node TDMA.
        """
        n = check_int(n, "n", minimum=1)
        return cls(n, tuple(1 << i for i in range(n)))

    @classmethod
    def from_polynomial_code(cls, q: int, k: int, count: int | None = None
                             ) -> "CoverFreeFamily":
        """Family from the polynomial code over ``GF(q)`` with degree <= k.

        Block ``r`` contains ground element ``x * q + f_r(x)`` for every
        field element ``x``; the ground set has ``q**2`` elements (slot
        ``(subframe, position)`` pairs).  Distinct degree-<=k polynomials
        agree in at most ``k`` points, so each pairwise intersection has at
        most ``k`` elements and the family is ``d``-cover-free whenever
        ``d * k < q`` (blocks have exactly ``q`` elements).
        """
        rows = polynomial_code(q, k, count)
        ground = q * q
        blocks = []
        for row in rows:
            blocks.append(mask_from_set(int(x) * q + int(v) for x, v in enumerate(row)))
        return cls(ground, tuple(blocks))

    @classmethod
    def from_steiner_triple_system(cls, v: int, count: int | None = None
                                   ) -> "CoverFreeFamily":
        """Family whose blocks are (a prefix of) the triples of an STS(v).

        Triples pairwise intersect in at most one point, so the family is
        2-cover-free (d*1 < 3 for d <= 2).
        """
        blocks = steiner_triple_system(v)
        if count is not None:
            count = check_int(count, "count", minimum=1, maximum=len(blocks))
            blocks = blocks[:count]
        return cls.from_sets(v, blocks)

    @classmethod
    def from_projective_plane(cls, q: int, count: int | None = None
                              ) -> "CoverFreeFamily":
        """Family whose blocks are (a prefix of) the lines of PG(2, q).

        Lines have ``q+1`` points and pairwise meet in exactly one point, so
        the family is ``q``-cover-free.
        """
        v, lines = projective_plane(q)
        if count is not None:
            count = check_int(count, "count", minimum=1, maximum=len(lines))
            lines = lines[:count]
        return cls.from_sets(v, lines)

    @classmethod
    def from_transversal_design(cls, k: int, m: int, count: int | None = None
                                ) -> "CoverFreeFamily":
        """Family from (a prefix of) the blocks of a ``TD(k, m)``.

        Blocks have ``k`` points and pairwise meet in at most one, so the
        family is ``(k - 1)``-cover-free over ``k * m`` points — for *any*
        order ``m`` the MOLS construction supports (prime powers give the
        full ``k <= m + 1``; composites are bounded by MacNeish).
        """
        from repro.combinatorics.latin import transversal_design

        points, blocks = transversal_design(k, m)
        if count is not None:
            count = check_int(count, "count", minimum=1, maximum=len(blocks))
            blocks = blocks[:count]
        return cls.from_sets(points, blocks)

    @classmethod
    def from_affine_plane(cls, q: int, count: int | None = None
                          ) -> "CoverFreeFamily":
        """Family whose blocks are (a prefix of) the lines of AG(2, q).

        Lines have ``q`` points and pairwise meet in at most one point, so
        the family is ``(q-1)``-cover-free.
        """
        v, lines = affine_plane(q)
        if count is not None:
            count = check_int(count, "count", minimum=1, maximum=len(lines))
            lines = lines[:count]
        return cls.from_sets(v, lines)

    # -- properties ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of blocks in the family."""
        return len(self.blocks)

    def block_sets(self) -> list[frozenset[int]]:
        """The blocks as frozensets (convenience accessor for display/tests)."""
        return [set_from_mask(b) for b in self.blocks]

    def block_sizes(self) -> np.ndarray:
        """Array of block cardinalities."""
        return np.array([b.bit_count() for b in self.blocks], dtype=np.int64)

    def min_pairwise_margin(self) -> int:
        """``min_block_size - max_pairwise_intersection`` over the family.

        A positive margin ``g`` certifies ``d``-cover-freeness for every
        ``d < min_size / max_intersection`` style bounds; exposed mainly for
        diagnostics on constructed families.
        """
        sizes = self.block_sizes()
        max_inter = 0
        for i in range(self.size):
            for j in range(i + 1, self.size):
                inter = (self.blocks[i] & self.blocks[j]).bit_count()
                if inter > max_inter:
                    max_inter = inter
        return int(sizes.min()) - max_inter

    # -- cover-freeness ------------------------------------------------------
    def is_d_cover_free(self, d: int, *, exact: bool = True,
                        samples: int = 2000, rng: np.random.Generator | None = None
                        ) -> bool:
        """Decide (exact) or test (randomized) whether the family is d-cover-free.

        exact=True runs the branch-and-bound set-cover search for every
        block — a decision procedure.  exact=False samples *samples* random
        ``(block, d-subset)`` pairs and can only refute; ``True`` then means
        "no violation found".
        """
        d = check_int(d, "d", minimum=1)
        if self.size <= d:
            # No d distinct other blocks exist; vacuously cover-free unless
            # some block is covered by ALL others.
            d = self.size - 1
            if d <= 0:
                return all(b != 0 for b in self.blocks)
        if exact:
            for i, b in enumerate(self.blocks):
                if b == 0:
                    return False
                others = [c for j, c in enumerate(self.blocks) if j != i]
                if can_cover(b, others, d):
                    return False
            return True
        rng = rng if rng is not None else np.random.default_rng()
        n = self.size
        for _ in range(samples):
            i = int(rng.integers(n))
            if self.blocks[i] == 0:
                return False
            choices = rng.choice(n - 1, size=d, replace=False)
            union = 0
            for c in choices:
                j = int(c) + (1 if int(c) >= i else 0)
                union |= self.blocks[j]
            if self.blocks[i] & ~union == 0:
                return False
        return True

    def cover_free_strength(self, max_d: int | None = None) -> int:
        """Largest d for which the family is d-cover-free (exact; 0 if none).

        Cover-freeness is antitone in d, so a linear scan upward suffices.
        """
        limit = max_d if max_d is not None else self.size - 1
        strength = 0
        for d in range(1, max(limit, 0) + 1):
            if self.is_d_cover_free(d):
                strength = d
            else:
                break
        return strength

    def find_violation(self, d: int) -> tuple[int, tuple[int, ...]] | None:
        """Return ``(i, cover_indices)`` witnessing a d-cover violation, or None.

        Exhaustive over the covering subsets found by a DFS mirroring
        :func:`can_cover`; used to produce counterexamples in diagnostics.
        """
        d = check_int(d, "d", minimum=1)
        from itertools import combinations

        for i, b in enumerate(self.blocks):
            if b == 0:
                return (i, ())
            others = [(j, c) for j, c in enumerate(self.blocks) if j != i]
            # Restrict to candidates intersecting b to keep the search small.
            useful = [(j, c & b) for j, c in others if c & b]
            for combo in combinations(useful, min(d, len(useful))):
                union = 0
                for _, c in combo:
                    union |= c
                if b & ~union == 0:
                    return (i, tuple(j for j, _ in combo))
        return None


def smallest_polynomial_parameters(n: int, d: int) -> tuple[int, int]:
    """Smallest-frame ``(q, k)`` for a d-cover-free polynomial family of size n.

    Searches degrees ``k`` and prime powers ``q`` subject to the
    sufficiency conditions ``q >= k*d + 1`` (cover-freeness) and
    ``q**(k+1) >= n`` (enough codewords), minimizing the frame length
    ``q**2``.  Since the frame length is increasing in q, for each k the
    smallest admissible q is optimal, and larger k only helps while it
    lowers that q; the scan stops once k exceeds ``log_2 n``.
    """
    n = check_int(n, "n", minimum=1)
    d = check_int(d, "d", minimum=1)
    best: tuple[int, int] | None = None
    best_frame = None
    k = 1
    while True:
        # q must satisfy both constraints.
        q_min = max(k * d + 1, _ceil_root(n, k + 1), 2)
        q = next(prime_powers(q_min))
        frame = q * q
        if best_frame is None or frame < best_frame:
            best, best_frame = (q, k), frame
        if (1 << (k + 1)) >= n and k * d + 1 >= _ceil_root(n, k + 1):
            # Larger k can no longer reduce q below k*d+1, which only grows.
            break
        k += 1
    assert best is not None
    return best


def _ceil_root(n: int, r: int) -> int:
    """Smallest integer x with x**r >= n."""
    if n <= 1:
        return 1
    x = max(1, round(n ** (1.0 / r)))
    while x**r >= n:
        x -= 1
    while x**r < n:
        x += 1
    return x
