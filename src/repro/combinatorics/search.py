"""Exact extremal search for small cover-free families.

How good are the classical constructions?  For tiny parameters the
question can be *settled* rather than estimated: this module computes, by
exhaustive branch-and-bound over block choices, the maximum number of
blocks ``f(L, d)`` a ``d``-cover-free family over ``L`` ground elements
can have (optionally with a fixed block size ``w``).

Two classical sanity anchors the tests pin down:

* ``d = 1`` is Sperner's theorem: ``f(L, 1) = C(L, floor(L/2))``;
* the Fano plane's 7 lines are a maximum 2-cover-free family of 3-sets
  over 7 points.

The search is exponential — it is a verification instrument for the
benchmark ``bench_substrate_scale.py`` and the tests, not a construction
path.  Symmetry is broken by enumerating candidate blocks in a fixed
order and only appending blocks later in that order.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from repro._validation import check_int
from repro.combinatorics.coverfree import CoverFreeFamily, can_cover

__all__ = ["max_cover_free_family", "max_cover_free_size", "sperner_capacity"]


def sperner_capacity(ground: int) -> int:
    """Sperner's theorem: the maximum size of a 1-cover-free family on
    *ground* points is ``C(ground, ground // 2)`` (the middle layer)."""
    ground = check_int(ground, "ground", minimum=1)
    return comb(ground, ground // 2)


def _candidate_blocks(ground: int, block_size: int | None) -> list[int]:
    """All candidate blocks in a fixed enumeration order.

    With a fixed *block_size* only that layer is enumerated.  Without one,
    an optimal antichain can be assumed... cannot in general — supersets of
    chosen blocks remain legal as long as no block is covered — so every
    nonempty subset is a candidate.
    """
    masks = []
    sizes = [block_size] if block_size is not None else range(1, ground + 1)
    for w in sizes:
        for combo in combinations(range(ground), w):
            m = 0
            for e in combo:
                m |= 1 << e
            masks.append(m)
    return masks


def _still_cover_free(blocks: list[int], new: int, d: int) -> bool:
    """Incremental check: does appending *new* keep the family d-cover-free?

    Only violations involving *new* can appear: either *new* is covered by
    d existing blocks, or *new* completes a cover of an existing block.
    """
    others = blocks
    if can_cover(new, others, d):
        return False
    for i, b in enumerate(blocks):
        rest = [c for j, c in enumerate(blocks) if j != i]
        # new must participate, so cover b with new plus d-1 others.
        residue = b & ~new
        if can_cover(residue, rest, d - 1):
            return False
    return True


def max_cover_free_family(ground: int, d: int, *,
                          block_size: int | None = None,
                          limit: int | None = None) -> CoverFreeFamily:
    """An exact maximum d-cover-free family over ``0 .. ground-1``.

    Branch and bound over the fixed candidate order; *limit* (if given)
    stops the search as soon as a family of that size is found, turning
    the call into a feasibility check.  Exponential — keep ``ground``
    below ~8 for unrestricted block sizes.
    """
    ground = check_int(ground, "ground", minimum=1)
    d = check_int(d, "d", minimum=1)
    if block_size is not None:
        block_size = check_int(block_size, "block_size", minimum=1,
                               maximum=ground)
    candidates = _candidate_blocks(ground, block_size)
    best: list[int] = []

    def rec(start: int, chosen: list[int]) -> bool:
        nonlocal best
        if len(chosen) > len(best):
            best = list(chosen)
            if limit is not None and len(best) >= limit:
                return True
        # Bound: even taking every remaining candidate cannot beat best.
        if len(chosen) + (len(candidates) - start) <= len(best):
            return False
        for idx in range(start, len(candidates)):
            cand = candidates[idx]
            if _still_cover_free(chosen, cand, d):
                chosen.append(cand)
                if rec(idx + 1, chosen):
                    return True
                chosen.pop()
        return False

    rec(0, [])
    return CoverFreeFamily(ground, tuple(best))


def max_cover_free_size(ground: int, d: int, *,
                        block_size: int | None = None) -> int:
    """Size of the exact maximum family (see :func:`max_cover_free_family`)."""
    return max_cover_free_family(ground, d, block_size=block_size).size
