"""Finite-field arithmetic for ``GF(p)`` and ``GF(p^m)``.

The polynomial (orthogonal-array) construction of topology-transparent
schedules evaluates polynomials over a finite field of prime-power order
``q``.  This module implements such fields from scratch:

* prime fields ``GF(p)`` with plain modular arithmetic;
* extension fields ``GF(p^m)`` with elements encoded as integers in
  ``[0, q)`` whose base-``p`` digits are the coefficients of a polynomial
  over ``GF(p)``, reduced modulo an irreducible polynomial found by search.

Because the fields used by the schedule constructions are small (``q`` is at
most a few hundred), full addition and multiplication tables are
precomputed as NumPy arrays; element-wise operations and vectorized
evaluation are O(1) table lookups.
"""

from __future__ import annotations

import functools
from typing import Iterator

import numpy as np

from repro._validation import check_int

__all__ = [
    "GF",
    "is_prime",
    "is_prime_power",
    "prime_power_decomposition",
    "primes",
    "prime_powers",
    "next_prime_power",
]


def is_prime(n: int) -> bool:
    """Return True iff *n* is a prime number (deterministic trial division)."""
    n = check_int(n, "n")
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def prime_power_decomposition(q: int) -> tuple[int, int] | None:
    """Decompose ``q = p**m`` with ``p`` prime; return ``(p, m)`` or None.

    ``None`` is returned when *q* is not a prime power (including q < 2).
    """
    q = check_int(q, "q")
    if q < 2:
        return None
    # The base prime must divide q; find the smallest prime factor.
    p = None
    if q % 2 == 0:
        p = 2
    else:
        f = 3
        while f * f <= q:
            if q % f == 0:
                p = f
                break
            f += 2
        if p is None:
            return (q, 1)  # q itself is prime
    m = 0
    r = q
    while r % p == 0:
        r //= p
        m += 1
    if r != 1:
        return None
    return (p, m)


def is_prime_power(q: int) -> bool:
    """Return True iff *q* is a positive prime power ``p**m`` with m >= 1."""
    return prime_power_decomposition(q) is not None


def primes() -> Iterator[int]:
    """Yield the primes 2, 3, 5, ... indefinitely."""
    n = 2
    while True:
        if is_prime(n):
            yield n
        n += 1


def prime_powers(start: int = 2) -> Iterator[int]:
    """Yield prime powers >= *start* in increasing order, indefinitely."""
    q = max(2, check_int(start, "start"))
    while True:
        if is_prime_power(q):
            yield q
        q += 1


def next_prime_power(q: int) -> int:
    """Return the smallest prime power >= *q*."""
    return next(prime_powers(q))


def _poly_mul_mod(a: list[int], b: list[int], modulus: list[int], p: int) -> list[int]:
    """Multiply two coefficient lists over GF(p) and reduce mod *modulus*.

    Coefficient lists are little-endian (index = degree).  *modulus* is a
    monic polynomial of degree m; the result has degree < m.
    """
    prod = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            prod[i + j] = (prod[i + j] + ai * bj) % p
    m = len(modulus) - 1
    # Reduce: modulus is monic, so subtract modulus * leading coeff * x^k.
    for k in range(len(prod) - 1, m - 1, -1):
        c = prod[k]
        if c == 0:
            continue
        shift = k - m
        for j, mj in enumerate(modulus):
            prod[shift + j] = (prod[shift + j] - c * mj) % p
    out = prod[:m]
    out += [0] * (m - len(out))
    return out


def _poly_is_irreducible(poly: list[int], p: int) -> bool:
    """Test irreducibility of a monic polynomial over GF(p) by trial division.

    *poly* is little-endian with leading coefficient 1.  A polynomial of
    degree m is irreducible iff it has no monic divisor of degree in
    ``[1, m // 2]``; the fields here are tiny, so exhaustive trial division
    is entirely adequate.
    """
    m = len(poly) - 1
    if m <= 0:
        return False

    def divides(divisor: list[int]) -> bool:
        # Polynomial long division remainder check over GF(p).
        rem = list(poly)
        d = len(divisor) - 1
        inv_lead = pow(divisor[-1], p - 2, p)
        for k in range(len(rem) - 1, d - 1, -1):
            c = (rem[k] * inv_lead) % p
            if c == 0:
                continue
            shift = k - d
            for j, dj in enumerate(divisor):
                rem[shift + j] = (rem[shift + j] - c * dj) % p
        return all(c == 0 for c in rem[:d])

    for deg in range(1, m // 2 + 1):
        # Enumerate all monic polynomials of this degree.
        for idx in range(p**deg):
            coeffs = []
            v = idx
            for _ in range(deg):
                coeffs.append(v % p)
                v //= p
            coeffs.append(1)  # monic
            if divides(coeffs):
                return False
    return True


def _find_irreducible(p: int, m: int) -> list[int]:
    """Find the lexicographically first monic irreducible of degree m over GF(p)."""
    for idx in range(p**m):
        coeffs = []
        v = idx
        for _ in range(m):
            coeffs.append(v % p)
            v //= p
        coeffs.append(1)
        if _poly_is_irreducible(coeffs, p):
            return coeffs
    raise AssertionError(
        f"no irreducible polynomial of degree {m} over GF({p}) found; "
        "this contradicts field theory and indicates a bug"
    )


class GF:
    """The finite field ``GF(q)`` with ``q = p**m`` a prime power.

    Elements are the integers ``0 .. q-1``.  For prime fields they are the
    residues mod ``p``; for extension fields the base-``p`` digits of the
    integer encode the coefficients (little-endian) of a polynomial over
    ``GF(p)`` reduced modulo a fixed irreducible polynomial.

    Full operation tables are precomputed, so :meth:`add`, :meth:`mul`,
    :meth:`neg`, :meth:`inv` and the vectorized variants are table lookups.

    Examples
    --------
    >>> f = GF(9)
    >>> f.p, f.m, f.order
    (3, 2, 9)
    >>> f.mul(f.add(2, 5), 7) == f.add(f.mul(2, 7), f.mul(5, 7))
    True
    """

    def __init__(self, q: int):
        q = check_int(q, "q", minimum=2)
        decomp = prime_power_decomposition(q)
        if decomp is None:
            raise ValueError(f"q must be a prime power, got {q}")
        self.order = q
        self.p, self.m = decomp
        self.modulus: tuple[int, ...] | None = None
        if self.m == 1:
            a = np.arange(q, dtype=np.int64)
            self._add = (a[:, None] + a[None, :]) % q
            self._mul = (a[:, None] * a[None, :]) % q
        else:
            modulus = _find_irreducible(self.p, self.m)
            self.modulus = tuple(modulus)
            self._add = np.zeros((q, q), dtype=np.int64)
            self._mul = np.zeros((q, q), dtype=np.int64)
            digits = [self._digits(e) for e in range(q)]
            for x in range(q):
                for y in range(x, q):
                    s = [(dx + dy) % self.p for dx, dy in zip(digits[x], digits[y])]
                    sv = self._undigits(s)
                    self._add[x, y] = sv
                    self._add[y, x] = sv
                    pv = self._undigits(
                        _poly_mul_mod(digits[x], digits[y], modulus, self.p)
                    )
                    self._mul[x, y] = pv
                    self._mul[y, x] = pv
        self._neg = np.zeros(q, dtype=np.int64)
        self._inv = np.zeros(q, dtype=np.int64)
        for x in range(q):
            row = self._add[x]
            self._neg[x] = int(np.nonzero(row == 0)[0][0])
            if x != 0:
                hits = np.nonzero(self._mul[x] == 1)[0]
                if len(hits) != 1:
                    raise AssertionError(
                        f"element {x} of GF({q}) has {len(hits)} inverses; "
                        "irreducible-polynomial search is buggy"
                    )
                self._inv[x] = int(hits[0])

    # -- encoding helpers -------------------------------------------------
    def _digits(self, e: int) -> list[int]:
        out = []
        for _ in range(self.m):
            out.append(e % self.p)
            e //= self.p
        return out

    def _undigits(self, digits: list[int]) -> int:
        v = 0
        for d in reversed(digits):
            v = v * self.p + d
        return v

    # -- scalar operations -------------------------------------------------
    def _check(self, x: int, name: str = "x") -> int:
        return check_int(x, name, minimum=0, maximum=self.order - 1)

    def add(self, x: int, y: int) -> int:
        """Field addition."""
        return int(self._add[self._check(x), self._check(y, "y")])

    def sub(self, x: int, y: int) -> int:
        """Field subtraction ``x - y``."""
        return int(self._add[self._check(x), self._neg[self._check(y, "y")]])

    def neg(self, x: int) -> int:
        """Additive inverse."""
        return int(self._neg[self._check(x)])

    def mul(self, x: int, y: int) -> int:
        """Field multiplication."""
        return int(self._mul[self._check(x), self._check(y, "y")])

    def inv(self, x: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        x = self._check(x)
        if x == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return int(self._inv[x])

    def div(self, x: int, y: int) -> int:
        """Field division ``x / y``; raises ZeroDivisionError for y == 0."""
        return self.mul(x, self.inv(y))

    def pow(self, x: int, e: int) -> int:
        """Field exponentiation ``x**e`` for integer ``e >= 0`` (0**0 == 1)."""
        x = self._check(x)
        e = check_int(e, "e", minimum=0)
        result = 1
        base = x
        while e:
            if e & 1:
                result = int(self._mul[result, base])
            base = int(self._mul[base, base])
            e >>= 1
        return result

    # -- vectorized operations ----------------------------------------------
    def add_vec(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Element-wise field addition of integer arrays (broadcasting)."""
        return self._add[xs, ys]

    def mul_vec(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication of integer arrays (broadcasting)."""
        return self._mul[xs, ys]

    # -- introspection -------------------------------------------------------
    @property
    def elements(self) -> range:
        """The elements of the field as the integers ``0 .. q-1``."""
        return range(self.order)

    def characteristic(self) -> int:
        """The field characteristic ``p``."""
        return self.p

    def __len__(self) -> int:
        return self.order

    def __repr__(self) -> str:
        if self.m == 1:
            return f"GF({self.order})"
        return f"GF({self.order}=={self.p}^{self.m}, modulus={self.modulus})"


@functools.lru_cache(maxsize=64)
def _cached_field(q: int) -> GF:
    return GF(q)


def field(q: int) -> GF:
    """Return a cached :class:`GF` instance of order *q*.

    Field construction builds full operation tables; callers that repeatedly
    need the same field (e.g. parameter sweeps) should use this accessor.
    """
    return _cached_field(q)
