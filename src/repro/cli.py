"""Command-line interface.

``python -m repro <command>`` exposes the deployment workflow without
writing Python:

=============  =============================================================
``build``      build a topology-transparent duty-cycled schedule for
               ``(n, D, alpha_T, alpha_R)`` and write it as JSON
``plan``       search families and budgets: ``(n, D, max duty)`` -> JSON
``provision``  batch planning service: JSONL requests in, JSONL plans
               out, with a persistent schedule cache and ``--jobs``
``verify``     exact topology-transparency decision for a schedule file
``analyze``    throughput/duty/latency report for a schedule file
``simulate``   run the slot simulator on a generated topology
``sweep``      sharded, resumable simulation sweeps: JSONL specs in,
               JSONL result rows out, with ``--jobs``/``--resume``
``families``   frame-length table of every substrate family for (n, D)
``serve``      always-on asyncio schedule server (HTTP/JSON): hot cache,
               request coalescing, admission control, ``/metrics``;
               ``--supervise`` wraps it in a restarting supervisor
``call``       client for a running server: health, provision, plan,
               metrics/SLO/flight-recorder scrapes; ``--trace``
               correlates the whole call
``obs``        observability tooling: ``report`` reassembles span JSONL
               into per-request trace trees, ``slo`` evaluates
               objectives against a metrics snapshot, ``top`` renders a
               live server's rates/latency/coalesce/breaker state from
               its ``/metrics/history`` ring, ``bench-diff`` gates
               benchmark sidecars against a recorded baseline
``store``      schedule-store maintenance: ``scrub`` (integrity pass with
               quarantine) and ``clear``
=============  =============================================================

Every command reads/writes the versioned JSON format of
:mod:`repro.core.serialization`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _obs_parent() -> argparse.ArgumentParser:
    """The observability flags every subcommand shares (see
    docs/observability.md): log level/format, metrics and trace export,
    and the ``--profile`` span-summary table."""
    obs = argparse.ArgumentParser(add_help=False)
    group = obs.add_argument_group("observability")
    group.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"],
                       help="log verbosity (default: warning; info when "
                            "--log-format json)")
    group.add_argument("--log-format", default="human",
                       choices=["human", "json"],
                       help="log line format on stderr (default human)")
    group.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics registry snapshot as JSON "
                            "here when the command finishes")
    group.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write recorded spans as JSONL here when the "
                            "command finishes")
    group.add_argument("--profile", action="store_true",
                       help="print a per-span timing summary table to "
                            "stderr when the command finishes")
    group.add_argument("--sample-profile", default=None, metavar="PATH",
                       help="run the command under the sampling profiler "
                            "and write the collapsed-stack profile here "
                            "(flamegraph input; see docs/observability.md)")
    group.add_argument("--sample-hz", type=int, default=100, metavar="HZ",
                       help="sampling frequency for --sample-profile "
                            "(default 100)")
    return obs


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Topology-transparent duty cycling (IPPS 2007) toolkit",
    )
    obs = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", parents=[obs],
                       help="construct a duty-cycled TT schedule")
    p.add_argument("-n", type=int, required=True, help="class bound on nodes")
    p.add_argument("-d", type=int, required=True, help="class bound on degree")
    p.add_argument("--alpha-t", type=int, required=True)
    p.add_argument("--alpha-r", type=int, required=True)
    p.add_argument("--family", default="auto",
                   choices=["auto", "tdma", "polynomial", "steiner",
                            "projective", "mols"])
    p.add_argument("--balanced", action="store_true",
                   help="use the balanced-energy divisions")
    p.add_argument("-o", "--output", required=True, help="output JSON path")

    p = sub.add_parser("plan", parents=[obs], help="pick family and budget from a duty cap")
    p.add_argument("-n", type=int, required=True)
    p.add_argument("-d", type=int, required=True)
    p.add_argument("--max-duty", type=float, required=True)
    p.add_argument("--balanced", action="store_true")
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("provision", parents=[obs],
                       help="batch schedule provisioning (JSONL in/out)")
    p.add_argument("-i", "--input", default="-",
                   help="JSONL request file, one {n, d, max_duty[, balanced]} "
                        "object per line; '-' reads stdin (default)")
    p.add_argument("-o", "--output", default="-",
                   help="JSONL result path; '-' writes stdout (default)")
    p.add_argument("--jobs", type=int, default=1,
                   help="process-pool width for grid evaluation (default 1)")
    p.add_argument("--cache-dir", default=None,
                   help="schedule-store root (default: "
                        "$XDG_CACHE_HOME/repro/schedules)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the schedule store entirely")
    p.add_argument("--no-schedules", action="store_true",
                   help="omit the flashable slot tables from result lines")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-evaluation wall-clock budget in seconds; a "
                        "hung worker is reclaimed and the task retried")
    p.add_argument("--max-retries", type=int, default=2,
                   help="faulted attempts a task may burn beyond its first "
                        "(default 2)")
    p.add_argument("--stats", action="store_true",
                   help="print schedule-store statistics (hits, misses, "
                        "corruptions, evictions) as JSON to stderr")
    p.add_argument("--fault-plan", default=None,
                   help="JSON fault-injection plan (chaos testing; see "
                        "docs/robustness.md for the schema)")

    p = sub.add_parser("serve", parents=[obs],
                       help="run the always-on schedule server (HTTP/JSON)")
    p.add_argument("--host", default="127.0.0.1",
                   help="listen address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8177,
                   help="listen port; 0 binds an ephemeral port "
                        "(default 8177)")
    p.add_argument("--jobs", type=int, default=2,
                   help="hot worker-pool width: provisioning requests "
                        "evaluating concurrently (default 2)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="admission bound; beyond it requests get an "
                        "explicit 503 overloaded (default 64)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="per-request processing deadline in seconds; "
                        "0 disables (default 30)")
    p.add_argument("--flight-capacity", type=int, default=128,
                   help="requests retained by the /debugz flight "
                        "recorder (default 128)")
    p.add_argument("--cache-dir", default=None,
                   help="schedule-store root (default: "
                        "$XDG_CACHE_HOME/repro/schedules)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a persistent schedule store")
    p.add_argument("--ready-file", default=None, metavar="PATH",
                   help="write '<host> <port>' here once the listener is "
                        "bound (for scripts; works with --port 0)")
    p.add_argument("--pid-file", default=None, metavar="PATH",
                   help="write the serving process's pid here once the "
                        "listener is bound (chaos drills kill it)")
    p.add_argument("--history-interval", type=float, default=5.0,
                   help="seconds between metrics-history scrapes backing "
                        "GET /metrics/history (default 5)")
    sup = p.add_argument_group("supervision")
    sup.add_argument("--supervise", action="store_true",
                     help="run the server as a supervised child: crashed "
                          "processes restart with seeded backoff; a crash "
                          "loop exits nonzero")
    sup.add_argument("--max-restarts", type=int, default=5,
                     help="crashes tolerated per --restart-window before "
                          "the supervisor gives up (default 5)")
    sup.add_argument("--restart-window", type=float, default=60.0,
                     help="sliding crash-loop window in seconds "
                          "(default 60)")
    sup.add_argument("--restart-backoff-base", type=float, default=0.2,
                     help="base of the exponential restart backoff in "
                          "seconds (default 0.2)")
    sup.add_argument("--restart-seed", type=int, default=0,
                     help="seed for the restart-backoff jitter "
                          "(reproducible chaos drills)")

    p = sub.add_parser("store", parents=[obs],
                       help="schedule-store maintenance")
    p.add_argument("action", choices=["scrub", "clear"],
                   help="scrub: re-validate every entry and quarantine the "
                        "bad ones; clear: drop every entry")
    p.add_argument("--cache-dir", default=None,
                   help="schedule-store root (default: "
                        "$XDG_CACHE_HOME/repro/schedules)")

    p = sub.add_parser("call", parents=[obs],
                       help="call a running schedule server")
    p.add_argument("action", choices=["health", "provision", "plan",
                                      "metrics", "slo", "debugz"])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8177)
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-attempt socket timeout in seconds (default 60)")
    p.add_argument("--retries", type=int, default=3,
                   help="extra attempts for connection failures and "
                        "overloaded/draining responses (default 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the retry-backoff jitter (reproducible "
                        "load tests)")
    p.add_argument("--retry-budget", type=float, default=None,
                   help="total wall-clock the retries of one request may "
                        "spend, in seconds (default: unbounded)")
    p.add_argument("-i", "--input", default="-",
                   help="provision: JSONL request file ('-' = stdin)")
    p.add_argument("-o", "--output", default="-",
                   help="provision: JSONL result path ('-' = stdout); "
                        "plan: write the flashable schedule JSON here")
    p.add_argument("--no-schedules", action="store_true",
                   help="provision: omit slot tables from result lines")
    p.add_argument("-n", type=int, default=None, help="plan: class bound n")
    p.add_argument("-d", type=int, default=None, help="plan: class bound D")
    p.add_argument("--max-duty", default=None,
                   help="plan: duty budget (float or 'p/q')")
    p.add_argument("--balanced", action="store_true",
                   help="plan: balanced-energy divisions")
    p.add_argument("--json", action="store_true",
                   help="metrics: fetch the repro-metrics JSON snapshot "
                        "instead of the Prometheus text")
    p.add_argument("--trace", action="store_true",
                   help="open a trace scope for the call and print its "
                        "trace id to stderr; the server, runtime and "
                        "store stamp the same id on their logs and spans")

    p = sub.add_parser("obs", parents=[obs],
                       help="observability tooling: trace reassembly, SLO "
                            "evaluation, live server top, bench regression "
                            "gate")
    p.add_argument("action", choices=["report", "slo", "top", "bench-diff"],
                   help="report: render per-request span trees from "
                        "trace JSONL; slo: evaluate objectives against a "
                        "metrics snapshot (exit 1 on a burned objective); "
                        "top: live req/s, latency quantiles, coalesce and "
                        "breaker state of a running server; bench-diff: "
                        "compare current bench sidecars against a baseline "
                        "(exit 1 on regression)")
    p.add_argument("traces", nargs="*",
                   help="report: span JSONL files (--trace-out output), "
                        "merged before reassembly")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="slo: the repro-metrics JSON snapshot to evaluate")
    p.add_argument("--objectives", default=None, metavar="PATH",
                   help="slo: JSON list of objective documents "
                        "(default: the serve tier's built-in objectives)")
    p.add_argument("--host", default="127.0.0.1",
                   help="top: server address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8177,
                   help="top: server port (default 8177)")
    p.add_argument("--once", action="store_true",
                   help="top: print one table and exit (for CI and scripts)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="top: seconds between refreshes (default 2)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="bench-diff: baseline — a history.jsonl (newest "
                        "record per bench wins), a single summary sidecar, "
                        "or a results directory")
    p.add_argument("--results-dir", default="benchmarks/results",
                   help="bench-diff: directory holding the current "
                        "repro-bench-summary sidecars "
                        "(default benchmarks/results)")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="bench-diff: multiplicative noise threshold; a "
                        "lower-is-better metric regresses beyond "
                        "baseline*T (default 1.5)")
    p.add_argument("--threshold-for", action="append", default=[],
                   metavar="METRIC=RATIO",
                   help="bench-diff: per-metric threshold override "
                        "(repeatable)")
    p.add_argument("--json", dest="obs_json", action="store_true",
                   help="bench-diff: print the full report as JSON")

    p = sub.add_parser("verify", parents=[obs], help="exact transparency decision")
    p.add_argument("schedule", help="schedule JSON path")
    p.add_argument("-d", type=int, required=True)

    p = sub.add_parser("analyze", parents=[obs], help="throughput / duty / latency report")
    p.add_argument("schedule")
    p.add_argument("-d", type=int, required=True)
    p.add_argument("--latency", action="store_true",
                   help="also compute the exact worst-case per-hop delay "
                        "(exponential in D; small instances only)")

    p = sub.add_parser("simulate", parents=[obs], help="run the slot simulator")
    p.add_argument("schedule")
    p.add_argument("--topology", default="grid",
                   choices=["grid", "ring", "unit-disk", "regular"])
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("-d", type=int, required=True)
    p.add_argument("--frames", type=int, default=10)
    p.add_argument("--traffic", default="saturated",
                   choices=["saturated", "poisson", "sensing"])
    p.add_argument("--rate", type=float, default=0.01,
                   help="poisson arrival rate (packets/node/slot)")
    p.add_argument("--period", type=int, default=200,
                   help="sensing report period in slots")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--node-crash-rate", type=float, default=0.0,
                   help="per-node per-slot crash probability (fault "
                        "injection; geometric sojourns)")
    p.add_argument("--node-recover-rate", type=float, default=0.0,
                   help="per-slot recovery probability for crashed nodes "
                        "(0 = crashes are permanent)")
    p.add_argument("--link-loss", type=float, default=0.0,
                   help="probability a clean reception is destroyed anyway "
                        "(lossy-radio fault injection)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for deterministic fault injection")
    p.add_argument("--fault-plan", default=None,
                   help="JSON fault-plan file; overrides the individual "
                        "fault flags (see docs/robustness.md)")

    p = sub.add_parser("sweep", parents=[obs],
                       help="sharded parameter sweep over the simulator "
                            "(JSONL in/out)")
    p.add_argument("-i", "--input", default="-",
                   help="JSONL sweep-spec file, one spec object per line "
                        "(see docs/sweeps.md); '-' reads stdin (default)")
    p.add_argument("-o", "--output", default="-",
                   help="JSONL result path; '-' writes stdout (default)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker-pool width for shard evaluation (default 1)")
    p.add_argument("--shard-size", type=int, default=8,
                   help="grid points per shard — the unit of checkpointing "
                        "and retry (default 8)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="write per-shard checkpoints here (content-"
                        "addressed JSONL); required for --resume")
    p.add_argument("--resume", action="store_true",
                   help="reuse valid checkpoints from --checkpoint-dir "
                        "instead of recomputing their shards")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-shard wall-clock budget in seconds; a hung "
                        "worker is reclaimed and the shard retried")
    p.add_argument("--max-retries", type=int, default=2,
                   help="faulted attempts a shard may burn beyond its "
                        "first (default 2)")
    p.add_argument("--fault-plan", default=None,
                   help="JSON fault-injection plan (chaos testing; see "
                        "docs/robustness.md for the schema)")

    p = sub.add_parser("families", parents=[obs], help="substrate frame-length table")
    p.add_argument("-n", type=int, required=True)
    p.add_argument("-d", type=int, required=True)

    p = sub.add_parser("report", parents=[obs], help="markdown certification report")
    p.add_argument("schedule")
    p.add_argument("-d", type=int, required=True)
    p.add_argument("--latency", action="store_true",
                   help="include the exact worst-case access delay "
                        "(exponential in D)")
    p.add_argument("-o", "--output", default=None,
                   help="write markdown here instead of stdout")

    p = sub.add_parser("experiment", parents=[obs],
                       help="regenerate one paper artefact by name")
    p.add_argument("name", help="experiment function name, e.g. thm3_sweep; "
                                "use 'list' to enumerate")

    return parser


def _source(family: str, n: int, d: int):
    from repro.core.nonsleeping import (
        best_nonsleeping_schedule,
        mols_schedule,
        polynomial_schedule,
        projective_plane_schedule,
        steiner_schedule,
        tdma_schedule,
    )

    if family == "auto":
        return best_nonsleeping_schedule(n, d)
    factories = {
        "tdma": lambda: tdma_schedule(n),
        "polynomial": lambda: polynomial_schedule(n, d),
        "steiner": lambda: steiner_schedule(n, d),
        "projective": lambda: projective_plane_schedule(n, d),
        "mols": lambda: mols_schedule(n, d),
    }
    return family, factories[family]()


def _cmd_build(args) -> int:
    from repro.core.construction import construct
    from repro.core.serialization import save_schedule

    family, source = _source(args.family, args.n, args.d)
    built = construct(source, args.d, args.alpha_t, args.alpha_r,
                      balanced=args.balanced)
    save_schedule(built, args.output, meta={
        "class_n": args.n, "class_d": args.d, "family": family,
        "alpha_t": args.alpha_t, "alpha_r": args.alpha_r,
        "balanced": args.balanced,
    })
    print(f"wrote {args.output}: family={family} L={built.frame_length} "
          f"duty={float(built.average_duty_cycle()):.3f}")
    return 0


def _cmd_plan(args) -> int:
    from repro.core.planner import plan_schedule
    from repro.core.serialization import save_schedule

    plan = plan_schedule(args.n, args.d, max_duty=args.max_duty,
                         balanced=args.balanced)
    save_schedule(plan.schedule, args.output, meta={
        "class_n": args.n, "class_d": args.d, "family": plan.family,
        "alpha_t": plan.alpha_t, "alpha_r": plan.alpha_r,
    })
    print(f"wrote {args.output}: family={plan.family} "
          f"(aT={plan.alpha_t}, aR={plan.alpha_r}) L={plan.frame_length} "
          f"duty={float(plan.duty_cycle):.3f} "
          f"throughput={float(plan.throughput):.5f}")
    return 0


def _load_fault_plan(path: str | None):
    """Parse a ``--fault-plan`` JSON file into a FaultPlan (or None)."""
    if path is None:
        return None
    from repro.faults import FaultPlan

    with open(path) as fh:
        return FaultPlan.from_dict(json.load(fh))


def _cmd_provision(args) -> int:
    from repro.service.api import ProvisionRequest, provision_batch_report
    from repro.service.runtime import RuntimeConfig
    from repro.service.store import ScheduleStore

    if args.input == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = open(args.input).read().splitlines()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    requests = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            requests.append(ProvisionRequest.from_dict(json.loads(line)))
        except (json.JSONDecodeError, ValueError) as exc:
            print(f"error: {args.input}:{lineno}: {exc}", file=sys.stderr)
            return 2
    try:
        faults = _load_fault_plan(args.fault_plan)
        runtime = RuntimeConfig(jobs=args.jobs,
                                task_timeout=args.task_timeout,
                                max_retries=args.max_retries)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.obs.metrics import default_registry

    store = None if args.no_cache else ScheduleStore(
        args.cache_dir, registry=default_registry())
    report = provision_batch_report(requests, store=store, jobs=args.jobs,
                                    runtime=runtime, faults=faults)
    results = report.results
    out_lines = [json.dumps(r.to_dict(include_schedule=not args.no_schedules))
                 for r in results]
    text = "\n".join(out_lines) + ("\n" if out_lines else "")
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
    failed = sum(1 for r in results if r.error is not None)
    degraded = sum(1 for r in results if r.degraded)
    cached = sum(1 for r in results if r.from_cache)
    summary = (f"provisioned {len(results) - failed}/{len(results)} requests "
               f"({cached} plan-cache hits, jobs={args.jobs}")
    task_summary = report.task_summary()
    if task_summary:
        summary += "; tasks: " + ", ".join(
            f"{count} {status}" for status, count in sorted(task_summary.items()))
    if report.pool_rebuilds:
        summary += f"; pool rebuilds: {report.pool_rebuilds}"
    if degraded:
        summary += f"; {degraded} degraded"
    if store is not None:
        summary += (f"; store: {store.stats.hits} hits, "
                    f"{store.stats.stores} stores, "
                    f"{store.stats.corruptions} corruptions, "
                    f"{store.stats.evictions} evictions")
    print(summary + ")", file=sys.stderr)
    if args.stats and store is not None:
        print(json.dumps(store.stats.to_metrics_dict()), file=sys.stderr)
    # Distinct exit codes: 1 = some requests unanswered, 3 = every request
    # answered but some grid evaluations were lost to worker faults.
    if failed:
        return 1
    if degraded or report.degraded:
        return 3
    return 0


def _serve_supervised(args) -> int:
    """``repro serve --supervise``: restart-on-crash around the server."""
    import signal

    from repro.obs.logging import get_logger
    from repro.serve.supervisor import (
        CRASH_LOOP_EXIT_CODE,
        Supervisor,
        SupervisorConfig,
        serve_child_argv,
    )

    try:
        config = SupervisorConfig(max_restarts=args.max_restarts,
                                  restart_window_s=args.restart_window,
                                  backoff_base_s=args.restart_backoff_base,
                                  seed=args.restart_seed)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    supervisor = Supervisor(serve_child_argv(args), config=config,
                            ready_file=args.ready_file)
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda _sig, _frame: supervisor.request_stop())
    log = get_logger("cli.serve")
    log.info("supervising schedule server",
             extra={"max_restarts": config.max_restarts,
                    "window_s": config.restart_window_s})
    code = supervisor.run()
    if code == CRASH_LOOP_EXIT_CODE:
        # Message text, not only structured fields: the chaos drills
        # grep stderr for "crash loop" at the default warning level.
        log.error(f"crash loop — more than {config.max_restarts} crashes "
                  f"in {config.restart_window_s:g}s; giving up",
                  extra={"trace_id": supervisor.trace_id})
    elif supervisor.restarts:
        log.warning(f"supervisor exiting after {supervisor.restarts} "
                    f"restart(s)",
                    extra={"trace_id": supervisor.trace_id})
    return code


def _cmd_serve(args) -> int:
    import asyncio
    import signal
    from pathlib import Path

    from repro.obs.metrics import default_registry
    from repro.serve.server import ScheduleServer, ServeConfig
    from repro.service.store import ScheduleStore

    if args.supervise:
        return _serve_supervised(args)
    try:
        config = ServeConfig(
            host=args.host, port=args.port, jobs=args.jobs,
            max_inflight=args.max_inflight,
            flight_capacity=args.flight_capacity,
            history_interval_s=args.history_interval,
            request_deadline_s=args.deadline if args.deadline > 0 else None)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = default_registry()
    store = None if args.no_cache else ScheduleStore(
        args.cache_dir, registry=registry)

    async def _run() -> None:
        server = ScheduleServer(config, store=store, registry=registry)
        host, port = await server.start()
        print(f"serving on http://{host}:{port} "
              f"(jobs={config.jobs}, max_inflight={config.max_inflight})",
              file=sys.stderr, flush=True)
        if args.pid_file:
            # Before the ready file, so ready implies the pid is on disk
            # (chaos drills read it to kill the serving process).
            tmp = Path(f"{args.pid_file}.tmp")
            tmp.write_text(f"{os.getpid()}\n")
            tmp.replace(args.pid_file)
        if args.ready_file:
            # Written atomically so a polling script never reads half a
            # line; the file appearing means the listener is accepting.
            tmp = Path(f"{args.ready_file}.tmp")
            tmp.write_text(f"{host} {port}\n")
            tmp.replace(args.ready_file)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, server.begin_drain)
        await server.wait_closed()
        print("drained; exiting", file=sys.stderr)

    asyncio.run(_run())
    return 0


def _cmd_call(args) -> int:
    from repro.serve.client import ServeClient

    try:
        client = ServeClient(args.host, args.port, timeout=args.timeout,
                             retries=args.retries, seed=args.seed,
                             retry_budget_s=args.retry_budget)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        from repro.obs import context as _context

        # One trace scope around the whole action: the client forwards
        # the id, the server/runtime/store stamp it on their telemetry.
        with _context.trace_context() as ctx:
            print(f"trace_id {ctx.trace_id}", file=sys.stderr)
            return _call_action(args, client)
    return _call_action(args, client)


def _call_action(args, client) -> int:
    from repro.serve.client import ServeError
    from repro.service.api import ProvisionRequest

    try:
        if args.action == "health":
            print(json.dumps(client.health(), indent=2))
            return 0
        if args.action == "slo":
            doc = client.slo()
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0 if doc.get("slo", {}).get("ok") else 1
        if args.action == "debugz":
            print(json.dumps(client.debugz(), indent=2))
            return 0
        if args.action == "metrics":
            if args.json:
                print(json.dumps(client.metrics_snapshot(), indent=2,
                                 sort_keys=True))
            else:
                sys.stdout.write(client.metrics_text())
            return 0
        if args.action == "plan":
            if args.n is None or args.d is None or args.max_duty is None:
                print("error: call plan needs -n, -d and --max-duty",
                      file=sys.stderr)
                return 2
            max_duty: float | str = args.max_duty
            if "/" not in max_duty:
                max_duty = float(max_duty)
            doc = client.plan(args.n, args.d, max_duty,
                              balanced=args.balanced,
                              include_schedule=args.output != "-")
            if args.output != "-" and "schedule" in doc:
                with open(args.output, "w") as fh:
                    json.dump(doc.pop("schedule"), fh, indent=1)
                print(f"wrote {args.output}", file=sys.stderr)
            print(json.dumps(doc, indent=2))
            return 1 if "error" in doc else 0
        # provision: same JSONL in/out contract as `repro provision`.
        if args.input == "-":
            lines = sys.stdin.read().splitlines()
        else:
            lines = open(args.input).read().splitlines()
        requests = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                requests.append(ProvisionRequest.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                print(f"error: {args.input}:{lineno}: {exc}", file=sys.stderr)
                return 2
        docs = client.provision(requests,
                                include_schedules=not args.no_schedules)
        out_lines = [json.dumps(doc) for doc in docs]
        text = "\n".join(out_lines) + ("\n" if out_lines else "")
        if args.output == "-":
            sys.stdout.write(text)
        else:
            with open(args.output, "w") as fh:
                fh.write(text)
        failed = sum(1 for doc in docs if "error" in doc)
        degraded = sum(1 for doc in docs if doc.get("degraded"))
        print(f"provisioned {len(docs) - failed}/{len(docs)} requests via "
              f"{args.host}:{args.port}"
              + (f"; {degraded} degraded" if degraded else ""),
              file=sys.stderr)
        if failed:
            return 1
        return 3 if degraded else 0
    except ServeError as exc:
        print(f"error: server {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 4
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _render_obs_top(samples: list[dict]) -> str:
    """The ``obs top`` table from a /metrics/history sample list.

    Rates and quantiles are computed over the whole retained window
    (oldest vs newest sample) with the reset-aware deltas, so a server
    restart inside the window reads as a traffic dip, not negative load.
    """
    from repro.obs import timeseries as _ts

    newest = samples[-1]["snapshot"]
    t1 = float(samples[-1]["t_unix"])
    oldest = samples[0]["snapshot"] if len(samples) > 1 else {}
    t0 = float(samples[0]["t_unix"]) if len(samples) > 1 else t1
    window = max(t1 - t0, 0.0)

    requests = _ts.counter_delta(oldest, newest, "repro_serve_requests_total")
    rate = requests / window if window > 0 else None
    bounds, deltas, _count, _sum = _ts.histogram_delta(
        oldest, newest, "repro_serve_request_seconds")
    p50 = _ts.histogram_quantile(bounds, deltas, 0.5)
    p99 = _ts.histogram_quantile(bounds, deltas, 0.99)
    led = _ts.counter_delta(oldest, newest, "repro_serve_coalesce_total",
                            where={"result": "led"})
    joined = _ts.counter_delta(oldest, newest, "repro_serve_coalesce_total",
                               where={"result": "joined"})
    hit = joined / (led + joined) if (led + joined) > 0 else None

    def fmt(value, unit="", scale=1.0, digits=2):
        return "-" if value is None else f"{value * scale:.{digits}f}{unit}"

    breakers = _ts.gauge_values(newest, "repro_failover_breaker_open")
    if breakers:
        opened = sorted(dict(key).get("endpoint", str(dict(key)))
                        for key, value in breakers.items() if value >= 1.0)
        state = f"{len(opened)}/{len(breakers)} open"
        if opened:
            state += f" ({', '.join(opened)})"
    else:
        state = "none tracked"
    return "\n".join([
        f"window    {window:.1f}s over {len(samples)} sample(s)",
        f"requests  {requests:g} ({fmt(rate)}/s)",
        f"p50       {fmt(p50, ' ms', 1000.0)}",
        f"p99       {fmt(p99, ' ms', 1000.0)}",
        f"coalesce  {fmt(hit, '%', 100.0, 1)} joined "
        f"({joined:g}/{led + joined:g})",
        f"breakers  {state}",
    ])


def _obs_top(args) -> int:
    import time as _time

    from repro.obs import timeseries as _ts
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port, retries=0)
    while True:
        try:
            samples = _ts.parse_history(client.metrics_history())
        except (ServeError, ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not samples:
            print("error: the server has not scraped any history yet",
                  file=sys.stderr)
            return 1
        print(_render_obs_top(samples), flush=True)
        if args.once:
            return 0
        try:
            _time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
        print(flush=True)


def _load_bench_baseline(path):
    """A bench-diff baseline: history.jsonl, one sidecar, or a directory."""
    from pathlib import Path

    from repro.obs import bench as _bench

    p = Path(path)
    if p.is_dir():
        return _bench.load_sidecars(p)
    try:
        return _bench.latest_by_bench(_bench.read_history(p))
    except ValueError:
        pass  # not history JSONL; try a single JSON document below
    doc = json.loads(p.read_text())
    if isinstance(doc, dict) and doc.get("format") in (
            _bench.SUMMARY_FORMAT, _bench.HISTORY_FORMAT):
        return {str(doc.get("benchmark") or doc.get("bench") or p.stem): doc}
    raise ValueError(f"{path}: neither {_bench.HISTORY_FORMAT} JSONL, a "
                     f"{_bench.SUMMARY_FORMAT} sidecar, nor a directory")


def _obs_bench_diff(args) -> int:
    from repro.obs import bench as _bench

    if args.baseline is None:
        print("error: obs bench-diff needs --baseline PATH", file=sys.stderr)
        return 2
    per_metric = {}
    try:
        for entry in args.threshold_for:
            metric, sep, ratio = entry.partition("=")
            if not sep or not metric:
                raise ValueError(
                    f"--threshold-for wants METRIC=RATIO, got {entry!r}")
            per_metric[metric] = float(ratio)
        current = _bench.load_sidecars(args.results_dir)
        if not current:
            raise ValueError(f"no {_bench.SUMMARY_FORMAT} sidecars under "
                             f"{args.results_dir} (run the benchmarks first)")
        baseline = _load_bench_baseline(args.baseline)
        report = _bench.diff(current, baseline, threshold=args.threshold,
                             per_metric=per_metric)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.obs_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for c in report.compared:
            flag = "REGRESSED" if c.regressed else "ok"
            direction = "down" if c.lower_better else "up"
            ratio = "inf" if c.ratio == float("inf") else f"{c.ratio:.3f}x"
            print(f"{flag:>9}  {c.bench}:{c.key} {c.metric} "
                  f"{c.baseline:g} -> {c.current:g} ({ratio}, want {direction}"
                  f", threshold {c.threshold:g})")
        for name in report.missing_in_baseline:
            print(f"     new   {name} (not in baseline; not gated)")
        for name in report.missing_in_current:
            print(f"    gone   {name} (in baseline only; not gated)")
        print(f"{len(report.compared)} compared, "
              f"{len(report.regressions)} regression(s)")
    return 0 if report.ok else 1


def _cmd_obs(args) -> int:
    if args.action == "top":
        return _obs_top(args)
    if args.action == "bench-diff":
        return _obs_bench_diff(args)
    if args.action == "report":
        from repro.obs.tracing import read_jsonl, render_trace_trees

        if not args.traces:
            print("error: obs report needs at least one trace JSONL path",
                  file=sys.stderr)
            return 2
        try:
            records = read_jsonl(args.traces)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not records:
            print("no spans found", file=sys.stderr)
            return 1
        print(render_trace_trees(records))
        return 0
    # slo: pure evaluation of objectives against an exported snapshot.
    from repro.obs import slo as _slo

    if args.metrics is None:
        print("error: obs slo needs --metrics PATH", file=sys.stderr)
        return 2
    try:
        with open(args.metrics) as fh:
            snapshot = json.load(fh)
        if args.objectives is not None:
            with open(args.objectives) as fh:
                docs = json.load(fh)
            if not isinstance(docs, list):
                raise ValueError("--objectives must hold a JSON list")
            objectives = [_slo.Objective.from_dict(doc) for doc in docs]
        else:
            objectives = _slo.default_serve_objectives()
        report = _slo.evaluate(objectives, snapshot)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def _cmd_store(args) -> int:
    from repro.obs.metrics import default_registry
    from repro.service.store import ScheduleStore

    store = ScheduleStore(args.cache_dir, registry=default_registry())
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {store.cache_dir}",
              file=sys.stderr)
        return 0
    # scrub: the integrity pass.  Exit 1 when anything had to be
    # quarantined so cron jobs and CI notice silent corruption.
    report = store.scrub()
    print(json.dumps(report.to_dict(), indent=2))
    if not report.clean:
        print(f"error: {report.corrupt + report.unreadable} bad entries "
              f"({report.quarantined} moved to {store.quarantine_dir})",
              file=sys.stderr)
        return 1
    print(f"scrubbed {report.scanned} entries in {store.cache_dir}: "
          "all clean", file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    from repro.core.serialization import load_schedule
    from repro.core.transparency import (
        find_transparency_violation,
        is_topology_transparent,
    )

    sched = load_schedule(args.schedule)
    if is_topology_transparent(sched, args.d):
        print(f"TRANSPARENT for N_{sched.n}^{args.d} (L={sched.frame_length})")
        return 0
    witness = find_transparency_violation(sched, args.d)
    print(f"NOT transparent for N_{sched.n}^{args.d}; witness: {witness}")
    return 1


def _cmd_analyze(args) -> int:
    from repro.core.latency import frame_delay_bound, worst_link_access_delay
    from repro.core.serialization import load_schedule
    from repro.core.throughput import average_throughput, min_throughput

    sched = load_schedule(args.schedule)
    report = {
        "n": sched.n,
        "frame_length": sched.frame_length,
        "tx_per_slot": [min(sched.tx_counts), max(sched.tx_counts)],
        "rx_per_slot": [min(sched.rx_counts), max(sched.rx_counts)],
        "average_duty_cycle": float(sched.average_duty_cycle()),
        "average_worst_case_throughput":
            float(average_throughput(sched, args.d)),
        "minimum_worst_case_throughput":
            float(min_throughput(sched, args.d)),
        "frame_delay_bound": frame_delay_bound(sched),
    }
    if args.latency:
        report["worst_link_access_delay"] = \
            worst_link_access_delay(sched, args.d)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_simulate(args) -> int:
    from math import isqrt

    from repro.core.serialization import load_schedule
    from repro.simulation.engine import Simulator
    from repro.simulation.routing import sink_tree
    from repro.simulation.topology import grid, ring, unit_disk, worst_case_regular
    from repro.simulation.traffic import (
        PeriodicSensingTraffic,
        PoissonTraffic,
        SaturatedTraffic,
    )

    sched = load_schedule(args.schedule)
    rng = np.random.default_rng(args.seed)
    if args.topology == "grid":
        side = isqrt(args.nodes)
        if side * side != args.nodes:
            print("error: --topology grid needs a square node count, "
                  f"got {args.nodes}", file=sys.stderr)
            return 2
        topo = grid(side, side)
    elif args.topology == "ring":
        topo = ring(args.nodes)
    elif args.topology == "unit-disk":
        topo = unit_disk(args.nodes, args.d, rng=rng)
    else:
        topo = worst_case_regular(args.nodes, args.d,
                                  seed=int(rng.integers(2**31 - 1)))
    if args.traffic == "saturated":
        traffic = SaturatedTraffic(topo)
        hops = None
    elif args.traffic == "poisson":
        traffic = PoissonTraffic(topo, args.rate, rng)
        hops = None
    else:
        traffic = PeriodicSensingTraffic(topo, sink=0, period=args.period)
        hops = sink_tree(topo, 0)
    if args.fault_plan is not None:
        faults = _load_fault_plan(args.fault_plan)
    elif args.node_crash_rate or args.node_recover_rate or args.link_loss:
        from repro.faults import FaultPlan

        faults = FaultPlan(seed=args.fault_seed,
                           node_crash_rate=args.node_crash_rate,
                           node_recover_rate=args.node_recover_rate,
                           link_loss=args.link_loss)
    else:
        faults = None
    sim = Simulator(topo, sched, traffic, next_hops=hops, faults=faults)
    metrics = sim.run(frames=args.frames)
    links = topo.directed_links()
    mean_latency = metrics.mean_latency()
    print(json.dumps({
        "slots": metrics.slots,
        "delivery_ratio": metrics.delivery_ratio(),
        "collisions": metrics.total_collisions(),
        "mean_link_throughput":
            metrics.mean_link_throughput(links, sched.frame_length),
        "min_link_throughput":
            metrics.min_link_throughput(links, sched.frame_length),
        "mean_latency_slots":
            None if mean_latency != mean_latency else mean_latency,
        "awake_fraction": sim.energy.awake_fraction(),
        "total_energy_mj": sim.energy.total_mj(),
        "link_losses": metrics.link_losses,
        "node_down_fraction": metrics.node_down_fraction(topo.n),
    }, indent=2))
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweeps import SweepRunner, SweepSpec
    from repro.service.runtime import RuntimeConfig

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.input == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = open(args.input).read().splitlines()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    specs = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            specs.append(SweepSpec.from_dict(json.loads(line)))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            print(f"error: {args.input}:{lineno}: {exc}", file=sys.stderr)
            return 2
    if not specs:
        print("error: no sweep specs in input", file=sys.stderr)
        return 2
    try:
        faults = _load_fault_plan(args.fault_plan)
        config = RuntimeConfig(jobs=args.jobs,
                               task_timeout=args.task_timeout,
                               max_retries=args.max_retries)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = []
    for spec in specs:
        runner = SweepRunner(spec, jobs=args.jobs,
                             shard_size=args.shard_size,
                             checkpoint_dir=args.checkpoint_dir,
                             resume=args.resume, config=config,
                             faults=faults)
        results.append(runner.run())
    text = "".join(result.to_jsonl() for result in results)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
    rows = sum(len(r.rows) for r in results)
    errors = sum(1 for r in results for row in r.rows if "error" in row)
    shards = sum(len(r.shard_digests) for r in results)
    resumed = sum(r.resumed_shards for r in results)
    failed_shards = sum(1 for r in results
                        for rep in r.reports.values() if not rep.succeeded)
    summary = (f"swept {rows - errors}/{rows} points across {shards} shards "
               f"(jobs={args.jobs}, {resumed} resumed")
    if failed_shards:
        summary += f", {failed_shards} shards failed"
    print(summary + ")", file=sys.stderr)
    # Exit 3 = every point answered, but some shards were lost to worker
    # faults and degraded to error rows (mirrors `repro provision`).
    return 3 if failed_shards else 0


def _cmd_families(args) -> int:
    from repro.analysis.tables import Table
    from repro.core.planner import candidate_sources

    table = Table("family", "frame_length", "tx_min", "tx_max",
                  title=f"Substrate families for N_{args.n}^{args.d}")
    for name, sched in candidate_sources(args.n, args.d):
        table.row(family=name, frame_length=sched.frame_length,
                  tx_min=min(sched.tx_counts), tx_max=max(sched.tx_counts))
    print(table.render())
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.analysis.report import certification_report
    from repro.core.serialization import load_schedule

    sched = load_schedule(args.schedule)
    report = certification_report(sched, args.d, exact_latency=args.latency,
                                  extras={"source file": args.schedule})
    text = report.to_markdown()
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0 if report.transparent else 1


def _cmd_experiment(args) -> int:
    from repro.analysis import experiments
    from repro.analysis.tables import Table

    names = [n for n in experiments.__all__ if n != "random_schedule"]
    if args.name == "list":
        print("\n".join(names))
        return 0
    if args.name not in names:
        print(f"error: unknown experiment {args.name!r}; "
              "run 'experiment list'", file=sys.stderr)
        return 2
    result = getattr(experiments, args.name)()
    table = result[0] if isinstance(result, tuple) else result
    if not isinstance(table, Table):  # pragma: no cover - all return Tables
        print(result)
        return 0
    print(table.render())
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "plan": _cmd_plan,
    "provision": _cmd_provision,
    "serve": _cmd_serve,
    "call": _cmd_call,
    "obs": _cmd_obs,
    "store": _cmd_store,
    "verify": _cmd_verify,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "families": _cmd_families,
    "report": _cmd_report,
    "experiment": _cmd_experiment,
}


def _setup_observability(args):
    """Install per-invocation observability from the global flags.

    Configures the ``repro.*`` logger tree (``--log-level`` defaults to
    ``info`` under ``--log-format json``, else ``warning``) and installs a
    fresh metrics registry and tracer as the process defaults, so every
    instrumented layer the command touches reports into this invocation's
    collectors.  Returns ``(registry, tracer)`` for export at exit.
    """
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        set_default_registry,
        set_default_tracer,
    )
    from repro.obs.logging import configure as configure_logging

    level = args.log_level or (
        "info" if args.log_format == "json" else "warning")
    configure_logging(level=level, format=args.log_format)
    registry = MetricsRegistry()
    set_default_registry(registry)
    tracer = Tracer()
    set_default_tracer(tracer)
    return registry, tracer


def _export_observability(args, registry, tracer) -> int:
    """Honour ``--metrics-out`` / ``--trace-out`` / ``--profile`` at exit.

    Returns 0, or 2 when an export path cannot be written.
    """
    try:
        if args.metrics_out:
            registry.write_json(args.metrics_out)
        if args.trace_out:
            tracer.to_jsonl(args.trace_out)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.profile:
        print(tracer.summary_table(), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import contextlib

    args = build_parser().parse_args(argv)
    registry, tracer = _setup_observability(args)
    profile_cm = contextlib.nullcontext()
    if args.sample_profile:
        from repro.obs.profile import MAX_HZ, sample_profile

        if not 1 <= args.sample_hz <= MAX_HZ:
            print(f"error: --sample-hz must be in [1, {MAX_HZ}], "
                  f"got {args.sample_hz}", file=sys.stderr)
            return 2
        profile_cm = sample_profile(args.sample_hz, out=args.sample_profile)
    code = None
    try:
        with profile_cm:
            code = _COMMANDS[args.command](args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except OSError as exc:
        if code is None:  # the command itself failed: preserve the raise
            raise
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    export_code = _export_observability(args, registry, tracer)
    return code or export_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
