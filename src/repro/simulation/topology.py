"""Topology generators for the network class ``N_n^D``.

The paper's guarantees quantify over *every* network with at most ``n``
nodes and maximum degree at most ``D``.  This module provides an immutable
:class:`Topology` wrapper plus generators spanning the shapes WSN
deployments actually take — unit-disk fields, degree-capped random graphs,
grids, rings, stars, random trees and ``D``-regular worst cases — each one
guaranteed (and checked) to lie in the requested class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx
import numpy as np

from repro._validation import check_class_params, check_int, check_probability

__all__ = [
    "Topology",
    "unit_disk",
    "random_capped",
    "grid",
    "ring",
    "star",
    "random_tree",
    "worst_case_regular",
]


@dataclass(frozen=True)
class Topology:
    """An undirected network over nodes ``0 .. n-1``.

    *edges* is a frozenset of sorted pairs.  The adjacency structure is
    precomputed at construction.
    """

    n: int
    edges: frozenset[tuple[int, int]]
    _adj: tuple[frozenset[int], ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_int(self.n, "n", minimum=1)
        adj: list[set[int]] = [set() for _ in range(self.n)]
        for u, v in self.edges:
            check_int(u, "edge endpoint", minimum=0, maximum=self.n - 1)
            check_int(v, "edge endpoint", minimum=0, maximum=self.n - 1)
            if u == v:
                raise ValueError(f"self-loop at node {u}")
            if (u, v) != (min(u, v), max(u, v)):
                raise ValueError(f"edge {(u, v)} is not sorted")
            adj[u].add(v)
            adj[v].add(u)
        object.__setattr__(self, "_adj", tuple(frozenset(s) for s in adj))

    @classmethod
    def from_edges(cls, n: int, edges) -> "Topology":
        """Build a topology from any iterable of (u, v) pairs."""
        normalized = frozenset(
            (min(u, v), max(u, v)) for u, v in edges
        )
        return cls(n, normalized)

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "Topology":
        """Build a topology from a networkx graph with integer nodes 0..n-1."""
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ValueError("graph nodes must be exactly 0..n-1")
        return cls.from_edges(n, graph.edges)

    def neighbors(self, x: int) -> frozenset[int]:
        """The neighbour set of node *x*."""
        check_int(x, "x", minimum=0, maximum=self.n - 1)
        return self._adj[x]

    def degree(self, x: int) -> int:
        """Degree of node *x*."""
        return len(self.neighbors(x))

    @property
    def max_degree(self) -> int:
        """Maximum node degree in the network."""
        return max((len(a) for a in self._adj), default=0)

    def directed_links(self) -> list[tuple[int, int]]:
        """All ordered adjacent pairs (both directions of every edge)."""
        out = []
        for u, v in sorted(self.edges):
            out.append((u, v))
            out.append((v, u))
        return out

    def in_class(self, n: int, d: int) -> bool:
        """True iff this network belongs to ``N_n^D``."""
        n, d = check_class_params(n, d)
        return self.n <= n and self.max_degree <= d

    def assert_in_class(self, n: int, d: int) -> None:
        """Raise ValueError unless the network belongs to ``N_n^D``."""
        if not self.in_class(n, d):
            raise ValueError(
                f"topology (n={self.n}, max_degree={self.max_degree}) is not "
                f"in N_{n}^{d}"
            )

    def is_connected(self) -> bool:
        """True iff the network is connected (single component)."""
        if self.n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def without_nodes(self, dead: Iterable[int]) -> "Topology":
        """The surviving network after the *dead* nodes fail.

        Node ids are preserved (dead nodes remain as isolated ids), which
        keeps the same schedule applicable — exactly the fault model
        topology transparency covers: any subset of at most ``n`` nodes is
        still a member of ``N_n^D``.
        """
        dead_set = {check_int(x, "dead node", minimum=0, maximum=self.n - 1)
                    for x in dead}
        kept = frozenset(
            e for e in self.edges if e[0] not in dead_set and e[1] not in dead_set
        )
        return Topology(self.n, kept)

    def to_networkx(self) -> nx.Graph:
        """Convert to a networkx graph (for algorithms and analyses)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges)
        return g


def _cap_degrees(edges: list[tuple[int, int]], n: int, d: int,
                 rng: np.random.Generator) -> frozenset[tuple[int, int]]:
    """Randomly drop edges until every degree is at most *d*."""
    adj: list[set[int]] = [set() for _ in range(n)]
    kept: set[tuple[int, int]] = set()
    order = list(edges)
    rng.shuffle(order)  # type: ignore[arg-type]
    for u, v in order:
        if len(adj[u]) < d and len(adj[v]) < d:
            adj[u].add(v)
            adj[v].add(u)
            kept.add((min(u, v), max(u, v)))
    return frozenset(kept)


def unit_disk(n: int, d: int, *, radius: float = 0.35, side: float = 1.0,
              rng: np.random.Generator | None = None) -> Topology:
    """Random unit-disk network in a ``side x side`` square, degree-capped to *d*.

    Nodes are placed uniformly at random; an edge joins every pair within
    *radius*, and excess edges are randomly dropped until the degree bound
    holds (keeping the network inside ``N_n^D``, as the paper's class
    requires).  The classic model for sensor fields with a common radio
    range.
    """
    n, d = check_class_params(n, d)
    rng = rng if rng is not None else np.random.default_rng()
    pts = rng.uniform(0.0, side, size=(n, 2))
    diffs = pts[:, None, :] - pts[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diffs, diffs)
    within = dist2 <= radius * radius
    edges = [
        (i, j) for i in range(n) for j in range(i + 1, n) if within[i, j]
    ]
    return Topology(n, _cap_degrees(edges, n, d, rng))


def random_capped(n: int, d: int, *, p: float = 0.3,
                  rng: np.random.Generator | None = None) -> Topology:
    """Erdos-Renyi ``G(n, p)`` with degrees randomly capped to *d*."""
    n, d = check_class_params(n, d)
    p = check_probability(p, "p")
    rng = rng if rng is not None else np.random.default_rng()
    mask = rng.uniform(size=(n, n)) < p
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if mask[i, j]]
    return Topology(n, _cap_degrees(edges, n, d, rng))


def grid(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` 4-neighbour grid (max degree 4)."""
    rows = check_int(rows, "rows", minimum=1)
    cols = check_int(cols, "cols", minimum=1)
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return Topology.from_edges(n, edges)


def ring(n: int) -> Topology:
    """A cycle over *n* nodes (degree 2)."""
    n = check_int(n, "n", minimum=3)
    return Topology.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def star(n: int, d: int) -> Topology:
    """Node 0 joined to nodes ``1..d`` — the densest single neighbourhood.

    A star with exactly ``D`` leaves is the per-receiver worst case of the
    paper's throughput analysis: all of a hub's neighbours compete.
    """
    n, d = check_class_params(n, d)
    return Topology.from_edges(n, [(0, i) for i in range(1, d + 1)])


def random_tree(n: int, d: int, *, rng: np.random.Generator | None = None
                ) -> Topology:
    """A random tree with maximum degree *d* (typical convergecast shape).

    Grown by attaching each new node to a uniformly random existing node
    that still has residual degree.
    """
    n, d = check_class_params(n, d)
    rng = rng if rng is not None else np.random.default_rng()
    degree = [0] * n
    edges = []
    for v in range(1, n):
        candidates = [u for u in range(v) if degree[u] < d]
        if not candidates:  # pragma: no cover - impossible for d >= 2
            raise AssertionError("tree growth ran out of attachment points")
        u = int(candidates[int(rng.integers(len(candidates)))])
        edges.append((u, v))
        degree[u] += 1
        degree[v] += 1
    return Topology.from_edges(n, edges)


def worst_case_regular(n: int, d: int, *, rng: np.random.Generator | None = None,
                       seed: int | None = None) -> Topology:
    """A random ``D``-regular network: every node at the degree bound.

    The worst case of section 5's throughput analysis — each node has
    exactly ``D`` neighbours.  Requires ``n * D`` even (standard handshake
    condition); networkx's pairing-model generator supplies the graph.
    """
    n, d = check_class_params(n, d)
    if (n * d) % 2 != 0:
        raise ValueError(f"a {d}-regular graph needs n*D even; got n={n}, D={d}")
    if seed is None and rng is not None:
        seed = int(rng.integers(2**31 - 1))
    g = nx.random_regular_graph(d, n, seed=seed)
    return Topology.from_networkx(nx.convert_node_labels_to_integers(g))
