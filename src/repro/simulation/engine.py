"""The slot-synchronous simulation engine.

Implements exactly the system model of the paper's section 3 plus the
collision rule of its transparency definition: in every slot, nodes in
``T[i]`` may transmit, nodes in ``R[i]`` listen, everyone else sleeps, and
a listener receives iff **exactly one** of its neighbours transmits in that
slot (no capture, no fading — the paper's model has neither).

Two operating modes:

* **Saturated** (worst case, section 5): every transmit-eligible node
  transmits in every eligible slot, and every listening neighbour that
  hears it alone counts a per-link success.  Per-frame per-link success
  counts then equal the analytic quantity ``|T(x, y, S)|`` with ``S`` the
  receiver's true other-neighbour set — the bridge between theory and
  simulation that experiment E8 checks exactly.

* **Queued** (Poisson / periodic-sensing traffic): nodes hold FIFO packet
  queues; a transmit-eligible node sends the first queued packet whose
  next hop is listening this slot (receiver-aware duty-cycling — "a node
  has to wait until the receiver wakes up", section 1).  Deliveries,
  end-to-end latencies and drops are recorded; multi-hop packets follow a
  sink tree.

A :class:`repro.simulation.drift.ClockDrift` lets each node disagree about
the current frame position, probing the paper's synchrony assumption.  A
:class:`repro.faults.FaultPlan` injects node crash/recover epochs and
per-link packet loss on top of the collision rule, turning "does the TT
guarantee degrade gracefully?" into a runnable experiment.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro._validation import check_int, check_probability
from repro.core.schedule import Schedule
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import span
from repro.simulation.drift import ClockDrift
from repro.simulation.energy import EnergyAccount, EnergyModel, RadioState
from repro.simulation.metrics import Metrics
from repro.simulation.topology import Topology

__all__ = ["Packet", "Simulator"]


@dataclass
class Packet:
    """A unit of traffic traversing the network hop by hop."""

    pid: int
    src: int
    final_dst: int
    created: int
    next_hop: int


class Simulator:
    """Slot-synchronous simulator binding a topology to a schedule.

    Parameters
    ----------
    topology:
        The network; must satisfy ``topology.n <= schedule.n`` (schedules
        are built for the class bound ``n``, networks may be smaller).
    schedule:
        Any :class:`repro.core.schedule.Schedule` (duty-cycled or not).
    traffic:
        A generator from :mod:`repro.simulation.traffic`; its
        ``saturated`` attribute selects the operating mode.
    energy_model:
        Per-slot radio costs; accounting accumulates in :attr:`energy`.
    next_hops:
        Forwarding table for multi-hop traffic (``dict node -> parent``);
        required when traffic emits non-adjacent final destinations.
    drift:
        Optional :class:`ClockDrift`; defaults to perfect synchrony.
    queue_limit:
        Per-node queue capacity; arrivals beyond it are dropped (counted).
    idle_transmitters_sleep:
        Whether a transmit-eligible node with nothing to send powers down
        (default) or burns idle-listening energy.
    capture_probability:
        Probability that a collision resolves to one random talker being
        received anyway (capture effect).  Default 0.0 — the paper's model,
        in which every collision destroys all frames; nonzero values are a
        robustness probe only.
    rng:
        Random source for the capture lottery.
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry` receiving the
        simulator's observability series (collision/link-loss counters and
        a slots-per-second gauge); defaults to the process-global registry.
        Series update once per :meth:`run` frame — never per slot — so the
        hot path stays untouched.
    instrument:
        When False the simulator never touches a registry or tracer: no
        series are created, no ``sim.frame`` spans open and no per-frame
        gauge flushes run — the uninstrumented path is allocation-free.
        This also unlocks the vectorized saturated-mode frame kernel in
        :meth:`run` (see *vectorize*), the fast path the sweep engine
        rides.
    vectorize:
        Allow the vectorized saturated-mode kernel (matrix collision
        resolution over whole frames).  It engages only when
        ``instrument=False`` and the run is eligible — saturated traffic,
        synchronous clocks, no fault plan, no capture — and is *exact*:
        the property suite pins it bit-for-bit against the scalar
        reference (:meth:`_slow_slot_step`) and the analytic
        ``|T(x, y, S)|``.  Set False to force the scalar path.
    faults:
        Optional :class:`repro.faults.FaultPlan`.  Crashed nodes neither
        transmit, listen nor sense (their queues survive a reboot); clean
        receptions on lossy links are destroyed with the plan's
        ``link_loss`` probability — in queued mode the sender requeues
        and retransmits, exactly as under a collision.  All injection is
        deterministic in the plan's seed.
    """

    def __init__(self, topology: Topology, schedule: Schedule, traffic,
                 *, energy_model: EnergyModel | None = None,
                 next_hops: dict[int, int] | None = None,
                 drift: ClockDrift | None = None,
                 queue_limit: int = 64,
                 idle_transmitters_sleep: bool = True,
                 capture_probability: float = 0.0,
                 rng: np.random.Generator | None = None,
                 registry: MetricsRegistry | None = None,
                 faults: FaultPlan | None = None,
                 instrument: bool = True,
                 vectorize: bool = True) -> None:
        if topology.n > schedule.n:
            raise ValueError(
                f"topology has {topology.n} nodes but the schedule only "
                f"covers {schedule.n}"
            )
        self.topology = topology
        self.schedule = schedule
        self.traffic = traffic
        self.energy = EnergyAccount(topology.n, energy_model or EnergyModel())
        self.next_hops = next_hops or {}
        self.drift = drift or ClockDrift.none(topology.n)
        self.queue_limit = check_int(queue_limit, "queue_limit", minimum=1)
        self.idle_transmitters_sleep = idle_transmitters_sleep
        self.capture_probability = check_probability(
            capture_probability, "capture_probability")
        self.rng = rng if rng is not None else np.random.default_rng()
        # Fault injection is compiled once per simulator so stochastic
        # outage timelines are generated exactly once per node; inactive
        # plans cost the hot path nothing (a single None check per slot).
        self._faults = faults.compile(topology.n) \
            if faults is not None and faults.simulation_active else None
        self.metrics = Metrics()
        self.queues: list[deque[Packet]] = [deque() for _ in range(topology.n)]
        self._pid = itertools.count()
        self._slot = 0
        # Profiled hot path: under perfect synchrony every node agrees on
        # the frame position and the schedule is immutable, so per-slot
        # eligibility is cached per frame position instead of recomputed.
        self._sync = self.drift.is_synchronous
        self._elig_cache: dict[int, tuple[list[bool], list[bool]]] = {}
        # Radio wakeup accounting: who was awake last slot.
        self._was_awake = [False] * topology.n
        self._instrument = bool(instrument)
        self._vectorize = bool(vectorize)
        # Observability: registry series updated per frame from Metrics
        # deltas (the per-slot hot path never touches the registry).
        # With instrument=False the registry and tracer are never touched
        # at all — not even to create idle series.
        if self._instrument:
            reg = registry if registry is not None else default_registry()
            self._obs_collisions = reg.counter(
                "repro_sim_collisions_total",
                "Receiver-side collisions observed by the simulator.").labels()
            self._obs_losses = reg.counter(
                "repro_sim_link_losses_total",
                "Clean receptions destroyed by injected link loss.").labels()
            self._obs_rate = reg.gauge(
                "repro_sim_slots_per_second",
                "Simulated slots per wall-clock second, last run() call."
            ).labels()
        else:
            self._obs_collisions = self._obs_losses = self._obs_rate = None
        self._counted_collisions = 0
        self._counted_losses = 0
        # Lazily built matrices for the vectorized frame kernel.
        self._mats: tuple[np.ndarray, ...] | None = None

    def _eligibility(self, slot: int) -> tuple[list[bool], list[bool]]:
        """Per-node (tx_eligible, listening) flags for this true slot."""
        n = self.topology.n
        length = self.schedule.frame_length
        if self._sync:
            pos = slot % length
            cached = self._elig_cache.get(pos)
            if cached is None:
                tx_mask = self.schedule.tx[pos]
                rx_mask = self.schedule.rx[pos]
                cached = (
                    [bool(tx_mask >> x & 1) for x in range(n)],
                    [bool(rx_mask >> x & 1) for x in range(n)],
                )
                self._elig_cache[pos] = cached
            return cached
        local = [self.drift.local_slot(x, slot, length) for x in range(n)]
        return (
            [bool(self.schedule.tx[local[x]] >> x & 1) for x in range(n)],
            [bool(self.schedule.rx[local[x]] >> x & 1) for x in range(n)],
        )

    # ------------------------------------------------------------------
    def _route(self, holder: int, final_dst: int) -> int | None:
        """Next hop for a packet at *holder* bound for *final_dst*."""
        if final_dst in self.topology.neighbors(holder):
            return final_dst
        hop = self.next_hops.get(holder)
        return hop

    def _enqueue(self, node: int, packet: Packet) -> None:
        if len(self.queues[node]) >= self.queue_limit:
            self.metrics.dropped += 1
            return
        self.queues[node].append(packet)

    def _admit_arrivals(self, slot: int) -> None:
        for src, final_dst in self.traffic.arrivals(slot):
            if self._faults is not None and \
                    not self._faults.node_up(src, slot):
                continue  # a crashed sensor senses nothing
            self.metrics.generated += 1
            hop = self._route(src, final_dst)
            if hop is None:
                self.metrics.dropped += 1
                continue
            self._enqueue(src, Packet(next(self._pid), src, final_dst, slot, hop))

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one slot."""
        slot = self._slot
        n = self.topology.n
        if not self.traffic.saturated:
            self._admit_arrivals(slot)

        # Per-node beliefs about the current frame position (cached when
        # all clocks agree).
        tx_eligible, listening = self._eligibility(slot)

        # Injected node outages: a crashed node neither transmits nor
        # listens (copy the flags — the synchronous path caches them).
        if self._faults is not None:
            up = [self._faults.node_up(x, slot) for x in range(n)]
            down = n - sum(up)
            if down:
                self.metrics.record_nodes_down(down)
                tx_eligible = [tx_eligible[x] and up[x] for x in range(n)]
                listening = [listening[x] and up[x] for x in range(n)]

        transmissions: dict[int, Packet | None] = {}
        if self.traffic.saturated:
            for x in range(n):
                if tx_eligible[x] and self.topology.degree(x) > 0:
                    transmissions[x] = None  # broadcast measurement frame
                    for y in self.topology.neighbors(x):
                        self.metrics.record_attempt(x, y)
        else:
            for x in range(n):
                if not tx_eligible[x] or not self.queues[x]:
                    continue
                # Receiver-aware send: first queued packet whose next hop
                # listens this slot (by the *receiver's* clock).
                queue = self.queues[x]
                chosen = None
                for idx, pkt in enumerate(queue):
                    if listening[pkt.next_hop]:
                        chosen = idx
                        break
                if chosen is None:
                    continue
                pkt = queue[chosen]
                del queue[chosen]
                transmissions[x] = pkt
                self.metrics.record_attempt(x, pkt.next_hop)

        # Collision resolution at every listener.
        received: dict[int, tuple[int, Packet | None]] = {}
        for y in range(n):
            if not listening[y]:
                continue
            talkers = [x for x in self.topology.neighbors(y) if x in transmissions]
            if len(talkers) > 1:
                self.metrics.record_collision(y)
                # Optional capture effect (robustness probe; the paper's
                # model has none): one random talker survives the pile-up.
                if self.capture_probability > 0.0 and \
                        self.rng.random() < self.capture_probability:
                    winner = talkers[int(self.rng.integers(len(talkers)))]
                    if self._faults is not None and \
                            not self._faults.link_delivers(slot, winner, y):
                        self.metrics.record_link_loss()
                    else:
                        received[y] = (winner, transmissions[winner])
            elif len(talkers) == 1:
                # Injected link loss destroys an otherwise-clean frame;
                # in queued mode the sender requeues and retransmits.
                if self._faults is not None and \
                        not self._faults.link_delivers(slot, talkers[0], y):
                    self.metrics.record_link_loss()
                else:
                    received[y] = (talkers[0], transmissions[talkers[0]])

        handed_off: set[int] = set()
        for y, (x, pkt) in received.items():
            if pkt is None:
                # Saturated measurement mode: every clean reception is a
                # per-link success.
                self.metrics.record_success(x, y)
                continue
            if pkt.next_hop != y:
                continue  # overheard a frame meant for someone else
            handed_off.add(pkt.pid)
            self.metrics.record_success(x, y)
            if y == pkt.final_dst:
                # Latency counts occupied slots: a packet born and delivered
                # in the same slot spent one slot in the air.
                self.metrics.record_delivery(slot - pkt.created + 1)
            else:
                hop = self._route(y, pkt.final_dst)
                if hop is None:
                    self.metrics.dropped += 1
                else:
                    pkt.next_hop = hop
                    self._enqueue(y, pkt)

        # In queued mode an unheard unicast stays with the sender: the
        # packet was removed above, so requeue at the front on failure
        # (including when only bystanders overheard it).
        if not self.traffic.saturated:
            for x, pkt in transmissions.items():
                if pkt is not None and pkt.pid not in handed_off:
                    self.queues[x].appendleft(pkt)

        # Energy accounting, including the sleep->awake startup cost.
        for x in range(n):
            if x in transmissions:
                awake = True
                self.energy.charge(x, RadioState.TRANSMIT)
            elif listening[x]:
                awake = True
                self.energy.charge(x, RadioState.RECEIVE)
            elif tx_eligible[x] and not self.idle_transmitters_sleep:
                awake = True
                self.energy.charge(x, RadioState.IDLE)
            else:
                awake = False
                self.energy.charge(x, RadioState.SLEEP)
            if awake and not self._was_awake[x]:
                self.energy.charge_wakeup(x)
            self._was_awake[x] = awake

        self._slot += 1
        self.metrics.slots = self._slot

    #: The pre-vectorization scalar slot step, kept by name as the exact
    #: reference the property suite replays against the vectorized kernel.
    _slow_slot_step = step

    def _flush_observability(self, slots: int, elapsed: float) -> None:
        """Publish Metrics deltas to the registry (once per frame/run)."""
        if self._obs_collisions is None:
            return
        collisions = self.metrics.total_collisions()
        self._obs_collisions.inc(collisions - self._counted_collisions)
        self._counted_collisions = collisions
        losses = self.metrics.link_losses
        self._obs_losses.inc(losses - self._counted_losses)
        self._counted_losses = losses
        if elapsed > 0.0:
            self._obs_rate.set(slots / elapsed)

    # ------------------------------------------------------------------
    # vectorized saturated-mode frame kernel
    # ------------------------------------------------------------------
    @property
    def _vector_eligible(self) -> bool:
        """True when the matrix kernel reproduces the scalar path exactly.

        Saturated traffic under perfect synchrony with no fault plan and
        no capture lottery is memoryless: every slot's outcome is a pure
        function of the frame position, so whole frames collapse into one
        batch of matrix operations.
        """
        return (self._vectorize and not self._instrument
                and self.traffic.saturated and self._sync
                and self._faults is None and self.capture_probability == 0.0)

    def _matrices(self) -> tuple[np.ndarray, ...]:
        """Adjacency and eligibility matrices, built once per simulator."""
        if self._mats is None:
            n = self.topology.n
            adj = np.zeros((n, n), dtype=bool)
            for u, v in self.topology.edges:
                adj[u, v] = adj[v, u] = True
            tx_elig = self.schedule.tx_matrix()[:, :n]
            rx = self.schedule.rx_matrix()[:, :n]
            self._mats = (adj, tx_elig, rx)
        return self._mats

    def _run_vectorized(self, frames: int) -> None:
        """Advance *frames* whole frames with per-slot collision resolution
        as matrix algebra; exact replica of ``frames * L`` scalar steps."""
        n = self.topology.n
        length = self.schedule.frame_length
        adj, tx_elig, rx = self._matrices()
        # Rows in *simulated* order: the run may start mid-frame.
        offset = self._slot % length
        if offset:
            tx_elig = np.roll(tx_elig, -offset, axis=0)
            rx = np.roll(rx, -offset, axis=0)
        degree = adj.sum(axis=1)
        # Actual transmitters per slot: eligible and with someone to hear.
        tx = tx_elig & (degree > 0)[None, :]
        adj_i = adj.astype(np.int64)
        talkers = tx.astype(np.int64) @ adj_i      # (L, n): transmitting nbrs
        clean = rx & (talkers == 1)                # unique-talker listeners
        # successes[x, y]: slots where x transmits and y hears exactly one
        # neighbour — x is then necessarily that neighbour when x ~ y.
        successes = (tx.astype(np.int64).T @ clean.astype(np.int64)) * adj_i
        tx_slots = tx.sum(axis=0, dtype=np.int64)  # attempts per frame / nbr
        collisions = (rx & (talkers >= 2)).sum(axis=0, dtype=np.int64)

        m = self.metrics
        for x in np.nonzero(tx_slots)[0]:
            count = int(tx_slots[x]) * frames
            for y in np.nonzero(adj[x])[0]:
                m.attempts[(int(x), int(y))] += count
        for x, y in zip(*np.nonzero(successes)):
            m.successes[(int(x), int(y))] += int(successes[x, y]) * frames
        for y in np.nonzero(collisions)[0]:
            m.collisions[int(y)] += int(collisions[y]) * frames

        # Energy: state occupancy per node over one frame, scaled.
        model = self.energy.model
        idle = (tx_elig & ~tx if not self.idle_transmitters_sleep
                else np.zeros_like(tx))
        awake = tx | rx | idle
        tx_ct, rx_ct, idle_ct = (a.sum(axis=0, dtype=np.int64)
                                 for a in (tx, rx, idle))
        sleep_ct = length - tx_ct - rx_ct - idle_ct
        for state, counts in ((RadioState.TRANSMIT, tx_ct),
                              (RadioState.RECEIVE, rx_ct),
                              (RadioState.IDLE, idle_ct),
                              (RadioState.SLEEP, sleep_ct)):
            self.energy.state_slots[state] += counts * frames
        self.energy.spent_mj += frames * (
            tx_ct * model.tx_mj + rx_ct * model.rx_mj
            + idle_ct * model.idle_mj + sleep_ct * model.sleep_mj)
        # Wakeups: sleep->awake edges.  In the steady state frames repeat,
        # so the frame boundary compares against the previous frame's last
        # slot; frame 0 alone compares against the recorded history.
        prev = np.roll(awake, 1, axis=0)           # steady-state predecessor
        steady = (awake & ~prev).sum(axis=0, dtype=np.int64)
        was = np.asarray(self._was_awake, dtype=bool)
        first = steady - (awake[0] & ~awake[-1]) + (awake[0] & ~was)
        wakeups = first + steady * (frames - 1)
        self.energy.wakeups += wakeups
        self.energy.spent_mj += wakeups * model.wakeup_mj
        self._was_awake = awake[-1].tolist()

        self._slot += frames * length
        m.slots = self._slot

    def run(self, frames: int) -> Metrics:
        """Simulate *frames* whole schedule frames; returns the metrics.

        Instrumented, each frame is bracketed in a ``sim.frame`` span and
        the collision/link-loss counters plus the slots-per-second gauge
        update from :class:`Metrics` deltas at frame boundaries.  With
        ``instrument=False`` neither registry nor tracer is touched and,
        when the run is eligible (see *vectorize*), whole frames execute
        through the vectorized kernel.
        """
        frames = check_int(frames, "frames", minimum=1)
        length = self.schedule.frame_length
        if self._vector_eligible:
            self._run_vectorized(frames)
            return self.metrics
        if not self._instrument:
            for _ in range(frames * length):
                self.step()
            return self.metrics
        started = perf_counter()
        for frame in range(frames):
            with span("sim.frame", frame=frame, slots=length):
                for _ in range(length):
                    self.step()
            self._flush_observability(frames * length,
                                      perf_counter() - started)
        return self.metrics

    def run_slots(self, slots: int) -> Metrics:
        """Simulate an exact number of slots (not necessarily whole frames)."""
        slots = check_int(slots, "slots", minimum=1)
        started = perf_counter()
        for _ in range(slots):
            self.step()
        self._flush_observability(slots, perf_counter() - started)
        return self.metrics

    @property
    def pending_packets(self) -> int:
        """Packets currently queued anywhere in the network."""
        return sum(len(q) for q in self.queues)
