"""Slot-synchronous WSN simulator implementing the paper's system model.

The paper analyses schedules at the slot/collision abstraction of its
section 3: time is slotted, a node in ``T[i]`` may transmit in slot ``i``,
a node in ``R[i]`` listens, everyone else sleeps, and a reception succeeds
iff the receiver listens and **exactly one** of its neighbours transmits.
This subpackage is a from-scratch discrete-event simulator of exactly that
model, used to validate the throughput theory empirically (experiment E8)
and to run the energy/latency studies the introduction motivates (E9):

* :mod:`repro.simulation.topology` — generators for networks in ``N_n^D``;
* :mod:`repro.simulation.traffic` — saturated worst-case, Poisson and
  periodic-sensing traffic;
* :mod:`repro.simulation.energy` — per-slot radio energy accounting;
* :mod:`repro.simulation.engine` — the slot loop and collision resolution;
* :mod:`repro.simulation.metrics` — delivery, throughput and latency
  bookkeeping;
* :mod:`repro.simulation.routing` — BFS sink trees for convergecast;
* :mod:`repro.simulation.drift` — a bounded clock-drift probe for the
  paper's perfect-synchrony assumption.
"""

from repro.simulation.topology import Topology
from repro.simulation.traffic import (
    SaturatedTraffic,
    PoissonTraffic,
    PeriodicSensingTraffic,
)
from repro.simulation.energy import EnergyModel, EnergyAccount, RadioState
from repro.simulation.engine import Simulator, Packet
from repro.simulation.metrics import Metrics
from repro.simulation.routing import sink_tree, next_hop_table
from repro.simulation.drift import ClockDrift

__all__ = [
    "Topology",
    "SaturatedTraffic",
    "PoissonTraffic",
    "PeriodicSensingTraffic",
    "EnergyModel",
    "EnergyAccount",
    "RadioState",
    "Simulator",
    "Packet",
    "Metrics",
    "sink_tree",
    "next_hop_table",
    "ClockDrift",
]
