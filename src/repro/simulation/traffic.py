"""Traffic generators.

Three load patterns drive the experiments:

* :class:`SaturatedTraffic` — the paper's *worst case* (section 5): every
  node always has a packet pending for every neighbour.  Used to validate
  the throughput theory slot-for-slot.
* :class:`PoissonTraffic` — light random load, the regime duty cycling is
  designed for (section 1).
* :class:`PeriodicSensingTraffic` — every node reports to a sink every
  ``period`` slots, the canonical environment-monitoring workload.

A generator exposes ``arrivals(slot)``: the list of ``(src, dst)`` demands
born in that slot, where ``dst`` is a *final* destination (``None`` means
one-hop: the packet is addressed link-locally and the engine treats each
neighbour demand separately).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_int, check_positive_float
from repro.simulation.topology import Topology

__all__ = ["SaturatedTraffic", "PoissonTraffic", "PeriodicSensingTraffic"]


@dataclass(frozen=True)
class SaturatedTraffic:
    """Every node has a packet for every neighbour in every slot.

    The engine special-cases this pattern: queues never drain, matching
    the worst-case assumption under which the paper's throughput
    quantities are defined.
    """

    topology: Topology
    saturated: bool = True

    def arrivals(self, slot: int) -> list[tuple[int, int]]:
        """No discrete arrivals: saturation is a standing demand."""
        return []


@dataclass
class PoissonTraffic:
    """Independent Poisson packet arrivals addressed to random neighbours.

    *rate* is the expected number of packets born per node per slot.  A
    node with no neighbours generates nothing.
    """

    topology: Topology
    rate: float
    rng: np.random.Generator
    saturated: bool = False

    def __post_init__(self) -> None:
        check_positive_float(self.rate, "rate")

    def arrivals(self, slot: int) -> list[tuple[int, int]]:
        """Sample this slot's newborn ``(src, dst)`` pairs."""
        out = []
        counts = self.rng.poisson(self.rate, size=self.topology.n)
        for src in range(self.topology.n):
            nbrs = sorted(self.topology.neighbors(src))
            if not nbrs:
                continue
            for _ in range(int(counts[src])):
                dst = nbrs[int(self.rng.integers(len(nbrs)))]
                out.append((src, dst))
        return out


@dataclass
class PeriodicSensingTraffic:
    """Every non-sink node emits one report to *sink* every *period* slots.

    Node phases are staggered (node ``x`` fires at slots congruent to
    ``x mod period``) so the load is spread over the frame, as real
    sampling schedules do.  Destinations are final — the engine routes
    them hop-by-hop via the sink tree.
    """

    topology: Topology
    sink: int
    period: int
    saturated: bool = False

    def __post_init__(self) -> None:
        check_int(self.sink, "sink", minimum=0, maximum=self.topology.n - 1)
        check_int(self.period, "period", minimum=1)

    def arrivals(self, slot: int) -> list[tuple[int, int]]:
        """Reports born in this slot."""
        out = []
        for src in range(self.topology.n):
            if src != self.sink and slot % self.period == src % self.period:
                out.append((src, self.sink))
        return out
