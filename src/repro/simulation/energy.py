"""Per-slot radio energy model and accounting.

Idle listening is the energy sink duty cycling exists to eliminate (the
paper's introduction cites PAMAS, S-MAC and friends on this).  The model
here is the standard one for CC2420-class sensor radios: each node spends
one of four radio states per slot, each with a fixed charge cost.  Default
currents follow the CC2420 datasheet (transmit at 0 dBm 17.4 mA, receive/
listen 18.8 mA, sleep 0.021 mA) at 3 V with 10 ms slots; what matters for
the experiments is only the *ordering* tx ~ rx ~ idle >> sleep, which is
universal across sensor-node radios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_int, check_nonnegative_float, check_positive_float

__all__ = ["RadioState", "EnergyModel", "EnergyAccount"]


class RadioState(enum.Enum):
    """Radio state of a node during one slot."""

    TRANSMIT = "transmit"
    RECEIVE = "receive"    # listening and successfully/unsuccessfully receiving
    IDLE = "idle"          # awake and eligible but with nothing to do
    SLEEP = "sleep"


@dataclass(frozen=True)
class EnergyModel:
    """Energy cost (millijoules) charged per slot in each radio state.

    ``wakeup_mj`` is charged once per sleep-to-awake transition: real
    radios pay a startup cost (oscillator stabilization, ~1-2 ms at
    receive current) every time they wake, which penalizes schedules that
    scatter a node's active slots instead of batching them.
    """

    tx_mj: float = 0.522      # 17.4 mA * 3 V * 10 ms
    rx_mj: float = 0.564      # 18.8 mA * 3 V * 10 ms
    idle_mj: float = 0.564    # idle listening costs as much as receiving
    sleep_mj: float = 0.00063  # 0.021 mA * 3 V * 10 ms
    wakeup_mj: float = 0.085  # ~1.5 ms startup at rx current

    def __post_init__(self) -> None:
        check_nonnegative_float(self.tx_mj, "tx_mj")
        check_nonnegative_float(self.rx_mj, "rx_mj")
        check_nonnegative_float(self.idle_mj, "idle_mj")
        check_nonnegative_float(self.sleep_mj, "sleep_mj")
        check_nonnegative_float(self.wakeup_mj, "wakeup_mj")

    def cost(self, state: RadioState) -> float:
        """Per-slot cost of *state* in millijoules."""
        if state is RadioState.TRANSMIT:
            return self.tx_mj
        if state is RadioState.RECEIVE:
            return self.rx_mj
        if state is RadioState.IDLE:
            return self.idle_mj
        return self.sleep_mj


@dataclass
class EnergyAccount:
    """Accumulates per-node energy spend and state occupancy."""

    n: int
    model: EnergyModel
    spent_mj: np.ndarray = field(init=False)
    state_slots: dict[RadioState, np.ndarray] = field(init=False)
    wakeups: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        check_int(self.n, "n", minimum=1)
        self.spent_mj = np.zeros(self.n, dtype=np.float64)
        self.state_slots = {s: np.zeros(self.n, dtype=np.int64) for s in RadioState}
        self.wakeups = np.zeros(self.n, dtype=np.int64)
        # charge() runs once per node per slot — the engine's hottest call
        # (profiled); resolve the per-state cost once here.
        self._cost = {s: self.model.cost(s) for s in RadioState}

    def charge(self, node: int, state: RadioState) -> None:
        """Charge *node* for one slot spent in *state*."""
        self.spent_mj[node] += self._cost[state]
        self.state_slots[state][node] += 1

    def charge_wakeup(self, node: int) -> None:
        """Charge *node* one radio startup (sleep -> awake transition)."""
        self.spent_mj[node] += self.model.wakeup_mj
        self.wakeups[node] += 1

    def total_mj(self) -> float:
        """Network-wide energy spend in millijoules."""
        return float(self.spent_mj.sum())

    def per_node_mj(self) -> np.ndarray:
        """Copy of the per-node spend vector."""
        return self.spent_mj.copy()

    def awake_fraction(self) -> float:
        """Fraction of node-slots spent awake (transmit, receive or idle)."""
        awake = sum(
            int(self.state_slots[s].sum())
            for s in (RadioState.TRANSMIT, RadioState.RECEIVE, RadioState.IDLE)
        )
        total = sum(int(v.sum()) for v in self.state_slots.values())
        return awake / total if total else 0.0

    def jain_fairness(self) -> float:
        """Jain's fairness index of per-node energy spend (1 = perfectly even).

        ``(sum x)^2 / (n * sum x^2)``; the balanced-energy experiments (E10)
        compare this between the plain and balanced constructions.
        """
        x = self.spent_mj
        denom = self.n * float((x * x).sum())
        if denom == 0.0:
            return 1.0
        return float(x.sum()) ** 2 / denom

    def lifetime_slots(self, budget_mj: float) -> int:
        """Slots until the hungriest node exhausts *budget_mj*, extrapolating
        the observed average per-slot drain (first-node-dies definition)."""
        budget_mj = check_positive_float(budget_mj, "budget_mj")
        slots = sum(int(v.sum()) for v in self.state_slots.values()) // self.n
        if slots == 0:
            raise ValueError("no slots recorded yet")
        worst_rate = float(self.spent_mj.max()) / slots
        if worst_rate == 0.0:
            return 2**63 - 1
        return int(budget_mj / worst_rate)
