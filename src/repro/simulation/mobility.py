"""Node mobility: evolving topologies inside the class ``N_n^D``.

Topology transparency exists because sensor topologies *change* — nodes
move, fade, die and reappear.  This module generates topology trajectories
(sequences of :class:`Topology` snapshots that each stay inside the class
bound) and lets the engine switch between them mid-run:

* :class:`RandomWaypointMobility` — points move toward random waypoints in
  the unit square; edges are recomputed from the radio radius and capped
  to the degree bound at every epoch;
* :class:`EdgeChurnMobility` — graph-level churn: each epoch replaces a
  few random edges with fresh in-class edges (the abstract counterpart,
  used by the dynamic-topology experiments);
* :func:`run_with_mobility` — drives a :class:`Simulator` across the
  epochs of a trajectory, refreshing routing at each switch, and returns
  the merged metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._validation import check_class_params, check_int, check_positive_float
from repro.simulation.engine import Simulator
from repro.simulation.metrics import Metrics
from repro.simulation.routing import sink_tree
from repro.simulation.topology import Topology, _cap_degrees

__all__ = ["RandomWaypointMobility", "EdgeChurnMobility", "run_with_mobility"]


@dataclass
class RandomWaypointMobility:
    """Random-waypoint movement with unit-disk connectivity.

    Nodes live in the unit square; each has a current waypoint toward
    which it moves *speed* per epoch, picking a new waypoint on arrival.
    ``snapshot()`` yields the current degree-capped unit-disk topology.
    """

    n: int
    d: int
    radius: float
    speed: float
    rng: np.random.Generator

    def __post_init__(self) -> None:
        self.n, self.d = check_class_params(self.n, self.d)
        check_positive_float(self.radius, "radius")
        check_positive_float(self.speed, "speed")
        self._pos = self.rng.uniform(0.0, 1.0, size=(self.n, 2))
        self._way = self.rng.uniform(0.0, 1.0, size=(self.n, 2))

    def step(self) -> None:
        """Advance every node one epoch toward its waypoint."""
        delta = self._way - self._pos
        dist = np.linalg.norm(delta, axis=1, keepdims=True)
        arrived = dist[:, 0] <= self.speed
        move = np.where(dist > 0, delta / np.maximum(dist, 1e-12), 0.0)
        self._pos = np.where(arrived[:, None], self._way,
                             self._pos + move * self.speed)
        if arrived.any():
            self._way[arrived] = self.rng.uniform(
                0.0, 1.0, size=(int(arrived.sum()), 2))

    def snapshot(self) -> Topology:
        """The current connectivity graph, capped into ``N_n^D``."""
        diffs = self._pos[:, None, :] - self._pos[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diffs, diffs)
        within = dist2 <= self.radius * self.radius
        edges = [(i, j) for i in range(self.n) for j in range(i + 1, self.n)
                 if within[i, j]]
        return Topology(self.n, _cap_degrees(edges, self.n, self.d, self.rng))

    def trajectory(self, epochs: int) -> Iterator[Topology]:
        """Yield *epochs* successive snapshots, stepping between them."""
        check_int(epochs, "epochs", minimum=1)
        for _ in range(epochs):
            yield self.snapshot()
            self.step()


@dataclass
class EdgeChurnMobility:
    """Graph-level churn: swap *churn* random edges per epoch, in-class."""

    topology: Topology
    d: int
    churn: int
    rng: np.random.Generator

    def __post_init__(self) -> None:
        _, self.d = check_class_params(self.topology.n, self.d)
        check_int(self.churn, "churn", minimum=0)
        self.topology.assert_in_class(self.topology.n, self.d)

    def step(self) -> None:
        """Replace up to ``churn`` edges with fresh in-class ones."""
        n = self.topology.n
        edges = set(self.topology.edges)
        removable = sorted(edges)
        self.rng.shuffle(removable)  # type: ignore[arg-type]
        for e in removable[:self.churn]:
            edges.discard(e)
        degree = [0] * n
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        added, attempts = 0, 0
        while added < self.churn and attempts < 50 * max(1, self.churn):
            attempts += 1
            u, v = int(self.rng.integers(n)), int(self.rng.integers(n))
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in edges or degree[u] >= self.d or degree[v] >= self.d:
                continue
            edges.add(e)
            degree[u] += 1
            degree[v] += 1
            added += 1
        self.topology = Topology(n, frozenset(edges))

    def snapshot(self) -> Topology:
        """The current topology."""
        return self.topology

    def trajectory(self, epochs: int) -> Iterator[Topology]:
        """Yield *epochs* successive snapshots, stepping between them."""
        check_int(epochs, "epochs", minimum=1)
        for _ in range(epochs):
            yield self.snapshot()
            self.step()


def run_with_mobility(schedule, traffic_factory, mobility, *,
                      epochs: int, slots_per_epoch: int,
                      sink: int | None = None,
                      simulator_kwargs: dict | None = None) -> Metrics:
    """Simulate across a mobility trajectory with one schedule throughout.

    For each epoch: take the next topology snapshot, rebuild traffic via
    ``traffic_factory(topology)`` and (when *sink* is given) the sink
    tree, run ``slots_per_epoch`` slots, and accumulate metrics.  The
    *schedule never changes* — that is the topology-transparent deployment
    model this module exists to exercise.

    Returns the merged :class:`Metrics` across all epochs.
    """
    check_int(epochs, "epochs", minimum=1)
    check_int(slots_per_epoch, "slots_per_epoch", minimum=1)
    merged = Metrics()
    kwargs = dict(simulator_kwargs or {})
    for topo in mobility.trajectory(epochs):
        traffic = traffic_factory(topo)
        hops = sink_tree(topo, sink) if sink is not None else None
        sim = Simulator(topo, schedule, traffic, next_hops=hops, **kwargs)
        metrics = sim.run_slots(slots_per_epoch)
        merged.slots += metrics.slots
        merged.generated += metrics.generated
        merged.delivered += metrics.delivered
        merged.dropped += metrics.dropped
        merged.latencies.extend(metrics.latencies)
        for key, value in metrics.attempts.items():
            merged.attempts[key] += value
        for key, value in metrics.successes.items():
            merged.successes[key] += value
        for key, value in metrics.collisions.items():
            merged.collisions[key] += value
    return merged
