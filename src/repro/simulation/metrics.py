"""Delivery, throughput and latency bookkeeping for simulation runs."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_int

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Counters accumulated by :class:`repro.simulation.engine.Simulator`.

    Attributes
    ----------
    slots:
        Number of simulated slots.
    attempts:
        Per-directed-link transmission attempts ``(src, dst) -> count``.
    successes:
        Per-directed-link successful receptions.
    collisions:
        Per-receiver count of slots in which it listened and >= 2
        neighbours transmitted.
    generated / delivered:
        End-to-end packet counts (delivered means reached its *final*
        destination).
    latencies:
        End-to-end delivery latencies in slots.
    link_losses:
        Clean receptions destroyed by injected per-link loss
        (:class:`repro.faults.FaultPlan`), not by collisions.
    node_down_slots:
        Total node-slots spent crashed under an injected fault plan
        (summed over nodes; divide by ``slots * n`` for the fraction).
    """

    slots: int = 0
    attempts: dict[tuple[int, int], int] = field(default_factory=lambda: defaultdict(int))
    successes: dict[tuple[int, int], int] = field(default_factory=lambda: defaultdict(int))
    collisions: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    generated: int = 0
    delivered: int = 0
    dropped: int = 0
    latencies: list[int] = field(default_factory=list)
    link_losses: int = 0
    node_down_slots: int = 0

    # -- recording (engine-facing) ------------------------------------------
    def record_attempt(self, src: int, dst: int) -> None:
        """Count a transmission attempt on directed link (src, dst)."""
        self.attempts[(src, dst)] += 1

    def record_success(self, src: int, dst: int) -> None:
        """Count a successful reception on directed link (src, dst)."""
        self.successes[(src, dst)] += 1

    def record_collision(self, receiver: int) -> None:
        """Count a slot in which *receiver* heard >= 2 transmitters."""
        self.collisions[receiver] += 1

    def record_delivery(self, latency: int) -> None:
        """Count an end-to-end delivery with the given latency in slots."""
        check_int(latency, "latency", minimum=0)
        self.delivered += 1
        self.latencies.append(latency)

    def record_link_loss(self) -> None:
        """Count a clean reception destroyed by injected link loss."""
        self.link_losses += 1

    def record_nodes_down(self, count: int) -> None:
        """Count *count* crashed nodes for the current slot."""
        self.node_down_slots += count

    # -- reporting ------------------------------------------------------------
    def link_success_rate(self, src: int, dst: int) -> float:
        """Successes per attempt on directed link ``(src, dst)`` (0 if unused)."""
        a = self.attempts.get((src, dst), 0)
        return self.successes.get((src, dst), 0) / a if a else 0.0

    def link_throughput(self, src: int, dst: int, frame_length: int) -> float:
        """Successful receptions per frame on directed link ``(src, dst)``."""
        check_int(frame_length, "frame_length", minimum=1)
        frames = self.slots / frame_length
        if frames == 0:
            return 0.0
        return self.successes.get((src, dst), 0) / frames

    def min_link_throughput(self, links, frame_length: int) -> float:
        """Minimum per-frame success count over the given directed links."""
        return min(
            (self.link_throughput(s, d, frame_length) for s, d in links),
            default=0.0,
        )

    def mean_link_throughput(self, links, frame_length: int) -> float:
        """Mean per-frame success count over the given directed links."""
        values = [self.link_throughput(s, d, frame_length) for s, d in links]
        return float(np.mean(values)) if values else 0.0

    def delivery_ratio(self) -> float:
        """Delivered / generated end-to-end packets (1.0 when none generated)."""
        return self.delivered / self.generated if self.generated else 1.0

    def latency_percentile(self, p: float) -> float:
        """The *p*-th percentile of end-to-end latency in slots (NaN if empty)."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), p))

    def mean_latency(self) -> float:
        """Mean end-to-end latency in slots (NaN if no deliveries)."""
        if not self.latencies:
            return float("nan")
        return float(np.mean(self.latencies))

    def total_collisions(self) -> int:
        """Total receiver-side collision events."""
        return sum(self.collisions.values())

    def node_down_fraction(self, n: int) -> float:
        """Fraction of node-slots spent crashed (0.0 with no faults)."""
        check_int(n, "n", minimum=1)
        if self.slots == 0:
            return 0.0
        return self.node_down_slots / (self.slots * n)
