"""Per-slot event tracing for simulator debugging and inspection.

The engine's metrics are aggregates; when a run misbehaves you want the
slot-by-slot story.  :class:`TraceRecorder` hooks into a
:class:`~repro.simulation.engine.Simulator` (post-step polling — the
engine needs no changes) and records, per slot: who transmitted, who
listened, which receptions succeeded and which collided.  Traces are
bounded ring buffers and export to CSV or JSONL (the latter round-trips
through :meth:`TraceRecorder.read_jsonl`).
"""

from __future__ import annotations

import csv
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro._validation import check_int
from repro.simulation.engine import Simulator

__all__ = ["SlotEvent", "TraceRecorder"]


@dataclass(frozen=True)
class SlotEvent:
    """What happened in one slot."""

    slot: int
    transmitters: tuple[int, ...]
    listeners: tuple[int, ...]
    successes: tuple[tuple[int, int], ...]   # (src, dst)
    collisions: tuple[int, ...]              # receivers that heard >= 2

    def to_dict(self) -> dict:
        """JSON-serializable form (one :meth:`TraceRecorder.to_jsonl` line)."""
        return {"slot": self.slot,
                "transmitters": list(self.transmitters),
                "listeners": list(self.listeners),
                "successes": [list(link) for link in self.successes],
                "collisions": list(self.collisions)}

    @classmethod
    def from_dict(cls, doc: dict) -> "SlotEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        return cls(slot=int(doc["slot"]),
                   transmitters=tuple(doc["transmitters"]),
                   listeners=tuple(doc["listeners"]),
                   successes=tuple((src, dst)
                                   for src, dst in doc["successes"]),
                   collisions=tuple(doc["collisions"]))


class TraceRecorder:
    """Bounded slot-event trace around a :class:`Simulator`.

    Usage::

        trace = TraceRecorder(sim, capacity=1000)
        trace.run(frames=3)            # instead of sim.run(...)
        trace.events[-1].successes
        trace.to_csv("trace.csv")

    The recorder re-derives per-slot facts from metric deltas, so it works
    with any traffic mode and never perturbs the simulation.
    """

    def __init__(self, simulator: Simulator, *, capacity: int = 10_000):
        self.simulator = simulator
        self.capacity = check_int(capacity, "capacity", minimum=1)
        self.events: deque[SlotEvent] = deque(maxlen=self.capacity)

    def _snapshot_counts(self) -> tuple[dict, dict]:
        metrics = self.simulator.metrics
        return dict(metrics.successes), dict(metrics.collisions)

    def step(self) -> SlotEvent:
        """Advance the simulation one slot and record what happened."""
        sim = self.simulator
        slot = sim.metrics.slots
        before_succ, before_coll = self._snapshot_counts()
        # Eligibility as the nodes see it (drift-aware), before stepping.
        length = sim.schedule.frame_length
        n = sim.topology.n
        local = [sim.drift.local_slot(x, slot, length) for x in range(n)]
        listeners = tuple(
            x for x in range(n) if sim.schedule.rx[local[x]] >> x & 1
        )
        sim.step()
        after_succ, after_coll = self._snapshot_counts()
        successes = tuple(
            link for link in after_succ
            if after_succ[link] > before_succ.get(link, 0)
        )
        collisions = tuple(
            r for r in after_coll
            if after_coll[r] > before_coll.get(r, 0)
        )
        # Transmitters: senders of this slot's successes are known exactly;
        # for collided receivers the engine does not expose the talker set,
        # so report the eligible transmitters among their neighbours.
        transmitters = sorted({src for src, _ in successes})
        for r in collisions:
            for x in sim.topology.neighbors(r):
                if sim.schedule.tx[local[x]] >> x & 1:
                    transmitters.append(x)
        event = SlotEvent(
            slot=slot,
            transmitters=tuple(sorted(set(transmitters))),
            listeners=listeners,
            successes=tuple(sorted(successes)),
            collisions=tuple(sorted(collisions)),
        )
        self.events.append(event)
        return event

    def run(self, frames: int) -> None:
        """Record *frames* whole frames."""
        frames = check_int(frames, "frames", minimum=1)
        for _ in range(frames * self.simulator.schedule.frame_length):
            self.step()

    def run_slots(self, slots: int) -> None:
        """Record an exact number of slots."""
        slots = check_int(slots, "slots", minimum=1)
        for _ in range(slots):
            self.step()

    def to_csv(self, path: str | Path) -> None:
        """Export the trace: one row per slot, sets as space-joined ids."""
        with Path(path).open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["slot", "transmitters", "listeners",
                             "successes", "collisions"])
            for e in self.events:
                writer.writerow([
                    e.slot,
                    " ".join(map(str, e.transmitters)),
                    " ".join(map(str, e.listeners)),
                    " ".join(f"{s}->{d}" for s, d in e.successes),
                    " ".join(map(str, e.collisions)),
                ])

    def to_jsonl(self, path: str | Path) -> None:
        """Export the trace as JSON lines: one :meth:`SlotEvent.to_dict`
        object per slot, in slot order — the lossless counterpart of
        :meth:`to_csv` (ids stay integers, links stay pairs)."""
        with Path(path).open("w") as fh:
            for e in self.events:
                fh.write(json.dumps(e.to_dict(), sort_keys=True) + "\n")

    @staticmethod
    def read_jsonl(path: str | Path) -> list[SlotEvent]:
        """Load the events a :meth:`to_jsonl` export wrote, in order."""
        events = []
        with Path(path).open() as fh:
            for line in fh:
                if line.strip():
                    events.append(SlotEvent.from_dict(json.loads(line)))
        return events
