"""Bounded clock-drift probe.

The paper assumes "an efficient synchronization scheme is available"
(section 1) and reasons in perfectly aligned slots.  This module supplies
the substitution's honesty check: a per-node integer slot offset, bounded
by ``max_offset``, that shifts which frame position each node *believes*
the current slot to be.  With offsets of zero the simulator reproduces the
paper's model exactly; growing the bound shows how fast the guarantees
erode when the synchrony assumption weakens (experiment E9 option).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_int

__all__ = ["ClockDrift"]


@dataclass(frozen=True)
class ClockDrift:
    """Static per-node slot offsets drawn uniformly from ``[-max_offset, max_offset]``."""

    offsets: tuple[int, ...]

    @classmethod
    def none(cls, n: int) -> "ClockDrift":
        """Perfect synchrony: all offsets zero (the paper's model)."""
        check_int(n, "n", minimum=1)
        return cls(tuple([0] * n))

    @classmethod
    def uniform(cls, n: int, max_offset: int,
                rng: np.random.Generator | None = None) -> "ClockDrift":
        """Independent offsets uniform on ``[-max_offset, max_offset]``."""
        check_int(n, "n", minimum=1)
        check_int(max_offset, "max_offset", minimum=0)
        rng = rng if rng is not None else np.random.default_rng()
        offs = rng.integers(-max_offset, max_offset + 1, size=n)
        return cls(tuple(int(o) for o in offs))

    def local_slot(self, node: int, true_slot: int, frame_length: int) -> int:
        """The frame position *node* believes *true_slot* occupies."""
        check_int(true_slot, "true_slot", minimum=0)
        check_int(frame_length, "frame_length", minimum=1)
        return (true_slot + self.offsets[node]) % frame_length

    @property
    def is_synchronous(self) -> bool:
        """True iff every offset is zero."""
        return all(o == 0 for o in self.offsets)
