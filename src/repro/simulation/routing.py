"""Convergecast routing: BFS sink trees and next-hop tables.

Multi-hop experiments (periodic sensing to a sink) need a forwarding rule.
The standard WSN choice is a shortest-path tree rooted at the sink,
computed once; every node forwards to its tree parent.  Topology
transparency means the *schedule* need not change when the tree does —
only this table is recomputed, which is the point experiment E9's dynamic
scenario demonstrates.
"""

from __future__ import annotations

from collections import deque

from repro._validation import check_int
from repro.simulation.topology import Topology

__all__ = ["sink_tree", "next_hop_table", "hop_counts"]


def sink_tree(topology: Topology, sink: int) -> dict[int, int]:
    """BFS parent pointers toward *sink*: ``parent[x]`` is x's next hop.

    Ties are broken toward the smallest-id parent for determinism.  Nodes
    unreachable from the sink are absent from the result.
    """
    check_int(sink, "sink", minimum=0, maximum=topology.n - 1)
    parent: dict[int, int] = {}
    seen = {sink}
    queue = deque([sink])
    while queue:
        u = queue.popleft()
        for v in sorted(topology.neighbors(u)):
            if v not in seen:
                seen.add(v)
                parent[v] = u
                queue.append(v)
    return parent


def next_hop_table(topology: Topology, sink: int) -> dict[int, int]:
    """Alias of :func:`sink_tree` under its forwarding-table name."""
    return sink_tree(topology, sink)


def hop_counts(topology: Topology, sink: int) -> dict[int, int]:
    """Hop distance of every reachable node from *sink* (sink itself is 0)."""
    parent = sink_tree(topology, sink)
    counts = {sink: 0}
    for node in parent:
        # Walk up; paths are short, memoize along the way.
        path = []
        x = node
        while x not in counts:
            path.append(x)
            x = parent[x]
        base = counts[x]
        for i, y in enumerate(reversed(path), start=1):
            counts[y] = base + i
    return counts
