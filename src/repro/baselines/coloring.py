"""Topology-dependent TDMA from a greedy distance-2 colouring.

The classical alternative to topology transparency: compute a colouring of
the *square* of the network (nodes at distance <= 2 get distinct colours)
and give each colour class its own slot.  Within the topology it was
computed for, every transmission is collision-free at every neighbour and
the frame is as short as the colouring is good — but the schedule encodes
the topology, so any change can silently break links until a recolouring
is disseminated.  Experiment E9's dynamic scenario measures exactly that
failure next to the topology-transparent construction's unbroken service.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.simulation.topology import Topology

__all__ = ["distance2_coloring", "coloring_schedule"]


def distance2_coloring(topology: Topology) -> list[int]:
    """Greedy colouring of the topology's square, largest-degree-first.

    Returns a colour per node such that any two nodes at hop distance 1 or
    2 receive distinct colours — the standard sufficient condition for
    collision-free TDMA (no receiver hears two same-slot transmitters).
    """
    n = topology.n
    two_hop: list[set[int]] = [set() for _ in range(n)]
    for x in range(n):
        for y in topology.neighbors(x):
            two_hop[x].add(y)
            for z in topology.neighbors(y):
                if z != x:
                    two_hop[x].add(z)
    order = sorted(range(n), key=lambda x: -len(two_hop[x]))
    colors = [-1] * n
    for x in order:
        used = {colors[y] for y in two_hop[x] if colors[y] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[x] = c
    return colors


def coloring_schedule(topology: Topology, n: int | None = None) -> Schedule:
    """Non-sleeping TDMA whose slot ``c`` transmitters are colour class ``c``.

    *n* (defaulting to ``topology.n``) sets the schedule's node-id space;
    ids beyond the topology never transmit.  The result is collision-free
    on *this* topology but carries no guarantee on any other — it is the
    non-transparent baseline.
    """
    colors = distance2_coloring(topology)
    num_colors = max(colors) + 1 if colors else 1
    n = topology.n if n is None else n
    if n < topology.n:
        raise ValueError(f"n={n} smaller than the topology ({topology.n} nodes)")
    tx = [0] * num_colors
    for x, c in enumerate(colors):
        tx[c] |= 1 << x
    full = (1 << n) - 1
    rx = tuple(full & ~t for t in tx)
    return Schedule(n, tuple(tx), rx)
