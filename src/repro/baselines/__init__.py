"""Comparison schemes the paper's approach is evaluated against.

* :mod:`repro.baselines.naive` — naive k-slot duty cycling: every node is
  awake in one slot out of ``k`` at an independent offset.  This is the
  introduction's cautionary example: neighbours' traffic, formerly spread
  over ``k`` slots, concentrates into the receiver's single wake slot and
  collides.
* :mod:`repro.baselines.coloring` — topology-*dependent* TDMA from a
  greedy distance-2 colouring: collision-free and short-framed for one
  fixed topology, but its guarantee evaporates the moment the topology
  changes — the foil that motivates topology transparency.
* :mod:`repro.baselines.aloha` — slotted p-persistent ALOHA: the
  unscheduled pole.  No synchronized frame, no guarantee of any kind,
  full-time listening energy.
"""

from repro.baselines.naive import naive_duty_cycle
from repro.baselines.coloring import distance2_coloring, coloring_schedule
from repro.baselines.aloha import AlohaSimulator

__all__ = ["naive_duty_cycle", "distance2_coloring", "coloring_schedule",
           "AlohaSimulator"]
