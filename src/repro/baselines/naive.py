"""Naive k-slot duty cycling (the introduction's cautionary baseline).

"Consider a network in which each node is scheduled to be awake in one of
k slots.  Since a node has to wait until the receiver wakes up before it
can forward the packet, transmissions from neighbors, which were
distributed in k slots, now happen in one slot, making a collision very
likely."  — section 1.

This module builds exactly that schedule: each node picks (or is assigned)
one wake slot out of ``k``; in its wake slot it listens, and in every other
slot it may transmit (to reach neighbours awake then).  No
topology-transparency guarantee holds — experiment E9 measures how badly
it collides compared to the paper's construction at a matched duty cycle.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_int
from repro.core.schedule import Schedule

__all__ = ["naive_duty_cycle"]


def naive_duty_cycle(n: int, k: int, *, offsets: list[int] | None = None,
                     rng: np.random.Generator | None = None) -> Schedule:
    """The naive scheme: node *x* listens in slot ``offset[x]``, may transmit
    in the other ``k - 1`` slots of each frame.

    Parameters
    ----------
    n:
        Number of nodes.
    k:
        Frame length (the duty-cycle knob: each node listens ``1/k`` of
        the time).
    offsets:
        Per-node wake slots in ``[0, k)``; random when omitted.
    """
    n = check_int(n, "n", minimum=1)
    k = check_int(k, "k", minimum=2)
    if offsets is None:
        rng = rng if rng is not None else np.random.default_rng()
        offsets = [int(o) for o in rng.integers(0, k, size=n)]
    if len(offsets) != n:
        raise ValueError(f"need {n} offsets, got {len(offsets)}")
    for i, o in enumerate(offsets):
        check_int(o, f"offsets[{i}]", minimum=0, maximum=k - 1)
    tx = [0] * k
    rx = [0] * k
    for x, o in enumerate(offsets):
        rx[o] |= 1 << x
        for slot in range(k):
            if slot != o:
                tx[slot] |= 1 << x
    return Schedule(n, tuple(tx), tuple(rx))
