"""Slotted p-persistent ALOHA: the unscheduled comparator.

The opposite pole from scheduling: no frame, no eligibility — every node
is always awake and transmits a queued packet in any slot with
probability ``p``.  The classic random-access baseline shows what the
paper's schedules buy relative to *no* coordination at all: ALOHA has no
worst-case guarantee of any kind (a link can starve arbitrarily long) and
pays full-time listening energy, but needs no synchronization or class
bound.

This simulator shares the collision rule, topology, traffic, metrics and
energy accounting of :mod:`repro.simulation`, so its numbers are directly
comparable with the engine's.
"""

from __future__ import annotations

import itertools
from collections import deque

import numpy as np

from repro._validation import check_int, check_probability
from repro.simulation.energy import EnergyAccount, EnergyModel, RadioState
from repro.simulation.engine import Packet
from repro.simulation.metrics import Metrics
from repro.simulation.topology import Topology

__all__ = ["AlohaSimulator"]


class AlohaSimulator:
    """Slot-synchronous p-persistent ALOHA over a topology.

    Mirrors the scheduling engine's queued mode: Poisson/periodic traffic,
    per-node FIFO queues, next-hop routing, the exactly-one-talker
    collision rule, and the same per-slot energy accounting (every node
    pays receive-current whenever it is not transmitting — ALOHA never
    sleeps).
    """

    def __init__(self, topology: Topology, traffic, p: float,
                 rng: np.random.Generator, *,
                 energy_model: EnergyModel | None = None,
                 next_hops: dict[int, int] | None = None,
                 queue_limit: int = 64) -> None:
        self.topology = topology
        self.traffic = traffic
        self.p = check_probability(p, "p")
        self.rng = rng
        self.energy = EnergyAccount(topology.n, energy_model or EnergyModel())
        self.next_hops = next_hops or {}
        self.queue_limit = check_int(queue_limit, "queue_limit", minimum=1)
        self.metrics = Metrics()
        self.queues: list[deque[Packet]] = [deque() for _ in range(topology.n)]
        self._pid = itertools.count()
        self._slot = 0
        # ALOHA never sleeps: charge every node one wakeup at start.
        for x in range(topology.n):
            self.energy.charge_wakeup(x)

    def _route(self, holder: int, final_dst: int) -> int | None:
        if final_dst in self.topology.neighbors(holder):
            return final_dst
        return self.next_hops.get(holder)

    def _enqueue(self, node: int, packet: Packet) -> None:
        if len(self.queues[node]) >= self.queue_limit:
            self.metrics.dropped += 1
            return
        self.queues[node].append(packet)

    def step(self) -> None:
        """Advance one slot."""
        slot = self._slot
        n = self.topology.n
        for src, final_dst in self.traffic.arrivals(slot):
            self.metrics.generated += 1
            hop = self._route(src, final_dst)
            if hop is None:
                self.metrics.dropped += 1
                continue
            self._enqueue(src, Packet(next(self._pid), src, final_dst,
                                      slot, hop))

        transmitting: dict[int, Packet] = {}
        coin = self.rng.random(n)
        for x in range(n):
            if self.queues[x] and coin[x] < self.p:
                transmitting[x] = self.queues[x].popleft()
                self.metrics.record_attempt(x, transmitting[x].next_hop)

        handed_off: set[int] = set()
        for y in range(n):
            if y in transmitting:
                continue  # half-duplex: a talker cannot receive
            talkers = [x for x in self.topology.neighbors(y)
                       if x in transmitting]
            if len(talkers) > 1:
                self.metrics.record_collision(y)
                continue
            if len(talkers) != 1:
                continue
            x = talkers[0]
            pkt = transmitting[x]
            if pkt.next_hop != y:
                continue
            handed_off.add(pkt.pid)
            self.metrics.record_success(x, y)
            if y == pkt.final_dst:
                self.metrics.record_delivery(slot - pkt.created + 1)
            else:
                hop = self._route(y, pkt.final_dst)
                if hop is None:
                    self.metrics.dropped += 1
                else:
                    pkt.next_hop = hop
                    self._enqueue(y, pkt)

        for x, pkt in transmitting.items():
            if pkt.pid not in handed_off:
                self.queues[x].appendleft(pkt)

        for x in range(n):
            self.energy.charge(
                x, RadioState.TRANSMIT if x in transmitting
                else RadioState.RECEIVE)

        self._slot += 1
        self.metrics.slots = self._slot

    def run_slots(self, slots: int) -> Metrics:
        """Simulate an exact number of slots."""
        slots = check_int(slots, "slots", minimum=1)
        for _ in range(slots):
            self.step()
        return self.metrics

    @property
    def pending_packets(self) -> int:
        """Packets currently queued anywhere in the network."""
        return sum(len(q) for q in self.queues)
