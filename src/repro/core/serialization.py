"""Schedule serialization: JSON for interchange, compact dict round trips.

Deployments compute a schedule once (offline, on a workstation) and flash
it to motes; the interchange format here captures everything needed to
reproduce the slot tables plus the class parameters the guarantee is
quoted for.  The format is versioned and validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._validation import check_int
from repro.core.schedule import Schedule

__all__ = ["schedule_to_dict", "schedule_from_dict", "save_schedule",
           "load_schedule", "topology_to_dict", "topology_from_dict",
           "family_to_dict", "family_from_dict"]

FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule, *, meta: dict[str, Any] | None = None
                     ) -> dict[str, Any]:
    """Serializable representation: per-slot node lists plus metadata.

    Node lists (rather than opaque bitmask integers) keep the format
    readable and language-neutral; frames are short, so size is a non-issue.
    """
    doc: dict[str, Any] = {
        "format": "repro-schedule",
        "version": FORMAT_VERSION,
        "n": schedule.n,
        "tx": [sorted(schedule.tx_set(i)) for i in range(schedule.frame_length)],
        "rx": [sorted(schedule.rx_set(i)) for i in range(schedule.frame_length)],
    }
    if meta:
        doc["meta"] = dict(meta)
    return doc


def schedule_from_dict(doc: dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`, with full validation."""
    if not isinstance(doc, dict):
        raise ValueError("schedule document must be a mapping")
    if doc.get("format") != "repro-schedule":
        raise ValueError(f"not a repro-schedule document: {doc.get('format')!r}")
    version = doc.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    n = check_int(doc.get("n"), "n", minimum=1)
    tx = doc.get("tx")
    rx = doc.get("rx")
    if not isinstance(tx, list) or not isinstance(rx, list):
        raise ValueError("tx and rx must be lists of node lists")
    return Schedule.from_sets(n, tx, rx)


def topology_to_dict(topology) -> dict[str, Any]:
    """Serializable representation of a simulation topology."""
    return {
        "format": "repro-topology",
        "version": FORMAT_VERSION,
        "n": topology.n,
        "edges": [list(e) for e in sorted(topology.edges)],
    }


def topology_from_dict(doc: dict[str, Any]):
    """Inverse of :func:`topology_to_dict`, with validation."""
    from repro.simulation.topology import Topology

    if not isinstance(doc, dict) or doc.get("format") != "repro-topology":
        raise ValueError("not a repro-topology document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported topology version {doc.get('version')!r}")
    n = check_int(doc.get("n"), "n", minimum=1)
    edges = doc.get("edges")
    if not isinstance(edges, list):
        raise ValueError("edges must be a list of pairs")
    return Topology.from_edges(n, [tuple(e) for e in edges])


def family_to_dict(family) -> dict[str, Any]:
    """Serializable representation of a cover-free family (element lists)."""
    return {
        "format": "repro-coverfree",
        "version": FORMAT_VERSION,
        "ground": family.ground,
        "blocks": [sorted(b) for b in family.block_sets()],
    }


def family_from_dict(doc: dict[str, Any]):
    """Inverse of :func:`family_to_dict`, with validation."""
    from repro.combinatorics.coverfree import CoverFreeFamily

    if not isinstance(doc, dict) or doc.get("format") != "repro-coverfree":
        raise ValueError("not a repro-coverfree document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported family version {doc.get('version')!r}")
    ground = check_int(doc.get("ground"), "ground", minimum=1)
    blocks = doc.get("blocks")
    if not isinstance(blocks, list):
        raise ValueError("blocks must be a list of element lists")
    return CoverFreeFamily.from_sets(ground, blocks)


def save_schedule(schedule: Schedule, path: str | Path, *,
                  meta: dict[str, Any] | None = None) -> None:
    """Write the schedule to *path* as JSON."""
    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule, meta=meta), indent=2) + "\n")


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
