"""Schedule transformations with provable invariants.

Operations a deployment actually performs on schedules — renaming nodes,
reordering slots, time-multiplexing two schedules — and the invariants the
paper's definitions give them:

* **slot permutation** preserves topology transparency, average and
  minimum worst-case throughput, frame length and duty cycles (all
  quantities in sections 4-5 are slot-order-free);
* **node relabelling** preserves transparency and all throughput
  quantities (the requirements quantify over all node subsets);
* **concatenation** of two schedules over the same ``V_n`` is transparent
  if either operand is, and its average throughput is the length-weighted
  mean of the operands' (immediate from Theorem 2);
* **interleaving** — an *ordering ablation*: Figure 2 emits each source
  slot's constructed slots contiguously; round-robin interleaving deals
  them out across the frame instead.  Being a slot permutation it changes
  *no* throughput quantity, only the worst-case access delay — and the
  measured effect (``benchmarks/bench_interleave_latency.py``) is small in
  either direction for the substrate families here, because each link
  draws about one guaranteed slot per source slot already.  The operation
  stays useful as the hook for custom delay-aware orderings.

All of these invariants are property-tested in
``tests/core/test_composition.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro._validation import check_int
from repro.core.construction import ConstructionResult
from repro.core.schedule import Schedule

__all__ = [
    "permute_slots",
    "relabel_nodes",
    "concatenate",
    "rotate",
    "interleave_construction",
]


def permute_slots(schedule: Schedule, permutation: Sequence[int]) -> Schedule:
    """Reorder the frame: new slot ``i`` is old slot ``permutation[i]``.

    *permutation* must be a permutation of ``range(L)``.
    """
    length = schedule.frame_length
    perm = [check_int(p, "permutation entry", minimum=0, maximum=length - 1)
            for p in permutation]
    if len(perm) != length or len(set(perm)) != length:
        raise ValueError(
            f"permutation must rearrange all {length} slots exactly once"
        )
    return Schedule(
        schedule.n,
        tuple(schedule.tx[p] for p in perm),
        tuple(schedule.rx[p] for p in perm),
    )


def rotate(schedule: Schedule, shift: int) -> Schedule:
    """Cyclically shift the frame by *shift* slots (any integer)."""
    length = schedule.frame_length
    shift = shift % length
    perm = [(i + shift) % length for i in range(length)]
    return permute_slots(schedule, perm)


def relabel_nodes(schedule: Schedule, mapping: Sequence[int]) -> Schedule:
    """Rename nodes: new node ``mapping[x]`` takes old node ``x``'s role.

    *mapping* must be a permutation of ``range(n)``.
    """
    n = schedule.n
    perm = [check_int(p, "mapping entry", minimum=0, maximum=n - 1)
            for p in mapping]
    if len(perm) != n or len(set(perm)) != n:
        raise ValueError(f"mapping must rename all {n} nodes exactly once")

    def remap(mask: int) -> int:
        out = 0
        m = mask
        while m:
            low = m & -m
            out |= 1 << perm[low.bit_length() - 1]
            m ^= low
        return out

    return Schedule(
        n,
        tuple(remap(t) for t in schedule.tx),
        tuple(remap(r) for r in schedule.rx),
    )


def concatenate(first: Schedule, second: Schedule) -> Schedule:
    """Time-multiplex two schedules over the same node set.

    The frame is ``first``'s slots followed by ``second``'s.  If either
    operand is topology-transparent for ``N_n^D``, so is the result (every
    frame still contains the transparent operand's slots); by Theorem 2
    the average worst-case throughput is the length-weighted mean.
    """
    if first.n != second.n:
        raise ValueError(
            f"schedules cover different node sets: {first.n} != {second.n}"
        )
    return Schedule(first.n, first.tx + second.tx, first.rx + second.rx)


def interleave_construction(result: ConstructionResult) -> Schedule:
    """Round-robin the constructed slots across their source slots.

    ``construct_detailed`` emits all slots derived from source slot 0,
    then all from source slot 1, and so on; a link whose free slot lives
    in source slot ``i`` gets all its guaranteed slots bunched together.
    This permutation deals the slots out round-robin — first constructed
    slot of each source slot, then the second of each, ... — which spreads
    every link's guaranteed slots roughly evenly across the frame and
    shrinks the worst-case access delay at zero throughput cost (it is a
    slot permutation).
    """
    origins = result.slot_origin
    buckets: dict[int, list[int]] = {}
    for idx, origin in enumerate(origins):
        buckets.setdefault(origin, []).append(idx)
    order: list[int] = []
    round_idx = 0
    remaining = True
    while remaining:
        remaining = False
        for origin in sorted(buckets):
            bucket = buckets[origin]
            if round_idx < len(bucket):
                order.append(bucket[round_idx])
                remaining = True
        round_idx += 1
    return permute_slots(result.schedule, order)
