"""Deployment planner: from an energy budget to a concrete schedule.

A user's question is rarely "give me an (alpha_T, alpha_R)-schedule"; it is
"my nodes may keep the radio on at most 30% of the time — what is the best
topology-transparent schedule for up to n nodes of degree at most D?".
This module answers it by searching the substrate families and the
``(alpha_T, alpha_R)`` grid, scoring each candidate with the *exact*
Theorem 2 average worst-case throughput of the constructed schedule and
its exact awake fraction.

The search is exhaustive over a small grid: substrates are the library's
families, ``alpha_T`` ranges up to Theorem 4's saturation point (raising
it further provably cannot help), and for each ``alpha_T`` the largest
``alpha_R`` that still satisfies the duty budget is used (Theorem 4: the
bound is increasing in ``alpha_R``).

The grid machinery is exposed piecewise (:func:`duty_grid`,
:func:`evaluate_grid_point`, :func:`select_best`) so that
:mod:`repro.service.provision` can fan the same evaluations out over a
process pool and merge the results deterministically; a cache honouring
the :mod:`repro.service.store` protocol can be threaded through
:func:`plan_schedule` to turn repeated plans into lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro._validation import check_class_params, check_probability
from repro.core.construction import construct_detailed
from repro.obs.tracing import span
from repro.core.nonsleeping import (
    mols_schedule,
    polynomial_schedule,
    projective_plane_schedule,
    steiner_schedule,
    tdma_schedule,
)
from repro.core.schedule import Schedule
from repro.core.throughput import (
    average_throughput,
    optimal_transmitters_constrained,
)

__all__ = [
    "Plan",
    "GridPoint",
    "plan_schedule",
    "candidate_sources",
    "duty_budget_fraction",
    "duty_grid",
    "evaluate_grid_point",
    "select_best",
]


@dataclass(frozen=True)
class Plan:
    """A planner recommendation.

    Attributes
    ----------
    schedule:
        The constructed topology-transparent duty-cycled schedule.
    family:
        The substrate family the source schedule came from.
    alpha_t, alpha_r:
        The energy parameters used by the construction.
    throughput:
        Exact average worst-case throughput (Theorem 2) in ``N_n^D``.
    duty_cycle:
        Exact average awake fraction of the schedule.
    frame_length:
        Constructed frame length (per-hop latency scale).
    """

    schedule: Schedule
    family: str
    alpha_t: int
    alpha_r: int
    throughput: Fraction
    duty_cycle: Fraction
    frame_length: int


@dataclass(frozen=True)
class GridPoint:
    """One candidate evaluation of the planner's substrate × energy grid.

    Attributes
    ----------
    family:
        Name of the substrate family *source* came from.
    source:
        The topology-transparent non-sleeping substrate schedule.
    alpha_t, alpha_r:
        The energy parameters to construct with.
    """

    family: str
    source: Schedule
    alpha_t: int
    alpha_r: int


def candidate_sources(n: int, d: int) -> list[tuple[str, Schedule]]:
    """Every substrate family constructible for ``(n, D)``."""
    n, d = check_class_params(n, d)
    out: list[tuple[str, Schedule]] = [("tdma", tdma_schedule(n))]
    out.append(("polynomial", polynomial_schedule(n, d)))
    if d <= 2:
        out.append(("steiner", steiner_schedule(n, d)))
    out.append(("projective", projective_plane_schedule(n, d)))
    out.append(("mols", mols_schedule(n, d)))
    return out


def duty_budget_fraction(max_duty: float | str | Fraction) -> Fraction:
    """Normalize a duty budget to one exact :class:`~fractions.Fraction`.

    Exact types (``Fraction``, ``int``, ``"3/10"``-style strings) pass
    through unchanged.  Floats are read as the decimal the caller typed —
    ``0.3`` means three tenths, not the nearest binary double — by
    snapping to the closest fraction with denominator at most ``10**9``.
    The conversion happens exactly once, so every downstream comparison
    (the per-candidate duty test and the ``floor(budget * n)`` awake-slot
    cap) is exact rational arithmetic.
    """
    if isinstance(max_duty, float):
        max_duty = check_probability(max_duty, "max_duty")
        return Fraction(max_duty).limit_denominator(10**9)
    try:
        budget = Fraction(max_duty)
    except (ValueError, ZeroDivisionError) as exc:
        raise ValueError(f"max_duty is not a valid fraction: {max_duty!r}") from exc
    if not 0 <= budget <= 1:
        raise ValueError(f"max_duty must lie in [0, 1], got {max_duty!r}")
    return budget


def duty_grid(n: int, d: int, budget: Fraction,
              sources: list[tuple[str, Schedule]]) -> list[GridPoint]:
    """Enumerate the planner's candidate grid for an exact duty *budget*.

    For each family, ``alpha_T`` ranges up to Theorem 4's saturation point
    and ``alpha_R`` is the largest value the budget allows:
    ``min(floor(budget * n) - alpha_T, n - alpha_T)`` (the duty cycle of a
    constructed schedule is ``(alpha_T* + alpha_R)/n`` per slot).  The
    awake-slot cap is computed with exact rational arithmetic — with the
    former float ``int(max_duty * n)`` a budget of ``0.3`` at ``n = 20``
    lost one awake slot to binary rounding.  ``(alpha_T, alpha_R)`` pairs
    already emitted for the same family are skipped, so no grid point is
    ever constructed (or cached, or farmed to a worker) twice.
    """
    n, d = check_class_params(n, d)
    alpha_cap = optimal_transmitters_constrained(n, d, n - 1)
    budget_slots = (budget.numerator * n) // budget.denominator
    points: list[GridPoint] = []
    seen: dict[str, set[tuple[int, int]]] = {}
    for name, source in sources:
        scored = seen.setdefault(name, set())
        for alpha_t in range(1, alpha_cap + 1):
            alpha_r = min(budget_slots - alpha_t, n - alpha_t)
            if alpha_r < 1:
                continue
            if (alpha_t, alpha_r) in scored:
                continue
            scored.add((alpha_t, alpha_r))
            points.append(GridPoint(name, source, alpha_t, alpha_r))
    return points


def evaluate_grid_point(point: GridPoint, d: int, *,
                        balanced: bool = False) -> Plan:
    """Construct and score one grid point, independent of any duty budget.

    Returns the full :class:`Plan` (schedule, exact Theorem 2 throughput,
    exact awake fraction).  The result depends only on
    ``(family, n, D, alpha_T, alpha_R, balanced)`` — never on the budget —
    which is what makes it a sound unit of caching and of parallel fan-out.
    """
    with span("planner.evaluate", family=point.family,
              alpha_t=point.alpha_t, alpha_r=point.alpha_r):
        res = construct_detailed(point.source, d, point.alpha_t,
                                 point.alpha_r, balanced=balanced)
        return Plan(
            schedule=res.schedule,
            family=point.family,
            alpha_t=point.alpha_t,
            alpha_r=point.alpha_r,
            throughput=average_throughput(res.schedule, d),
            duty_cycle=res.schedule.average_duty_cycle(),
            frame_length=res.schedule.frame_length,
        )


def select_best(candidates: Iterable[Plan]) -> Plan | None:
    """Deterministic winner of a candidate sequence, or None if empty.

    Maximizes ``(throughput, -frame_length)`` with a *strict* comparison,
    so ties break toward the earliest candidate in iteration order —
    evaluating the grid sequentially or in parallel therefore selects the
    identical plan as long as candidates are presented in grid order.
    """
    best: Plan | None = None
    for plan in candidates:
        if best is None or (plan.throughput, -plan.frame_length) > \
                (best.throughput, -best.frame_length):
            best = plan
    return best


def plan_schedule(n: int, d: int, max_duty: float | str | Fraction, *,
                  balanced: bool = False,
                  families: list[tuple[str, Schedule]] | None = None,
                  cache=None) -> Plan:
    """Best topology-transparent schedule within a duty-cycle budget.

    Parameters
    ----------
    n, d:
        The network class ``N_n^D``.
    max_duty:
        Maximum allowed average awake fraction in ``(0, 1]``; floats,
        exact fractions and ``"3/10"``-style strings are accepted (see
        :func:`duty_budget_fraction`).
    balanced:
        Use the balanced-energy divisions (section 7 variant).
    families:
        Optional pre-built ``(name, source)`` candidates; defaults to
        :func:`candidate_sources`.
    cache:
        Optional schedule store honouring the
        :class:`repro.service.store.ScheduleStore` protocol
        (``get_eval``/``put_eval``/``get_plan``/``put_plan``).  Grid-point
        evaluations and the winning plan are memoized through it, so a
        repeated request performs zero constructions.  Only consulted for
        the default families — custom substrate lists are not identified
        by the store's key schema.

    Returns the :class:`Plan` maximizing exact average worst-case
    throughput subject to ``duty_cycle <= max_duty``; ties break toward
    the shorter frame (lower latency).  Raises ``ValueError`` when the
    budget admits no schedule (it must allow at least 1 transmitter and 1
    receiver per slot, i.e. ``max_duty >= 2/n``).
    """
    n, d = check_class_params(n, d)
    budget = duty_budget_fraction(max_duty)
    with span("planner.plan", n=n, d=d, budget=str(budget),
              balanced=balanced):
        return _plan_schedule(n, d, max_duty, budget, balanced=balanced,
                              families=families, cache=cache)


def _plan_schedule(n, d, max_duty, budget, *, balanced, families, cache):
    """The :func:`plan_schedule` body, separated so the public entry can
    wrap the whole search in one ``planner.plan`` span."""
    cacheable = cache is not None and families is None
    if cacheable:
        hit = cache.get_plan(n, d, budget, balanced)
        if hit is not None:
            return hit
    sources = families if families is not None else candidate_sources(n, d)
    candidates: list[Plan] = []
    for point in duty_grid(n, d, budget, sources):
        plan = None
        if cacheable:
            plan = cache.get_eval(point.family, n, d, point.alpha_t,
                                  point.alpha_r, balanced)
        if plan is None:
            plan = evaluate_grid_point(point, d, balanced=balanced)
            if cacheable:
                cache.put_eval(point.family, n, d, point.alpha_t,
                               point.alpha_r, balanced, plan)
        if plan.duty_cycle <= budget:
            candidates.append(plan)
    best = select_best(candidates)
    if best is None:
        raise ValueError(
            f"no ({'balanced ' if balanced else ''}alpha_T, alpha_R) choice "
            f"fits duty budget {max_duty} for n={n} (need >= 2/n)"
        )
    if cacheable:
        cache.put_plan(n, d, budget, balanced, best)
    return best
