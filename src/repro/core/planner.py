"""Deployment planner: from an energy budget to a concrete schedule.

A user's question is rarely "give me an (alpha_T, alpha_R)-schedule"; it is
"my nodes may keep the radio on at most 30% of the time — what is the best
topology-transparent schedule for up to n nodes of degree at most D?".
This module answers it by searching the substrate families and the
``(alpha_T, alpha_R)`` grid, scoring each candidate with the *exact*
Theorem 2 average worst-case throughput of the constructed schedule and
its exact awake fraction.

The search is exhaustive over a small grid: substrates are the library's
families, ``alpha_T`` ranges up to Theorem 4's saturation point (raising
it further provably cannot help), and for each ``alpha_T`` the largest
``alpha_R`` that still satisfies the duty budget is used (Theorem 4: the
bound is increasing in ``alpha_R``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro._validation import check_class_params, check_probability
from repro.core.construction import construct_detailed
from repro.core.nonsleeping import (
    mols_schedule,
    polynomial_schedule,
    projective_plane_schedule,
    steiner_schedule,
    tdma_schedule,
)
from repro.core.schedule import Schedule
from repro.core.throughput import (
    average_throughput,
    optimal_transmitters_constrained,
)

__all__ = ["Plan", "plan_schedule", "candidate_sources"]


@dataclass(frozen=True)
class Plan:
    """A planner recommendation.

    Attributes
    ----------
    schedule:
        The constructed topology-transparent duty-cycled schedule.
    family:
        The substrate family the source schedule came from.
    alpha_t, alpha_r:
        The energy parameters used by the construction.
    throughput:
        Exact average worst-case throughput (Theorem 2) in ``N_n^D``.
    duty_cycle:
        Exact average awake fraction of the schedule.
    frame_length:
        Constructed frame length (per-hop latency scale).
    """

    schedule: Schedule
    family: str
    alpha_t: int
    alpha_r: int
    throughput: Fraction
    duty_cycle: Fraction
    frame_length: int


def candidate_sources(n: int, d: int) -> list[tuple[str, Schedule]]:
    """Every substrate family constructible for ``(n, D)``."""
    n, d = check_class_params(n, d)
    out: list[tuple[str, Schedule]] = [("tdma", tdma_schedule(n))]
    out.append(("polynomial", polynomial_schedule(n, d)))
    if d <= 2:
        out.append(("steiner", steiner_schedule(n, d)))
    out.append(("projective", projective_plane_schedule(n, d)))
    out.append(("mols", mols_schedule(n, d)))
    return out


def plan_schedule(n: int, d: int, max_duty: float, *,
                  balanced: bool = False,
                  families: list[tuple[str, Schedule]] | None = None) -> Plan:
    """Best topology-transparent schedule within a duty-cycle budget.

    Parameters
    ----------
    n, d:
        The network class ``N_n^D``.
    max_duty:
        Maximum allowed average awake fraction in ``(0, 1]``.
    balanced:
        Use the balanced-energy divisions (section 7 variant).
    families:
        Optional pre-built ``(name, source)`` candidates; defaults to
        :func:`candidate_sources`.

    Returns the :class:`Plan` maximizing exact average worst-case
    throughput subject to ``duty_cycle <= max_duty``; ties break toward
    the shorter frame (lower latency).  Raises ``ValueError`` when the
    budget admits no schedule (it must allow at least 1 transmitter and 1
    receiver per slot, i.e. ``max_duty >= 2/n``).
    """
    n, d = check_class_params(n, d)
    max_duty = check_probability(max_duty, "max_duty")
    sources = families if families is not None else candidate_sources(n, d)
    alpha_cap = optimal_transmitters_constrained(n, d, n - 1)
    best: Plan | None = None
    for name, source in sources:
        for alpha_t in range(1, alpha_cap + 1):
            # Theorem 4's bound rises with alpha_R, and the duty cycle of a
            # constructed schedule is (aT* + aR)/n per slot: pick the
            # largest alpha_R the budget allows.
            alpha_r = min(int(max_duty * n) - alpha_t, n - alpha_t)
            if alpha_r < 1:
                continue
            res = construct_detailed(source, d, alpha_t, alpha_r,
                                     balanced=balanced)
            duty = res.schedule.average_duty_cycle()
            if duty > Fraction(max_duty).limit_denominator(10**9):
                continue
            plan = Plan(
                schedule=res.schedule,
                family=name,
                alpha_t=alpha_t,
                alpha_r=alpha_r,
                throughput=average_throughput(res.schedule, d),
                duty_cycle=duty,
                frame_length=res.schedule.frame_length,
            )
            if best is None or (plan.throughput, -plan.frame_length) > \
                    (best.throughput, -best.frame_length):
                best = plan
    if best is None:
        raise ValueError(
            f"no ({'balanced ' if balanced else ''}alpha_T, alpha_R) choice "
            f"fits duty budget {max_duty} for n={n} (need >= 2/n)"
        )
    return best
