"""NumPy-matrix transparency checker — the data-structure ablation.

DESIGN.md calls out one representational choice for the hot set algebra in
transparency checking: Python-int bitmasks (arbitrary precision, one
machine word per 64 slots, constant-factor-free AND/OR) versus NumPy
boolean vectors (vectorized but object-overhead-per-op at these tiny
sizes).  This module is the NumPy side of that ablation: the *same* exact
branch-and-bound cover decision as
:func:`repro.core.transparency.is_topology_transparent`, with every slot
set held as a ``bool`` ndarray.

Benchmarked in ``benchmarks/bench_ablation_bitset.py``; the two
implementations are property-tested to agree.  Production code paths use
the bitmask implementation.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_class_params
from repro.core.schedule import Schedule

__all__ = ["matrix_is_topology_transparent"]


def _can_cover_rows(target: np.ndarray, candidates: list[np.ndarray],
                    budget: int) -> bool:
    """Exact set-cover decision over boolean rows (mirrors coverfree.can_cover)."""
    if not target.any():
        return True
    if budget == 0:
        return False
    useful = [c & target for c in candidates if (c & target).any()]
    # Dominated-candidate elimination.
    useful.sort(key=lambda c: -int(c.sum()))
    kept: list[np.ndarray] = []
    for c in useful:
        if not any((c & ~k).sum() == 0 for k in kept):
            kept.append(c)

    def rec(remaining: np.ndarray, depth: int, cands: list[np.ndarray]) -> bool:
        if not remaining.any():
            return True
        if depth == 0:
            return False
        cands = [c for c in cands if (c & remaining).any()]
        if not cands:
            return False
        sizes = sorted(int((c & remaining).sum()) for c in cands)
        if sum(sizes[-depth:]) < int(remaining.sum()):
            return False
        # Branch on the uncovered slot with fewest covering candidates.
        idxs = np.nonzero(remaining)[0]
        best_owners: list[np.ndarray] | None = None
        for i in idxs:
            owners = [c for c in cands if c[i]]
            if not owners:
                return False
            if best_owners is None or len(owners) < len(best_owners):
                best_owners = owners
                if len(owners) == 1:
                    break
        assert best_owners is not None
        for c in best_owners:
            if rec(remaining & ~c, depth - 1, cands):
                return True
        return False

    return rec(target.copy(), budget, kept)


def matrix_is_topology_transparent(schedule: Schedule, d: int) -> bool:
    """Requirement 2 decision using boolean ndarrays for all slot sets.

    Semantically identical to the bitmask
    :func:`repro.core.transparency.is_topology_transparent`; exists for the
    representation ablation only.
    """
    n, d = check_class_params(schedule.n, d)
    r = min(d - 1, n - 2)
    tx = schedule.tx_matrix()   # (L, n)
    rx = schedule.rx_matrix()
    tran = [np.ascontiguousarray(tx[:, x]) for x in range(n)]
    recv = [np.ascontiguousarray(rx[:, x]) for x in range(n)]
    for x in range(n):
        for y in range(n):
            if x == y:
                continue
            target = tran[x] & recv[y]
            if not target.any():
                return False
            candidates = [tran[z] for z in range(n) if z != x and z != y]
            if _can_cover_rows(target, candidates, r):
                return False
    return True
