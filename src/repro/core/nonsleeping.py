"""Factories for topology-transparent non-sleeping schedules.

The Figure 2 construction consumes a topology-transparent non-sleeping
schedule ``<T>``.  The paper defers their construction to the literature
([2, 13, 22, 3, 5]); this module implements the cited families on top of
the :mod:`repro.combinatorics` substrate and exposes them as
:class:`repro.core.schedule.Schedule` objects:

=============================  ============================================
:func:`tdma_schedule`          classical TDMA: one transmitter per slot,
                               ``L = n``; TT for every ``D <= n - 1``
:func:`polynomial_schedule`    Chlamtac-Farago / Ju-Li: nodes are
                               polynomials of degree <= k over ``GF(q)``,
                               ``L = q**2``; TT for ``D <= (q-1)/k``
:func:`steiner_schedule`       nodes are triples of an STS(v), ``L = v``;
                               TT for ``D <= 2``
:func:`projective_plane_schedule`  nodes are lines of PG(2, q),
                               ``L = q**2 + q + 1``; TT for ``D <= q``
:func:`from_cover_free_family` any d-cover-free family -> schedule
:func:`best_nonsleeping_schedule`  picks the shortest frame among the
                               families above for given ``(n, D)``
=============================  ============================================

Every factory performs automatic parameter selection (smallest admissible
design for the requested ``(n, D)``) and the mapping is the canonical one:
node ``x`` transmits exactly in the slots of its block, and — the schedule
being non-sleeping — receives in all other slots.
"""

from __future__ import annotations

from repro._validation import check_class_params
from repro.combinatorics.coverfree import CoverFreeFamily, smallest_polynomial_parameters
from repro.combinatorics.gf import prime_powers
from repro.core.schedule import Schedule

__all__ = [
    "tdma_schedule",
    "from_cover_free_family",
    "polynomial_schedule",
    "steiner_schedule",
    "projective_plane_schedule",
    "mols_schedule",
    "best_nonsleeping_schedule",
]


def from_cover_free_family(family: CoverFreeFamily, n: int) -> Schedule:
    """Non-sleeping schedule from the first *n* blocks of a cover-free family.

    Slot ``i`` corresponds to ground element ``i``; node ``x`` transmits in
    the slots of block ``x``.  If the family is ``D``-cover-free the result
    satisfies Requirement 1, hence is topology-transparent for ``N_n^D``
    (being non-sleeping, conditions (1) and (2) of Requirement 3 coincide:
    every non-transmitter is receiving).
    """
    if n > family.size:
        raise ValueError(
            f"family has {family.size} blocks but {n} nodes were requested"
        )
    tx = []
    for i in range(family.ground):
        slot_bit = 1 << i
        mask = 0
        for x in range(n):
            if family.blocks[x] & slot_bit:
                mask |= 1 << x
        tx.append(mask)
    full = (1 << n) - 1
    rx = tuple(full & ~t for t in tx)
    return Schedule(n, tuple(tx), rx)


def tdma_schedule(n: int) -> Schedule:
    """Classical TDMA: ``L = n`` slots, ``T[i] = {i}``, everyone else receives.

    Trivially topology-transparent for every ``D <= n - 1`` (each node owns
    a private collision-free slot), but its frame grows linearly in ``n``
    and each slot carries a single transmitter — the baseline the
    combinatorial constructions beat.
    """
    return from_cover_free_family(CoverFreeFamily.trivial(n), n)


def polynomial_schedule(n: int, d: int, *, q: int | None = None,
                        k: int | None = None) -> Schedule:
    """The polynomial (orthogonal-array) schedule for ``N_n^D``.

    Node ``x`` is the ``x``-th polynomial of degree <= k over ``GF(q)`` and
    transmits in slot ``sub * q + f_x(sub)`` of every subframe ``sub``;
    ``L = q**2``.  Distinct polynomials collide in at most ``k`` subframes,
    so ``D`` interferers can cover at most ``k * D < q`` of a node's ``q``
    transmission slots: the family is ``D``-cover-free.

    With ``q``/``k`` omitted, the smallest admissible frame is selected via
    :func:`repro.combinatorics.coverfree.smallest_polynomial_parameters`.
    """
    n, d = check_class_params(n, d)
    if (q is None) != (k is None):
        raise ValueError("provide both q and k, or neither")
    if q is None:
        q, k = smallest_polynomial_parameters(n, d)
    assert k is not None
    if k * d + 1 > q:
        raise ValueError(
            f"need q >= k*D + 1 for D-cover-freeness; got q={q}, k={k}, D={d}"
        )
    if q ** (k + 1) < n:
        raise ValueError(
            f"only {q**(k+1)} codewords available for n={n} nodes (q={q}, k={k})"
        )
    family = CoverFreeFamily.from_polynomial_code(q, k, count=n)
    return from_cover_free_family(family, n)


def steiner_schedule(n: int, d: int, *, v: int | None = None) -> Schedule:
    """Schedule from a Steiner triple system; supports ``D <= 2``.

    Node ``x`` transmits in the three slots of the ``x``-th triple of an
    ``STS(v)``; ``L = v``.  Triples pairwise share at most one point, so
    two interferers cover at most 2 of a node's 3 slots.

    With *v* omitted, the smallest admissible order with at least *n*
    triples (``v(v-1)/6 >= n``) is selected.
    """
    n, d = check_class_params(n, d)
    if d > 2:
        raise ValueError(
            f"Steiner triple systems give 2-cover-free families; D={d} > 2 "
            "needs the polynomial or projective-plane construction"
        )
    if v is None:
        v = 7
        while v % 6 not in (1, 3) or v * (v - 1) // 6 < n:
            v += 1
        # The cyclic (v == 1 mod 6) construction runs an exact difference-
        # triple search that turns exponential past v ~ 103; above that,
        # auto-selection takes the next Bose-constructible order instead
        # (direct construction at every scale, frame cost <= 4 slots).
        if v % 6 == 1 and v > 103:
            while v % 6 != 3:
                v += 1
    if v % 6 not in (1, 3):
        raise ValueError(f"an STS(v) needs v == 1,3 (mod 6); got v={v}")
    if v * (v - 1) // 6 < n:
        raise ValueError(
            f"STS({v}) has {v*(v-1)//6} triples; not enough for n={n} nodes"
        )
    family = CoverFreeFamily.from_steiner_triple_system(v, count=n)
    return from_cover_free_family(family, n)


def projective_plane_schedule(n: int, d: int, *, q: int | None = None) -> Schedule:
    """Schedule from the lines of ``PG(2, q)``; supports ``D <= q``.

    Node ``x`` transmits in the ``q + 1`` slots of the ``x``-th line;
    ``L = q**2 + q + 1``.  Lines pairwise meet in exactly one point, so
    ``D <= q`` interferers cover at most ``q`` of ``q + 1`` slots.

    With *q* omitted, the smallest prime power with ``q >= D`` and
    ``q**2 + q + 1 >= n`` is selected.
    """
    n, d = check_class_params(n, d)
    if q is None:
        gen = prime_powers(max(d, 2))
        q = next(gen)
        while q * q + q + 1 < n:
            q = next(gen)
    if q < d:
        raise ValueError(f"need q >= D for D-cover-freeness; got q={q}, D={d}")
    if q * q + q + 1 < n:
        raise ValueError(
            f"PG(2,{q}) has {q*q+q+1} lines; not enough for n={n} nodes"
        )
    family = CoverFreeFamily.from_projective_plane(q, count=n)
    return from_cover_free_family(family, n)


def mols_schedule(n: int, d: int, *, m: int | None = None,
                  k: int | None = None) -> Schedule:
    """Schedule from a transversal design ``TD(k, m)``; ``L = k * m``.

    Node ``x`` transmits in the ``k`` slots of the ``x``-th block; blocks
    pairwise share at most one slot, so the family is ``(k-1)``-cover-free
    and the schedule is topology-transparent for ``D <= k - 1``.  Unlike
    the polynomial family, the order ``m`` need not be a prime power —
    MacNeish's product supplies the Latin squares — which fills the frame-
    length gaps between consecutive prime powers.

    With ``m``/``k`` omitted: ``k = D + 1`` and the smallest ``m`` with
    ``m**2 >= n`` and ``macneish_bound(m) >= k - 2``.
    """
    from repro.combinatorics.latin import macneish_bound

    n, d = check_class_params(n, d)
    if (m is None) != (k is None):
        raise ValueError("provide both m and k, or neither")
    if m is None:
        k = d + 1
        m = 2
        while m * m < n or macneish_bound(m) < k - 2:
            m += 1
    assert k is not None
    if k < d + 1:
        raise ValueError(f"need k >= D + 1 for D-cover-freeness; got k={k}, D={d}")
    if m * m < n:
        raise ValueError(f"TD(k,{m}) has {m*m} blocks; not enough for n={n} nodes")
    family = CoverFreeFamily.from_transversal_design(k, m, count=n)
    return from_cover_free_family(family, n)


def best_nonsleeping_schedule(n: int, d: int) -> tuple[str, Schedule]:
    """Shortest-frame topology-transparent non-sleeping schedule for ``N_n^D``.

    Tries every family this module can build for the parameters and returns
    ``(family_name, schedule)`` minimizing the frame length (ties broken by
    the listed order).  TDMA always qualifies, so the call always succeeds.
    """
    n, d = check_class_params(n, d)
    candidates: list[tuple[str, Schedule]] = [("tdma", tdma_schedule(n))]
    try:
        candidates.append(("polynomial", polynomial_schedule(n, d)))
    except ValueError:  # pragma: no cover - polynomial params always exist
        pass
    if d <= 2:
        candidates.append(("steiner", steiner_schedule(n, d)))
    candidates.append(("projective", projective_plane_schedule(n, d)))
    candidates.append(("mols", mols_schedule(n, d)))
    best = min(candidates, key=lambda item: item[1].frame_length)
    return best
