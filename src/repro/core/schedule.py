"""The ``<T, R>`` schedule datatype of the paper's section 3.

A schedule over node set ``V_n = {0, .., n-1}`` is a pair of equal-length
arrays ``T`` and ``R``; ``T[i]`` and ``R[i]`` are the (disjoint) sets of
nodes eligible to transmit and to receive in every slot congruent to ``i``
modulo the frame length ``L``.  Nodes in neither set sleep.

Representation: each per-slot set is a Python-int bitmask over nodes, and
each per-node slot set (``tran(x)``, ``recv(x)``) is a bitmask over slots.
Frames are short (at most a few thousand slots) and ``n`` is at most a few
hundred, so arbitrary-precision integer bit algebra is both exact and fast —
the single-word AND/OR/ANDNOT operations that dominate transparency and
throughput checking run at memory speed, following the "choose the right
data structure before reaching for compiled code" guidance of the HPC
guides.  NumPy boolean-matrix views are provided for vectorized analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro._validation import check_int
from repro.combinatorics.coverfree import mask_from_set, set_from_mask

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """An ``<T, R>`` schedule over ``V_n`` with frame length ``L = len(tx)``.

    Attributes
    ----------
    n:
        Number of node identifiers the schedule is defined for (the ``n``
        of the network class ``N_n^D``).
    tx:
        Per-slot transmitter-eligible sets as node bitmasks, length ``L``.
    rx:
        Per-slot receiver-eligible sets as node bitmasks, length ``L``.

    Invariants (validated at construction): ``len(tx) == len(rx) >= 1``,
    every mask is within ``[0, 2**n)``, and ``tx[i] & rx[i] == 0`` for all
    slots (a node cannot transmit and receive simultaneously).
    """

    n: int
    tx: tuple[int, ...]
    rx: tuple[int, ...]

    def __post_init__(self) -> None:
        check_int(self.n, "n", minimum=1)
        if len(self.tx) != len(self.rx):
            raise ValueError(
                f"T and R must have equal length, got {len(self.tx)} != {len(self.rx)}"
            )
        if len(self.tx) == 0:
            raise ValueError("a schedule must have at least one slot")
        limit = 1 << self.n
        for i, (t, r) in enumerate(zip(self.tx, self.rx)):
            if not isinstance(t, int) or not 0 <= t < limit:
                raise ValueError(f"tx[{i}] is not a node bitmask over [0, {self.n})")
            if not isinstance(r, int) or not 0 <= r < limit:
                raise ValueError(f"rx[{i}] is not a node bitmask over [0, {self.n})")
            if t & r:
                raise ValueError(
                    f"slot {i}: transmitter and receiver sets intersect "
                    f"(nodes {sorted(set_from_mask(t & r))})"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(cls, n: int, tx_sets: Sequence[Iterable[int]],
                  rx_sets: Sequence[Iterable[int]]) -> "Schedule":
        """Build a schedule from explicit per-slot node sets."""
        n = check_int(n, "n", minimum=1)
        tx = []
        rx = []
        for i, s in enumerate(tx_sets):
            elems = sorted(set(s))
            if elems and (elems[0] < 0 or elems[-1] >= n):
                raise ValueError(f"tx_sets[{i}] not within [0, {n})")
            tx.append(mask_from_set(elems))
        for i, s in enumerate(rx_sets):
            elems = sorted(set(s))
            if elems and (elems[0] < 0 or elems[-1] >= n):
                raise ValueError(f"rx_sets[{i}] not within [0, {n})")
            rx.append(mask_from_set(elems))
        return cls(n, tuple(tx), tuple(rx))

    @classmethod
    def non_sleeping(cls, n: int, tx_sets: Sequence[Iterable[int]]) -> "Schedule":
        """Build a non-sleeping schedule ``<T>``: ``R[i] = V_n - T[i]``.

        This is the ``<T>`` abbreviation of section 3: every node is active
        in every slot, receiving whenever it does not transmit.
        """
        n = check_int(n, "n", minimum=1)
        full = (1 << n) - 1
        tx = []
        for i, s in enumerate(tx_sets):
            elems = sorted(set(s))
            if elems and (elems[0] < 0 or elems[-1] >= n):
                raise ValueError(f"tx_sets[{i}] not within [0, {n})")
            tx.append(mask_from_set(elems))
        rx = tuple(full & ~t for t in tx)
        return cls(n, tuple(tx), rx)

    @classmethod
    def from_matrices(cls, tx_matrix: np.ndarray, rx_matrix: np.ndarray) -> "Schedule":
        """Build a schedule from boolean matrices of shape ``(L, n)``."""
        tm = np.asarray(tx_matrix, dtype=bool)
        rm = np.asarray(rx_matrix, dtype=bool)
        if tm.shape != rm.shape or tm.ndim != 2:
            raise ValueError(
                f"matrices must share a 2-D shape, got {tm.shape} and {rm.shape}"
            )
        n = tm.shape[1]
        tx = tuple(mask_from_set(np.nonzero(row)[0].tolist()) for row in tm)
        rx = tuple(mask_from_set(np.nonzero(row)[0].tolist()) for row in rm)
        return cls(n, tx, rx)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def frame_length(self) -> int:
        """The frame length ``L``."""
        return len(self.tx)

    def tx_set(self, slot: int) -> frozenset[int]:
        """``T[slot]`` as a frozenset of nodes."""
        return set_from_mask(self.tx[slot])

    def rx_set(self, slot: int) -> frozenset[int]:
        """``R[slot]`` as a frozenset of nodes."""
        return set_from_mask(self.rx[slot])

    @cached_property
    def _tran(self) -> tuple[int, ...]:
        """Per-node transmission-slot bitmasks (over slots)."""
        out = [0] * self.n
        for i, mask in enumerate(self.tx):
            bit = 1 << i
            m = mask
            while m:
                low = m & -m
                out[low.bit_length() - 1] |= bit
                m ^= low
        return tuple(out)

    @cached_property
    def _recv(self) -> tuple[int, ...]:
        """Per-node reception-slot bitmasks (over slots)."""
        out = [0] * self.n
        for i, mask in enumerate(self.rx):
            bit = 1 << i
            m = mask
            while m:
                low = m & -m
                out[low.bit_length() - 1] |= bit
                m ^= low
        return tuple(out)

    def tran_mask(self, x: int) -> int:
        """``tran(x)`` as a bitmask over slots ``[0, L)``."""
        check_int(x, "x", minimum=0, maximum=self.n - 1)
        return self._tran[x]

    def recv_mask(self, x: int) -> int:
        """``recv(x)`` as a bitmask over slots ``[0, L)``."""
        check_int(x, "x", minimum=0, maximum=self.n - 1)
        return self._recv[x]

    def tran(self, x: int) -> frozenset[int]:
        """``tran(x)`` as a frozenset of slot indices."""
        return set_from_mask(self.tran_mask(x))

    def recv(self, x: int) -> frozenset[int]:
        """``recv(x)`` as a frozenset of slot indices."""
        return set_from_mask(self.recv_mask(x))

    # ------------------------------------------------------------------
    # counts and classification
    # ------------------------------------------------------------------
    @cached_property
    def tx_counts(self) -> tuple[int, ...]:
        """``|T[i]|`` for every slot."""
        return tuple(m.bit_count() for m in self.tx)

    @cached_property
    def rx_counts(self) -> tuple[int, ...]:
        """``|R[i]|`` for every slot."""
        return tuple(m.bit_count() for m in self.rx)

    def is_non_sleeping(self) -> bool:
        """True iff ``T[i] | R[i] == V_n`` in every slot (section 3)."""
        full = (1 << self.n) - 1
        return all(t | r == full for t, r in zip(self.tx, self.rx))

    def is_alpha_schedule(self, alpha_t: int, alpha_r: int) -> bool:
        """True iff this is an ``(alpha_T, alpha_R)``-schedule (section 3)."""
        alpha_t = check_int(alpha_t, "alpha_t", minimum=0)
        alpha_r = check_int(alpha_r, "alpha_r", minimum=0)
        return all(c <= alpha_t for c in self.tx_counts) and all(
            c <= alpha_r for c in self.rx_counts
        )

    def duty_cycle(self, x: int) -> Fraction:
        """Fraction of slots in which node *x* is awake (transmit or receive)."""
        active = (self.tran_mask(x) | self.recv_mask(x)).bit_count()
        return Fraction(active, self.frame_length)

    def duty_cycles(self) -> list[Fraction]:
        """Per-node awake fractions."""
        return [self.duty_cycle(x) for x in range(self.n)]

    def average_duty_cycle(self) -> Fraction:
        """Mean awake fraction over all nodes — the schedule's energy knob."""
        total = sum(
            (t | r).bit_count() for t, r in zip(self.tx, self.rx)
        )
        return Fraction(total, self.n * self.frame_length)

    def transmit_share(self, x: int) -> Fraction:
        """Fraction of slots in which node *x* is transmit-eligible."""
        return Fraction(self.tran_mask(x).bit_count(), self.frame_length)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def tx_matrix(self) -> np.ndarray:
        """Boolean matrix of shape ``(L, n)``: slot x node transmit eligibility."""
        out = np.zeros((self.frame_length, self.n), dtype=bool)
        for i in range(self.frame_length):
            m = self.tx[i]
            while m:
                low = m & -m
                out[i, low.bit_length() - 1] = True
                m ^= low
        return out

    def rx_matrix(self) -> np.ndarray:
        """Boolean matrix of shape ``(L, n)``: slot x node receive eligibility."""
        out = np.zeros((self.frame_length, self.n), dtype=bool)
        for i in range(self.frame_length):
            m = self.rx[i]
            while m:
                low = m & -m
                out[i, low.bit_length() - 1] = True
                m ^= low
        return out

    def restricted_to(self, n: int) -> "Schedule":
        """Restrict the schedule to the first *n* node identifiers.

        Useful when a substrate construction yields eligibility for more
        codewords than there are nodes.
        """
        n = check_int(n, "n", minimum=1, maximum=self.n)
        mask = (1 << n) - 1
        return Schedule(n, tuple(t & mask for t in self.tx),
                        tuple(r & mask for r in self.rx))

    def __repr__(self) -> str:
        kind = "non-sleeping " if self.is_non_sleeping() else ""
        return (
            f"Schedule({kind}n={self.n}, L={self.frame_length}, "
            f"|T| in [{min(self.tx_counts)}, {max(self.tx_counts)}], "
            f"|R| in [{min(self.rx_counts)}, {max(self.rx_counts)}])"
        )
