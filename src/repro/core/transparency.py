"""Topology-transparency requirements (section 4 of the paper).

Implements ``freeSlots``, ``sigma`` and the three requirements:

* **Requirement 1** (Colbourn/Ling/Syrotiuk) — for *non-sleeping*
  schedules: ``freeSlots(x, Y)`` nonempty for every node ``x`` and every
  ``D``-set ``Y``; equivalently, the ``tran(x)`` family is ``D``-cover-free.
* **Requirement 2** (Dukes/Colbourn/Syrotiuk) — for general schedules: no
  union of up to ``D - 1`` interferers' ``sigma`` sets covers
  ``sigma(x, y)``.
* **Requirement 3** (this paper) — the equivalent reformulation exposing
  the non-sleeping schedule inside a duty-cycled one: condition (1) says
  ``<T>`` is topology-transparent; condition (2) says every potential
  neighbour is awake in at least one free slot.

Checking strategies
-------------------
The definitional checks enumerate ``D``-subsets — exponential in ``D`` but
exact, and exactly what the tests cross-validate against.  The workhorse
checker :func:`is_topology_transparent` reformulates Requirement 2 per node
pair as a bounded set-cover question ("can ``D - 1`` interferers cover
``sigma(x, y)``?") answered by the exact branch-and-bound of
:func:`repro.combinatorics.coverfree.can_cover`; a randomized refuter
handles instances beyond exact reach.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from repro._validation import check_class_params
from repro.combinatorics.coverfree import can_cover
from repro.core.schedule import Schedule

__all__ = [
    "free_slots",
    "sigma",
    "satisfies_requirement1",
    "satisfies_requirement2",
    "satisfies_requirement3",
    "is_topology_transparent",
    "find_transparency_violation",
]


def free_slots(schedule: Schedule, x: int, nodes: Iterable[int]) -> int:
    """``freeSlots(x, Y) = tran(x) - union of tran(y) for y in Y`` as a slot bitmask.

    These are the slots in which *x* is the only allowed transmitter among
    ``{x} | Y`` — the slots where *x* is guaranteed collision-free at any
    receiver whose other neighbours all lie in ``Y``.
    """
    mask = schedule.tran_mask(x)
    for y in nodes:
        mask &= ~schedule.tran_mask(y)
    return mask


def sigma(schedule: Schedule, a: int, b: int) -> int:
    """``sigma(a, b) = tran(a) & recv(b)``: slots where *a* may reach *b*."""
    return schedule.tran_mask(a) & schedule.recv_mask(b)


def satisfies_requirement1(schedule: Schedule, d: int) -> bool:
    """Requirement 1: the non-sleeping schedule ``<T>`` is topology-transparent.

    Checks ``freeSlots(x, Y) != 0`` for every node ``x`` and every ``D``-set
    ``Y`` of other nodes — i.e. that no ``D`` transmission-slot sets cover
    another.  Exact via branch-and-bound set cover (no subset enumeration).
    Applies to any schedule's transmission half; receiver sets are ignored.
    """
    n, d = check_class_params(schedule.n, d)
    trans = [schedule.tran_mask(x) for x in range(n)]
    for x in range(n):
        if trans[x] == 0:
            return False
        others = [trans[y] for y in range(n) if y != x]
        if can_cover(trans[x], others, d):
            return False
    return True


def satisfies_requirement2(schedule: Schedule, d: int) -> bool:
    """Requirement 2 (Dukes et al.), checked by its literal definition.

    For every ordered pair ``(x, y)`` and every set of ``d' <= D - 1``
    interferers, the union of their ``sigma(., y)`` must not contain
    ``sigma(x, y)``.  Because the union grows with more interferers it
    suffices to check ``d' = min(D - 1, n - 2)`` together with the empty
    set (which requires ``sigma(x, y) != 0``).  Exponential in ``D``;
    intended for tests and small instances.
    """
    n, d = check_class_params(schedule.n, d)
    r = min(d - 1, n - 2)
    for x in range(n):
        for y in range(n):
            if y == x:
                continue
            target = sigma(schedule, x, y)
            if target == 0:
                return False
            others = [z for z in range(n) if z != x and z != y]
            for combo in combinations(others, r):
                union = 0
                for z in combo:
                    union |= sigma(schedule, z, y)
                if target & ~union == 0:
                    return False
    return True


def satisfies_requirement3(schedule: Schedule, d: int) -> bool:
    """Requirement 3 (this paper), checked by its literal definition.

    For every node ``x`` and every ``D``-set ``Y = {y_0..y_{D-1}}``:
    (1) ``freeSlots(x, Y)`` is nonempty, and (2) every ``y_k`` is
    receive-eligible in at least one free slot.  Exponential in ``D``;
    intended for tests and small instances (Theorem 1 says this agrees
    with :func:`satisfies_requirement2` — property-tested).
    """
    n, d = check_class_params(schedule.n, d)
    for x in range(n):
        others = [z for z in range(n) if z != x]
        for combo in combinations(others, d):
            free = free_slots(schedule, x, combo)
            if free == 0:
                return False
            for y in combo:
                if schedule.recv_mask(y) & free == 0:
                    return False
    return True


def _pair_coverable(schedule: Schedule, x: int, y: int, r: int) -> bool:
    """Can ``r`` interferers cover ``sigma(x, y)``?  (Requirement 2 core.)"""
    target = sigma(schedule, x, y)
    if target == 0:
        return True  # covered by the empty union already
    candidates = [
        schedule.tran_mask(z) & target
        for z in range(schedule.n)
        if z != x and z != y
    ]
    return can_cover(target, candidates, r)


def is_topology_transparent(schedule: Schedule, d: int, *,
                            method: str = "exact",
                            samples: int = 5000,
                            rng: np.random.Generator | None = None) -> bool:
    """Decide topology transparency of *schedule* for the class ``N_n^D``.

    ``method='exact'`` answers the Requirement 2 cover question per ordered
    node pair with an exact branch-and-bound — a true decision procedure
    that scales far beyond the definitional subset enumerations.

    ``method='sampled'`` only *refutes*: it samples random ``(x, Y)``
    neighbourhoods and returns False on any violation; True means "no
    violation found in *samples* trials".
    """
    n, d = check_class_params(schedule.n, d)
    r = min(d - 1, n - 2)
    if method == "exact":
        for x in range(n):
            for y in range(n):
                if y != x and _pair_coverable(schedule, x, y, r):
                    return False
        return True
    if method == "sampled":
        rng = rng if rng is not None else np.random.default_rng()
        for _ in range(samples):
            x = int(rng.integers(n))
            y = int(rng.integers(n - 1))
            y += 1 if y >= x else 0
            others = [z for z in range(n) if z != x and z != y]
            chosen = rng.choice(len(others), size=r, replace=False)
            target = sigma(schedule, x, y)
            union = 0
            for c in chosen:
                union |= schedule.tran_mask(others[int(c)])
            if target & ~union == 0:
                return False
        return True
    raise ValueError(f"unknown method {method!r}; expected 'exact' or 'sampled'")


def find_transparency_violation(schedule: Schedule, d: int
                                ) -> tuple[int, int, tuple[int, ...]] | None:
    """Return a witness ``(x, y, interferers)`` violating Requirement 2, or None.

    The witness means: with ``y``'s other neighbours set to *interferers*,
    node ``x`` has no slot in which it can reach ``y`` collision-free.
    Exhaustive over interferer subsets for the failing pair; exact.
    """
    n, d = check_class_params(schedule.n, d)
    r = min(d - 1, n - 2)
    for x in range(n):
        for y in range(n):
            if y == x:
                continue
            target = sigma(schedule, x, y)
            if target == 0:
                return (x, y, ())
            if not _pair_coverable(schedule, x, y, r):
                continue
            others = [z for z in range(n) if z != x and z != y]
            for combo in combinations(others, r):
                union = 0
                for z in combo:
                    union |= sigma(schedule, z, y)
                if target & ~union == 0:
                    return (x, y, combo)
    return None
