"""Worst-case throughput theory (sections 5 and 7 of the paper).

All quantities are exact rationals (:class:`fractions.Fraction`) so that
the reproduction can assert the paper's *equalities* (Theorem 2's closed
form, Theorem 7's frame length, Theorem 8's equality case) exactly rather
than within floating-point tolerance.  Callers that want floats can wrap
results in ``float``.

Contents, keyed to the paper:

========================  ====================================================
:func:`guaranteed_slots`  the slot set ``T(x, y, S)`` above Definition 1
:func:`min_throughput`    Definition 1 (exact adversarial ``S`` via
                          branch-and-bound max-coverage, or sampled)
:func:`average_throughput_bruteforce`  Definition 2 evaluated literally
:func:`average_throughput`             Theorem 2's closed form
:func:`g`                 the function ``g_{n,D}(x)`` of section 5
:func:`g_upper_bound`     property (1): ``n D^D / ((n-D)(D+1)^{D+1})``
:func:`optimal_transmitters_general`, :func:`general_upper_bound`  Theorem 3
:func:`optimal_transmitters_constrained`, :func:`constrained_upper_bound`
                          Theorem 4
:func:`r_ratio`           the ratio function ``r(x)`` of section 7
:func:`thm8_ratio_lower_bound`   Theorem 8's bound on
                          ``Thr_ave(constructed) / Thr*``
:func:`thm9_min_throughput_bound` Theorem 9's bound on the constructed
                          schedule's minimum throughput
========================  ====================================================
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from math import ceil, comb, floor

import numpy as np

from repro._validation import check_class_params, check_int
from repro.combinatorics.coverfree import max_coverage
from repro.core.schedule import Schedule
from repro.core.transparency import free_slots

__all__ = [
    "guaranteed_slots",
    "min_throughput",
    "average_throughput",
    "average_throughput_bruteforce",
    "g",
    "g_upper_bound",
    "optimal_transmitters_general",
    "general_upper_bound",
    "optimal_transmitters_constrained",
    "constrained_upper_bound",
    "r_ratio",
    "thm8_ratio_lower_bound",
    "thm9_min_throughput_bound",
]


def guaranteed_slots(schedule: Schedule, x: int, y: int, others: tuple[int, ...]
                     ) -> int:
    """``T(x, y, S) = recv(y) & freeSlots(x, {y} | S)`` as a slot bitmask.

    The slots in which a transmission from *x* to *y* is guaranteed to
    succeed when *y*'s neighbourhood is ``{x} | S``.
    """
    return schedule.recv_mask(y) & free_slots(schedule, x, (y, *others))


def min_throughput(schedule: Schedule, d: int, *, exact: bool = True,
                   samples: int = 200,
                   rng: np.random.Generator | None = None) -> Fraction:
    """Definition 1: the minimum worst-case throughput in ``N_n^D``.

    ``min over (x, y, S) of |T(x, y, S)| / L`` with ``|S| = D - 1``.  The
    adversarial neighbourhood ``S`` maximizes the number of ``sigma(x, y)``
    slots covered by interferers; with ``exact=True`` that maximum is found
    by exact branch-and-bound (:func:`repro.combinatorics.coverfree.max_coverage`),
    otherwise it is estimated from random samples of ``S`` (yielding an
    upper bound on the true minimum).
    """
    n, d = check_class_params(schedule.n, d)  # D <= n-1 gives |S| = D-1 <= n-2
    length = schedule.frame_length
    best: Fraction | None = None
    rng = rng if rng is not None else np.random.default_rng()
    for x in range(n):
        for y in range(n):
            if y == x:
                continue
            target = schedule.tran_mask(x) & schedule.recv_mask(y)
            if target == 0:
                return Fraction(0)
            others = [z for z in range(n) if z != x and z != y]
            masks = [schedule.tran_mask(z) & target for z in others]
            if exact:
                covered = max_coverage(target, masks, d - 1)
            else:
                covered = 0
                for _ in range(samples):
                    chosen = rng.choice(len(others), size=d - 1, replace=False)
                    union = 0
                    for c in chosen:
                        union |= masks[int(c)]
                    covered = max(covered, union.bit_count())
            value = Fraction(target.bit_count() - covered, length)
            if best is None or value < best:
                best = value
                if best == 0:
                    return best
    assert best is not None
    return best


def average_throughput(schedule: Schedule, d: int) -> Fraction:
    """Theorem 2's closed form for the average worst-case throughput.

    ``Thr_ave = sum_i |T[i]| |R[i]| C(n - |T[i]| - 1, D - 1)
    / (n (n-1) C(n-2, D-1) L)``.  Depends only on the per-slot transmitter
    and receiver *counts* — the paper's central structural observation.
    """
    n, d = check_class_params(schedule.n, d)
    length = schedule.frame_length
    total = 0
    for t_count, r_count in zip(schedule.tx_counts, schedule.rx_counts):
        if t_count == n:
            continue  # |R[i]| == 0, so the slot contributes nothing
        total += t_count * r_count * comb(n - t_count - 1, d - 1)
    return Fraction(total, n * (n - 1) * comb(n - 2, d - 1) * length)


def average_throughput_bruteforce(schedule: Schedule, d: int) -> Fraction:
    """Definition 2 evaluated literally (sums over all ``(x, y, S)``).

    Exponential in ``D``; exists to cross-validate Theorem 2's closed form
    in the tests and benchmarks (experiment E2).
    """
    n, d = check_class_params(schedule.n, d)
    length = schedule.frame_length
    total = 0
    for x in range(n):
        for y in range(n):
            if y == x:
                continue
            others = [z for z in range(n) if z != x and z != y]
            for combo in combinations(others, d - 1):
                total += guaranteed_slots(schedule, x, y, combo).bit_count()
    return Fraction(total, n * (n - 1) * comb(n - 2, d - 1) * length)


def g(n: int, d: int, x: int) -> Fraction:
    """The function ``g_{n,D}(x) = x C(n-x, D) / (n C(n-1, D))`` of section 5.

    Interpreted as the average worst-case throughput of a non-sleeping
    schedule whose every slot has exactly *x* transmitters.
    """
    n, d = check_class_params(n, d)
    x = check_int(x, "x", minimum=0, maximum=n)
    return Fraction(x * comb(n - x, d), n * comb(n - 1, d))


def g_upper_bound(n: int, d: int) -> Fraction:
    """Property (1) of ``g``: ``g_{n,D}(x) <= n D^D / ((n-D)(D+1)^{D+1})``."""
    n, d = check_class_params(n, d)
    return Fraction(n * d**d, (n - d) * (d + 1) ** (d + 1))


def optimal_transmitters_general(n: int, d: int) -> int:
    """Theorem 3's ``alpha_T*``: the per-slot transmitter count maximizing ``g``.

    One of ``floor((n-D)/(D+1))`` and ``ceil((n-D)/(D+1))``, chosen by the
    paper's explicit comparison of ``x C(n-x, D)``.
    """
    n, d = check_class_params(n, d)
    fl = floor(Fraction(n - d, d + 1))
    ce = ceil(Fraction(n - d, d + 1))
    if fl * comb(n - fl, d) >= ce * comb(n - ce, d):
        return fl
    return ce


def general_upper_bound(n: int, d: int) -> Fraction:
    """Theorem 3's upper bound ``Thr* = g_{n,D}(alpha_T*)`` on any schedule.

    Attained exactly by non-sleeping schedules with ``|T[i]| = alpha_T*``
    (hence ``|R[i]| = n - alpha_T*``) in every slot.
    """
    return g(n, d, optimal_transmitters_general(n, d))


def optimal_transmitters_constrained(n: int, d: int, alpha_t: int) -> int:
    """Theorem 4's ``alpha_T* = min(alpha_T, alpha)`` for ``(aT, aR)``-schedules.

    ``alpha`` is the unconstrained maximizer of ``x C(n-x-1, D-1)``, one of
    ``floor((n-D)/D)`` and ``ceil((n-D)/D)`` by the paper's comparison.
    """
    n, d = check_class_params(n, d)
    alpha_t = check_int(alpha_t, "alpha_t", minimum=1)
    fl = floor(Fraction(n - d, d))
    ce = ceil(Fraction(n - d, d))
    if fl * comb(n - fl - 1, d - 1) >= ce * comb(n - ce - 1, d - 1):
        alpha = fl
    else:
        alpha = ce
    return min(alpha_t, alpha)


def constrained_upper_bound(n: int, d: int, alpha_t: int, alpha_r: int) -> Fraction:
    """Theorem 4's bound ``Thr*_{aR,aT}`` on any ``(alpha_T, alpha_R)``-schedule.

    ``alpha_R alpha_T* C(n - alpha_T* - 1, D-1) / (n (n-1) C(n-2, D-1))``;
    attained iff every slot has exactly ``alpha_T*`` transmitters and
    ``alpha_R`` receivers.
    """
    n, d = check_class_params(n, d)
    alpha_r = check_int(alpha_r, "alpha_r", minimum=1)
    at_star = optimal_transmitters_constrained(n, d, alpha_t)
    return Fraction(
        alpha_r * at_star * comb(n - at_star - 1, d - 1),
        n * (n - 1) * comb(n - 2, d - 1),
    )


def r_ratio(n: int, d: int, alpha_t_star: int, x: int) -> Fraction:
    """The section 7 ratio ``r(x) = (x / aT*) prod_{i=1}^{D-1} (n-i-x)/(n-i-aT*)``.

    ``r(|T[i]|)`` measures how close a slot with ``|T[i]|`` transmitters
    (and a full complement of ``alpha_R`` receivers) comes to the optimal
    per-slot contribution; ``r(alpha_T*) == 1``.
    """
    n, d = check_class_params(n, d)
    alpha_t_star = check_int(alpha_t_star, "alpha_t_star", minimum=1, maximum=n - 1)
    x = check_int(x, "x", minimum=0, maximum=n)
    value = Fraction(x, alpha_t_star)
    for i in range(1, d):
        denom = n - i - alpha_t_star
        if denom <= 0:
            raise ValueError(
                f"r(x) undefined: n - {i} - alpha_T* = {denom} <= 0 "
                f"(alpha_T*={alpha_t_star} too large for n={n}, D={d})"
            )
        value *= Fraction(n - i - x, denom)
    return value


def thm8_ratio_lower_bound(source: Schedule, d: int, alpha_t: int, alpha_r: int
                           ) -> Fraction:
    """Theorem 8's lower bound on ``Thr_ave(constructed) / Thr*_{aT,aR}``.

    *source* is the topology-transparent non-sleeping schedule fed to the
    Figure 2 construction.  With ``Min = min_i |T[i]|``,
    ``A1 = {i : |T[i]| < aT*}``, ``A2 = {i : |T[i]| >= aT*}`` and
    ``c = (ceil(n / alpha_m) - 1) / ceil((n - Min) / aR)`` where
    ``alpha_m = max(aT*, aR)``, the bound is
    ``(r(Min) |A1| + c |A2|) / (|A1| + c |A2|)``; it equals 1 (optimality)
    when ``Min >= alpha_T*``.
    """
    n, d = check_class_params(source.n, d)
    alpha_r = check_int(alpha_r, "alpha_r", minimum=1)
    at_star = optimal_transmitters_constrained(n, d, alpha_t)
    counts = source.tx_counts
    minimum = min(counts)
    a1 = sum(1 for c in counts if c < at_star)
    a2 = len(counts) - a1
    if a1 == 0:
        return Fraction(1)
    alpha_m = max(at_star, alpha_r)
    c = Fraction(ceil(Fraction(n, alpha_m)) - 1, ceil(Fraction(n - minimum, alpha_r)))
    r_min = r_ratio(n, d, at_star, minimum)
    return (r_min * a1 + c * a2) / (a1 + c * a2)


def thm9_min_throughput_bound(source: Schedule, d: int, alpha_t: int, alpha_r: int,
                              constructed_length: int | None = None) -> Fraction:
    """Theorem 9's lower bound on the constructed schedule's minimum throughput.

    ``Thr_min(constructed) >= (L / L_bar) Thr_min(source)
    >= Thr_min(source) / (ceil(Max / aT*) ceil((n - Min) / aR))``.

    When *constructed_length* (``L_bar``) is given, the sharper first form
    is returned; otherwise the closed-form second bound.  Note the minimum
    throughput of *source* is computed exactly (adversarial ``S``).
    """
    n, d = check_class_params(source.n, d)
    alpha_r = check_int(alpha_r, "alpha_r", minimum=1)
    at_star = optimal_transmitters_constrained(n, d, alpha_t)
    thr_min = min_throughput(source, d, exact=True)
    if constructed_length is not None:
        constructed_length = check_int(constructed_length, "constructed_length",
                                       minimum=1)
        return Fraction(source.frame_length, constructed_length) * thr_min
    counts = source.tx_counts
    expansion = ceil(Fraction(max(counts), at_star)) * ceil(
        Fraction(n - min(counts), alpha_r)
    )
    return thr_min / expansion
