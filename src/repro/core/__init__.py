"""The paper's primary contribution: topology-transparent duty cycling.

Modules
-------
:mod:`repro.core.schedule`
    The ``<T, R>`` schedule datatype of section 3 (bitmask-backed), plus
    validation and per-node slot-set accessors.
:mod:`repro.core.transparency`
    ``freeSlots``, ``sigma`` and the three topology-transparency
    requirements of section 4, with exact and randomized checkers.
:mod:`repro.core.throughput`
    The worst-case throughput theory of section 5: Definitions 1-2, the
    closed form of Theorem 2, the function ``g_{n,D}``, and the upper
    bounds / optimizers of Theorems 3-4, plus the Theorem 8/9 bounds of
    section 7.
:mod:`repro.core.construction`
    The Figure 2 algorithm converting a topology-transparent non-sleeping
    schedule into a topology-transparent ``(alpha_T, alpha_R)``-schedule,
    including the balanced-energy variant sketched at the end of section 7.
:mod:`repro.core.nonsleeping`
    Factories for topology-transparent non-sleeping schedules built on the
    :mod:`repro.combinatorics` substrate (TDMA, polynomial/orthogonal-array,
    Steiner, projective-plane), with automatic parameter selection.
"""

from repro.core.schedule import Schedule
from repro.core.transparency import (
    free_slots,
    sigma,
    satisfies_requirement1,
    satisfies_requirement2,
    satisfies_requirement3,
    is_topology_transparent,
    find_transparency_violation,
)
from repro.core.throughput import (
    guaranteed_slots,
    min_throughput,
    average_throughput,
    average_throughput_bruteforce,
    g,
    g_upper_bound,
    optimal_transmitters_general,
    general_upper_bound,
    optimal_transmitters_constrained,
    constrained_upper_bound,
    r_ratio,
    thm8_ratio_lower_bound,
    thm9_min_throughput_bound,
)
from repro.core.construction import construct, construct_exact, frame_length_formula
from repro.core.latency import (
    max_cyclic_gap,
    link_access_delay,
    worst_link_access_delay,
    path_delay_bound,
    frame_delay_bound,
)
from repro.core.planner import Plan, plan_schedule, candidate_sources
from repro.core.composition import (
    permute_slots,
    relabel_nodes,
    concatenate,
    rotate,
    interleave_construction,
)
from repro.core.serialization import (
    schedule_to_dict,
    schedule_from_dict,
    save_schedule,
    load_schedule,
)
from repro.core.nonsleeping import (
    tdma_schedule,
    from_cover_free_family,
    polynomial_schedule,
    steiner_schedule,
    projective_plane_schedule,
    mols_schedule,
    best_nonsleeping_schedule,
)

__all__ = [
    "Schedule",
    "free_slots",
    "sigma",
    "satisfies_requirement1",
    "satisfies_requirement2",
    "satisfies_requirement3",
    "is_topology_transparent",
    "find_transparency_violation",
    "guaranteed_slots",
    "min_throughput",
    "average_throughput",
    "average_throughput_bruteforce",
    "g",
    "g_upper_bound",
    "optimal_transmitters_general",
    "general_upper_bound",
    "optimal_transmitters_constrained",
    "constrained_upper_bound",
    "r_ratio",
    "thm8_ratio_lower_bound",
    "thm9_min_throughput_bound",
    "construct",
    "construct_exact",
    "frame_length_formula",
    "tdma_schedule",
    "from_cover_free_family",
    "polynomial_schedule",
    "steiner_schedule",
    "projective_plane_schedule",
    "mols_schedule",
    "best_nonsleeping_schedule",
    "max_cyclic_gap",
    "link_access_delay",
    "worst_link_access_delay",
    "path_delay_bound",
    "frame_delay_bound",
    "Plan",
    "plan_schedule",
    "candidate_sources",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "permute_slots",
    "relabel_nodes",
    "concatenate",
    "rotate",
    "interleave_construction",
]
