"""Worst-case latency analysis of topology-transparent schedules.

The paper's goal statement is "bounding packet latency in the presence of
collisions"; transparency delivers that bound implicitly: every link gets a
guaranteed slot each frame, so a packet waits at most one frame per hop.
This module sharpens the implicit bound:

* :func:`max_cyclic_gap` — the longest wait between consecutive guaranteed
  slots of a periodic slot set;
* :func:`link_access_delay` — the worst-case slots-until-delivery for one
  directed link under an adversarial neighbourhood (exact, enumerating
  ``S``; exponential in ``D`` — intended for small instances);
* :func:`worst_link_access_delay` — the maximum over all links, i.e. the
  per-hop latency bound a deployment can quote;
* :func:`path_delay_bound` — additive multi-hop bound along a route;
* :func:`frame_delay_bound` — the cheap universal bound ``2L - 1`` implied
  by one-guaranteed-slot-per-frame, for comparison with the exact values.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from repro._validation import check_class_params, check_int
from repro.core.schedule import Schedule
from repro.core.throughput import guaranteed_slots

__all__ = [
    "max_cyclic_gap",
    "mean_cyclic_wait",
    "link_access_delay",
    "mean_link_access_delay",
    "worst_link_access_delay",
    "path_delay_bound",
    "frame_delay_bound",
]


def max_cyclic_gap(slot_mask: int, frame_length: int) -> int:
    """Worst wait (in slots) for the next slot of a periodic slot set.

    A packet arriving right after slot ``p_i`` of the set waits until the
    next member ``p_{i+1}`` (cyclically, across the frame boundary); the
    result is the maximum of those distances.  For the empty set the wait
    is unbounded and ``ValueError`` is raised.

    >>> max_cyclic_gap(0b00100010, 8)  # slots {1, 5} in a frame of 8
    4
    """
    check_int(frame_length, "frame_length", minimum=1)
    check_int(slot_mask, "slot_mask", minimum=0,
              maximum=(1 << frame_length) - 1)
    if slot_mask == 0:
        raise ValueError("empty slot set has unbounded delay")
    positions = [i for i in range(frame_length) if slot_mask >> i & 1]
    worst = 0
    for a, b in zip(positions, positions[1:]):
        worst = max(worst, b - a)
    worst = max(worst, positions[0] + frame_length - positions[-1])
    return worst


def mean_cyclic_wait(slot_mask: int, frame_length: int) -> Fraction:
    """Expected wait (slots) to the next set slot for a uniform arrival phase.

    A packet born at the start of a uniformly random slot waits until the
    end of the next slot in the set (inclusive — transmitting takes the
    slot, matching the engine's latency convention).  With gap lengths
    ``g_1..g_m`` between consecutive set slots (cyclically,
    ``sum g_i = L``), the expectation is ``sum g_i (g_i + 1) / (2 L)``.

    Exact, and validated against simulated single-packet latencies in
    ``tests/core/test_latency.py``.

    >>> mean_cyclic_wait(0b0001, 4)    # one slot per frame of 4
    Fraction(5, 2)
    """
    check_int(frame_length, "frame_length", minimum=1)
    check_int(slot_mask, "slot_mask", minimum=0,
              maximum=(1 << frame_length) - 1)
    if slot_mask == 0:
        raise ValueError("empty slot set has unbounded wait")
    positions = [i for i in range(frame_length) if slot_mask >> i & 1]
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    gaps.append(positions[0] + frame_length - positions[-1])
    total = sum(g * (g + 1) for g in gaps)
    return Fraction(total, 2 * frame_length)


def mean_link_access_delay(schedule: Schedule, d: int, x: int, y: int
                           ) -> Fraction:
    """Worst-neighbourhood *expected* delay for a packet from *x* to *y*.

    Like :func:`link_access_delay` but averaging over the packet's arrival
    phase (uniform) instead of taking the adversarial phase; the
    neighbourhood ``S`` remains adversarial (max over ``S``).  Exponential
    in ``D``.
    """
    n, d = check_class_params(schedule.n, d)
    check_int(x, "x", minimum=0, maximum=n - 1)
    check_int(y, "y", minimum=0, maximum=n - 1)
    if x == y:
        raise ValueError("x and y must differ")
    others = [z for z in range(n) if z != x and z != y]
    worst: Fraction | None = None
    for s in combinations(others, d - 1):
        mask = guaranteed_slots(schedule, x, y, s)
        if mask == 0:
            raise ValueError(
                f"link {x}->{y} has no guaranteed slot for neighbourhood "
                f"{s}; the schedule is not topology-transparent for D={d}"
            )
        value = mean_cyclic_wait(mask, schedule.frame_length)
        if worst is None or value > worst:
            worst = value
    assert worst is not None
    return worst


def link_access_delay(schedule: Schedule, d: int, x: int, y: int) -> int:
    """Exact worst-case delay (slots) for a packet from *x* to *y* in ``N_n^D``.

    The adversary chooses *y*'s other neighbours ``S`` (``|S| = D - 1``)
    and the packet's arrival slot; the delay is the wait until the next
    guaranteed slot of ``T(x, y, S)``.  Exponential in ``D`` (enumerates
    all ``S``); raises ``ValueError`` if some ``S`` leaves the link with no
    guaranteed slot (the schedule is not topology-transparent).
    """
    n, d = check_class_params(schedule.n, d)
    check_int(x, "x", minimum=0, maximum=n - 1)
    check_int(y, "y", minimum=0, maximum=n - 1)
    if x == y:
        raise ValueError("x and y must differ")
    length = schedule.frame_length
    others = [z for z in range(n) if z != x and z != y]
    worst = 0
    for s in combinations(others, d - 1):
        mask = guaranteed_slots(schedule, x, y, s)
        if mask == 0:
            raise ValueError(
                f"link {x}->{y} has no guaranteed slot for neighbourhood "
                f"{s}; the schedule is not topology-transparent for D={d}"
            )
        worst = max(worst, max_cyclic_gap(mask, length))
    return worst


def worst_link_access_delay(schedule: Schedule, d: int) -> int:
    """The per-hop worst-case delay bound: max of :func:`link_access_delay`
    over all ordered node pairs.  This is the number a deployment quotes as
    "any neighbour hears me within W slots, whatever the topology does"."""
    n, d = check_class_params(schedule.n, d)
    worst = 0
    for x in range(n):
        for y in range(n):
            if x != y:
                worst = max(worst, link_access_delay(schedule, d, x, y))
    return worst


def path_delay_bound(schedule: Schedule, d: int, path: list[int]) -> int:
    """Additive worst-case delay along *path* (consecutive nodes adjacent).

    Sums the exact per-link worst delays; a valid end-to-end bound because
    each hop's wait starts when the previous hop delivers.
    """
    if len(path) < 2:
        raise ValueError("a path needs at least two nodes")
    total = 0
    for a, b in zip(path, path[1:]):
        total += link_access_delay(schedule, d, a, b)
    return total


def frame_delay_bound(schedule: Schedule) -> int:
    """The universal transparency bound: at most ``2L - 1`` slots per hop.

    One guaranteed slot per frame means a packet arriving just after the
    slot waits through the rest of this frame plus the next frame's prefix.
    Cheap but loose; the exact functions above quantify how loose.
    """
    return 2 * schedule.frame_length - 1
