"""The Figure 2 construction: non-sleeping schedule -> duty-cycled schedule.

Given a topology-transparent non-sleeping schedule ``<T>`` and energy
parameters ``alpha_T, alpha_R`` with ``alpha_T + alpha_R <= n``, the
algorithm emits, for every source slot ``i``:

1. a division of ``T[i]`` into ``k_T = ceil(|T[i]| / alpha_T*)`` subsets of
   size exactly ``min(alpha_T*, |T[i]|)`` (subsets may overlap — the last
   chunk is the final ``alpha_T*`` elements);
2. a division of ``R[i] = V - T[i]`` into ``k_R = ceil(|R[i]| / alpha_R)``
   subsets of size ``min(alpha_R, |R[i]|)``;
3. one constructed slot per ``(T-chunk, R-chunk)`` pair, padding the
   receiver set with nodes outside the transmitter chunk up to ``alpha_R``
   (line 8 of Figure 2).

``alpha_T*`` is Theorem 4's optimal per-slot transmitter count
``min(alpha_T, ~ (n - D)/D)``; :func:`construct_exact` skips the
optimization and uses caller-specified chunk sizes (the remark after
Theorem 6).

The paper proves the choice of division and padding does not affect
correctness (Theorem 6), frame length (Theorem 7) or average worst-case
throughput (Theorem 8).  Two division strategies are provided:

* ``balanced=False`` — contiguous chunks (overlapping last chunk);
* ``balanced=True`` — the section 7 balanced-energy variant: cyclic,
  evenly-spaced chunks in which every element of the divided set appears in
  the same number of subsets, plus round-robin receiver padding.  When the
  chunk size does not divide the set size this needs
  ``m / gcd(m, size) >= ceil(m / size)`` chunks, trading frame length for
  exact energy balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, gcd

from repro._validation import check_class_params, check_int
from repro.core.schedule import Schedule
from repro.core.throughput import optimal_transmitters_constrained

__all__ = [
    "construct",
    "construct_exact",
    "construct_detailed",
    "ConstructionResult",
    "frame_length_formula",
    "contiguous_chunks",
    "balanced_chunks",
]


def contiguous_chunks(elems: list[int], size: int) -> list[list[int]]:
    """Divide *elems* into ``ceil(m/size)`` chunks of size ``min(size, m)``.

    Chunks are contiguous runs; when ``size`` does not divide ``m`` the last
    chunk is the final ``size`` elements and overlaps its predecessor, which
    keeps every chunk at the exact size Figure 2's line 3 requires.
    """
    m = len(elems)
    if m == 0:
        return []
    size = min(check_int(size, "size", minimum=1), m)
    k = ceil(m / size)
    out = [elems[j * size:(j + 1) * size] for j in range(k - 1)]
    out.append(elems[m - size:])
    return out


def balanced_chunks(elems: list[int], size: int) -> list[list[int]]:
    """Divide *elems* into evenly-covering cyclic chunks of equal size.

    Emits ``m / gcd(m, size)`` chunks of size ``min(size, m)`` starting at
    offsets ``0, size, 2*size, ...`` modulo ``m``; every element appears in
    exactly ``size / gcd(m, size)`` chunks, realizing the balanced-energy
    division of section 7.  Coincides with :func:`contiguous_chunks` count
    when ``size`` divides ``m``.
    """
    m = len(elems)
    if m == 0:
        return []
    size = min(check_int(size, "size", minimum=1), m)
    k = m // gcd(m, size)
    out = []
    for j in range(k):
        start = (j * size) % m
        chunk = [elems[(start + t) % m] for t in range(size)]
        out.append(chunk)
    return out


@dataclass(frozen=True)
class ConstructionResult:
    """Output of :func:`construct_detailed`.

    Attributes
    ----------
    schedule:
        The constructed ``(alpha_T, alpha_R)``-schedule ``<T_bar, R_bar>``.
    alpha_t_star:
        The per-slot transmitter budget actually used for the T-divisions.
    alpha_r:
        The per-slot receiver budget.
    slot_origin:
        ``slot_origin[k]`` is the source-slot index whose iteration of the
        Figure 2 outer loop emitted constructed slot ``k`` (the sets
        ``I_i`` in the proofs of Theorems 8 and 9).
    source:
        The input non-sleeping schedule ``<T>``.
    """

    schedule: Schedule
    alpha_t_star: int
    alpha_r: int
    slot_origin: tuple[int, ...]
    source: Schedule


def _validate_inputs(source: Schedule, alpha_t: int, alpha_r: int) -> None:
    alpha_t = check_int(alpha_t, "alpha_t", minimum=1)
    alpha_r = check_int(alpha_r, "alpha_r", minimum=1)
    if alpha_t + alpha_r > source.n:
        raise ValueError(
            "need alpha_T + alpha_R <= n for receiver padding; "
            f"got {alpha_t} + {alpha_r} > {source.n}"
        )
    if not source.is_non_sleeping():
        raise ValueError("the source schedule must be non-sleeping (R[i] = V - T[i])")


def _run_construction(source: Schedule, chunk_t: int, alpha_r: int,
                      balanced: bool) -> ConstructionResult:
    """Core of Figure 2 given a fixed T-chunk size (``alpha_T*``)."""
    n = source.n
    divide = balanced_chunks if balanced else contiguous_chunks
    tx_out: list[int] = []
    rx_out: list[int] = []
    origin: list[int] = []
    pad_pointer = 0  # round-robin start for balanced receiver padding
    for i in range(source.frame_length):
        t_elems = sorted(source.tx_set(i))
        r_elems = sorted(source.rx_set(i))
        t_chunks = divide(t_elems, chunk_t)
        r_chunks = divide(r_elems, alpha_r)
        for t_chunk in t_chunks:
            t_mask = 0
            for v in t_chunk:
                t_mask |= 1 << v
            for r_chunk in r_chunks:
                r_mask = 0
                for v in r_chunk:
                    r_mask |= 1 << v
                deficit = alpha_r - len(r_chunk)
                if deficit > 0:
                    # Line 8: top up with nodes outside T_bar[k] (and not
                    # already receiving).  Contiguous mode scans ascending
                    # ids; balanced mode round-robins to spread the extra
                    # awake slots across nodes.
                    forbidden = t_mask | r_mask
                    added = 0
                    for step in range(n):
                        cand = (pad_pointer + step) % n if balanced else step
                        bit = 1 << cand
                        if forbidden & bit:
                            continue
                        r_mask |= bit
                        forbidden |= bit
                        added += 1
                        if added == deficit:
                            if balanced:
                                pad_pointer = (cand + 1) % n
                            break
                    if added < deficit:  # pragma: no cover - guarded by validation
                        raise AssertionError(
                            "receiver padding ran out of nodes; "
                            "alpha_T + alpha_R <= n validation is buggy"
                        )
                tx_out.append(t_mask)
                rx_out.append(r_mask)
                origin.append(i)
    schedule = Schedule(n, tuple(tx_out), tuple(rx_out))
    return ConstructionResult(schedule, chunk_t, alpha_r, tuple(origin), source)


def construct_detailed(source: Schedule, d: int, alpha_t: int, alpha_r: int,
                       *, balanced: bool = False) -> ConstructionResult:
    """Figure 2's main program, returning the schedule plus provenance.

    Computes ``alpha_T* = min(alpha_T, ~ (n-D)/D)`` per Theorem 4 and runs
    ``Construct(alpha_T*, alpha_R, <T>)``.
    """
    n, d = check_class_params(source.n, d)
    _validate_inputs(source, alpha_t, alpha_r)
    at_star = optimal_transmitters_constrained(n, d, alpha_t)
    if at_star < 1:
        raise ValueError(
            f"Theorem 4 optimal transmitter count is {at_star} for "
            f"(n={n}, D={d}, alpha_T={alpha_t}); no useful schedule exists"
        )
    return _run_construction(source, at_star, alpha_r, balanced)


def construct(source: Schedule, d: int, alpha_t: int, alpha_r: int,
              *, balanced: bool = False) -> Schedule:
    """Figure 2's main program: a TT ``(alpha_T, alpha_R)``-schedule.

    Parameters
    ----------
    source:
        A topology-transparent non-sleeping schedule ``<T>`` for
        ``N_n^D`` (transparency is the caller's precondition, exactly as
        in the paper; it is *not* re-verified here because the exact check
        can dominate the construction cost — use
        :func:`repro.core.transparency.is_topology_transparent`).
    d:
        The degree bound ``D`` of the target network class.
    alpha_t, alpha_r:
        Per-slot transmitter/receiver budgets, ``alpha_T + alpha_R <= n``.
    balanced:
        Use the section 7 balanced-energy divisions (see module docstring).
    """
    return construct_detailed(source, d, alpha_t, alpha_r, balanced=balanced).schedule


def construct_exact(source: Schedule, alpha_t_prime: int, alpha_r_prime: int,
                    *, balanced: bool = False) -> Schedule:
    """``Construct(alpha_T', alpha_R', <T>)`` without the Theorem 4 optimization.

    Per the remark after Theorem 6: if ``|T[i]| >= alpha_T'`` for all slots,
    every constructed slot has *exactly* ``alpha_T'`` transmitters and
    ``alpha_R'`` receivers.
    """
    alpha_t_prime = check_int(alpha_t_prime, "alpha_t_prime", minimum=1)
    _validate_inputs(source, alpha_t_prime, alpha_r_prime)
    return _run_construction(source, alpha_t_prime, alpha_r_prime, balanced).schedule


def frame_length_formula(source: Schedule, alpha_t_star: int, alpha_r: int,
                         *, balanced: bool = False) -> tuple[int, int]:
    """Theorem 7: the constructed frame length and its closed-form upper bound.

    Returns ``(exact, upper_bound)`` where ``exact`` is
    ``sum_i k_T(i) * k_R(i)`` (with the chunk counts of the selected
    division strategy) and ``upper_bound`` is
    ``ceil(Max / aT*) * ceil((n - Min) / aR) * L`` — the paper's bound for
    the contiguous division (it may be exceeded by the balanced variant,
    whose chunk counts can be larger; the exact value is always returned).
    """
    alpha_t_star = check_int(alpha_t_star, "alpha_t_star", minimum=1)
    alpha_r = check_int(alpha_r, "alpha_r", minimum=1)
    n = source.n
    exact = 0
    for i in range(source.frame_length):
        m_t = source.tx_counts[i]
        m_r = n - m_t
        if balanced:
            k_t = (m_t // gcd(m_t, min(alpha_t_star, m_t))) if m_t else 0
            k_r = (m_r // gcd(m_r, min(alpha_r, m_r))) if m_r else 0
        else:
            k_t = ceil(m_t / alpha_t_star) if m_t else 0
            k_r = ceil(m_r / alpha_r) if m_r else 0
        exact += k_t * k_r
    maximum = max(source.tx_counts)
    minimum = min(source.tx_counts)
    bound = ceil(maximum / alpha_t_star) * ceil((n - minimum) / alpha_r) \
        * source.frame_length
    return exact, bound
