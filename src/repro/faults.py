"""Deterministic fault injection shared by the simulator and the service.

The paper's whole argument is *guarantees under adversity*: a
topology-transparent schedule must deliver in every network of the class
``N_n^D``, whatever the adversary does to the topology.  This module makes
adversity a first-class, reproducible input.  A :class:`FaultPlan` is a
frozen, seeded description of every fault the run should experience:

* **simulator faults** — per-node crash/recover epochs (stochastic, with
  geometric sojourn times, or explicitly scripted outages) and per-link
  packet-loss probability layered on top of the collision rule of
  :class:`repro.simulation.engine.Simulator`;
* **worker faults** — crash / hang / slow / error injections for the
  provisioning runtime (:mod:`repro.service.runtime`), used by the crash-path
  tests and chaos benchmarks;
* **network faults** — per-connection refuse / reset / delay / truncate
  injections for the chaos proxy (:mod:`repro.serve.chaos`), so the serve
  tier's failure behaviour under a misbehaving network is reproducible.

Every decision is a pure function of ``(seed, identifiers)`` — hashed with
SHA-256, never drawn from shared mutable RNG state — so two runs with the
same plan experience byte-identical fault sequences regardless of thread
or completion order.  The one exception is the stochastic node-outage
timeline, which needs temporal correlation (a crashed node *stays* crashed
for a sojourn) and therefore uses one seeded generator per node, again
independent of query order.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, fields
from typing import Any, Iterator

import numpy as np

from repro._validation import check_int, check_probability

__all__ = ["FaultPlan", "ActiveFaults", "WORKER_FAULT_KINDS",
           "PROXY_FAULT_KINDS", "unit_hash"]

#: Fault kinds a :class:`FaultPlan` may inject into a pool worker.  ``"ok"``
#: is the explicit no-op placeholder inside targeted sequences.
WORKER_FAULT_KINDS = ("crash", "hang", "slow", "error", "ok")

#: Fault kinds the chaos proxy may inject into one proxied connection:
#: refuse it outright, reset it mid-stream, delay its bytes, or truncate
#: the upstream response.
PROXY_FAULT_KINDS = ("refuse", "reset", "delay", "truncate")


def unit_hash(*parts: Any) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from hashable identifiers.

    SHA-256 over the canonical JSON encoding of *parts*; the same parts
    give the same value on every machine, process and Python version.
    Used for per-link loss lotteries, worker-fault draws and retry-backoff
    jitter, so fault injection never depends on shared RNG state.
    """
    canonical = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of every fault a run injects.

    Attributes
    ----------
    seed:
        Root seed; every derived decision hashes it in.
    node_crash_rate, node_recover_rate:
        Per-node per-slot probabilities of an up node crashing and a
        crashed node recovering (geometric sojourn times).  A recover rate
        of 0 makes crashes permanent.
    link_loss:
        Probability that an otherwise *clean* reception (exactly one
        transmitting neighbour) is destroyed anyway — lossy-radio noise on
        top of the paper's collision-only model.
    node_outages:
        Explicitly scripted downtime: ``(node, start_slot, end_slot)``
        triples, ``end_slot=None`` meaning "never recovers".  Scripted
        outages apply in addition to stochastic crashes.
    worker_crash_rate, worker_hang_rate, worker_slow_rate, worker_error_rate:
        Per-attempt probabilities that a provisioning pool worker dies
        (``os._exit``), hangs, sleeps ``slow_seconds`` before answering,
        or raises.  Stacked in that order from one uniform draw.
    hang_seconds, slow_seconds:
        Durations for the ``hang`` and ``slow`` injections.
    targeted_worker_faults:
        Scripted per-task injections: ``(digest, (kind, kind, ...))``
        pairs, one kind per attempt (attempts beyond the sequence run
        clean).  Takes precedence over the rate-based draw for that task.
    proxy_refuse_rate, proxy_reset_rate, proxy_delay_rate, proxy_truncate_rate:
        Per-connection probabilities that the chaos proxy refuses the
        connection outright, resets it mid-stream, delays its bytes, or
        truncates the upstream response.  Stacked in that order from one
        uniform draw keyed on the connection index.
    proxy_delay_seconds:
        Base duration of a ``delay`` injection; the actual delay is this
        scaled by a seeded jitter in ``[0.5, 1.5)``.
    """

    seed: int = 0
    node_crash_rate: float = 0.0
    node_recover_rate: float = 0.0
    link_loss: float = 0.0
    node_outages: tuple[tuple[int, int, int | None], ...] = ()
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    worker_slow_rate: float = 0.0
    worker_error_rate: float = 0.0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.05
    targeted_worker_faults: tuple[tuple[str, tuple[str, ...]], ...] = ()
    proxy_refuse_rate: float = 0.0
    proxy_reset_rate: float = 0.0
    proxy_delay_rate: float = 0.0
    proxy_truncate_rate: float = 0.0
    proxy_delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        check_int(self.seed, "seed", minimum=0)
        for name in ("node_crash_rate", "node_recover_rate", "link_loss",
                     "worker_crash_rate", "worker_hang_rate",
                     "worker_slow_rate", "worker_error_rate",
                     "proxy_refuse_rate", "proxy_reset_rate",
                     "proxy_delay_rate", "proxy_truncate_rate"):
            check_probability(getattr(self, name), name)
        total = (self.worker_crash_rate + self.worker_hang_rate
                 + self.worker_slow_rate + self.worker_error_rate)
        if total > 1.0:
            raise ValueError(f"worker fault rates sum to {total} > 1")
        proxy_total = (self.proxy_refuse_rate + self.proxy_reset_rate
                       + self.proxy_delay_rate + self.proxy_truncate_rate)
        if proxy_total > 1.0:
            raise ValueError(f"proxy fault rates sum to {proxy_total} > 1")
        if self.hang_seconds < 0 or self.slow_seconds < 0:
            raise ValueError("hang_seconds/slow_seconds must be >= 0")
        if self.proxy_delay_seconds < 0:
            raise ValueError("proxy_delay_seconds must be >= 0")
        for entry in self.node_outages:
            node, start, end = entry
            check_int(node, "node_outages node", minimum=0)
            check_int(start, "node_outages start", minimum=0)
            if end is not None and check_int(end, "node_outages end",
                                             minimum=0) <= start:
                raise ValueError(f"empty outage interval {entry}")
        for digest, kinds in self.targeted_worker_faults:
            if not isinstance(digest, str) or not digest:
                raise ValueError("targeted fault digest must be a non-empty "
                                 "string")
            for kind in kinds:
                if kind not in WORKER_FAULT_KINDS:
                    raise ValueError(
                        f"unknown worker fault kind {kind!r}; expected one "
                        f"of {WORKER_FAULT_KINDS}")

    # ------------------------------------------------------------------
    # what is switched on
    # ------------------------------------------------------------------
    @property
    def simulation_active(self) -> bool:
        """True when the plan injects any simulator-side fault."""
        return bool(self.node_crash_rate > 0 or self.link_loss > 0
                    or self.node_outages)

    @property
    def worker_active(self) -> bool:
        """True when the plan injects any provisioning-worker fault."""
        return bool(self.worker_crash_rate > 0 or self.worker_hang_rate > 0
                    or self.worker_slow_rate > 0 or self.worker_error_rate > 0
                    or self.targeted_worker_faults)

    @property
    def proxy_active(self) -> bool:
        """True when the plan injects any chaos-proxy network fault."""
        return bool(self.proxy_refuse_rate > 0 or self.proxy_reset_rate > 0
                    or self.proxy_delay_rate > 0
                    or self.proxy_truncate_rate > 0)

    # ------------------------------------------------------------------
    # worker-side decisions (provisioning runtime)
    # ------------------------------------------------------------------
    def worker_fault(self, digest: str, attempt: int) -> str | None:
        """The fault (if any) to inject into attempt *attempt* of a task.

        Targeted sequences win; otherwise one :func:`unit_hash` draw is
        split across the four rate thresholds.  Deterministic in
        ``(seed, digest, attempt)``, so retries see fresh draws but reruns
        see the same ones.
        """
        check_int(attempt, "attempt", minimum=0)
        for target, kinds in self.targeted_worker_faults:
            if target == digest:
                if attempt < len(kinds) and kinds[attempt] != "ok":
                    return kinds[attempt]
                return None
        if not (self.worker_crash_rate or self.worker_hang_rate
                or self.worker_slow_rate or self.worker_error_rate):
            return None
        u = unit_hash(self.seed, "worker", digest, attempt)
        for kind, rate in (("crash", self.worker_crash_rate),
                           ("hang", self.worker_hang_rate),
                           ("slow", self.worker_slow_rate),
                           ("error", self.worker_error_rate)):
            if u < rate:
                return kind
            u -= rate
        return None

    def backoff_jitter(self, digest: str, attempt: int) -> float:
        """Seeded retry-jitter factor in ``[0.5, 1.5)`` for one backoff."""
        return 0.5 + unit_hash(self.seed, "backoff", digest, attempt)

    # ------------------------------------------------------------------
    # network-side decisions (chaos proxy)
    # ------------------------------------------------------------------
    def proxy_fault(self, connection: int) -> str | None:
        """The fault (if any) to inject into proxied connection *connection*.

        One :func:`unit_hash` draw keyed on ``(seed, connection)`` is
        split across the four rate thresholds, so a chaos run's fault
        sequence is a pure function of the seed and the accept order —
        byte-reproducible across reruns.
        """
        check_int(connection, "connection", minimum=0)
        if not self.proxy_active:
            return None
        u = unit_hash(self.seed, "proxy", connection)
        for kind, rate in (("refuse", self.proxy_refuse_rate),
                           ("reset", self.proxy_reset_rate),
                           ("delay", self.proxy_delay_rate),
                           ("truncate", self.proxy_truncate_rate)):
            if u < rate:
                return kind
            u -= rate
        return None

    def proxy_delay(self, connection: int) -> float:
        """Seconds a ``delay`` injection holds this connection's bytes."""
        return self.proxy_delay_seconds * (
            0.5 + unit_hash(self.seed, "proxy-delay", connection))

    def proxy_cut(self, connection: int, window: int) -> int:
        """Byte offset in ``[0, window)`` where a reset/truncate cuts.

        Deterministic in ``(seed, connection)``; the proxy applies it to
        the upstream response stream, so the same seed severs the same
        connection at the same byte.
        """
        check_int(window, "window", minimum=1)
        return int(unit_hash(self.seed, "proxy-cut", connection) * window)

    # ------------------------------------------------------------------
    # simulator-side decisions
    # ------------------------------------------------------------------
    def link_delivers(self, slot: int, src: int, dst: int) -> bool:
        """Whether a clean reception on ``src -> dst`` survives this slot.

        A pure function of ``(seed, slot, src, dst)`` — no RNG state — so
        the loss pattern is identical however the engine orders receivers.
        """
        if self.link_loss <= 0.0:
            return True
        return unit_hash(self.seed, "link", slot, src, dst) >= self.link_loss

    def compile(self, n: int) -> "ActiveFaults":
        """Bind the plan to an *n*-node network, with outage timelines."""
        return ActiveFaults(self, check_int(n, "n", minimum=1))

    # ------------------------------------------------------------------
    # interchange
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable document (inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "node_crash_rate": self.node_crash_rate,
            "node_recover_rate": self.node_recover_rate,
            "link_loss": self.link_loss,
            "node_outages": [list(entry) for entry in self.node_outages],
            "worker_crash_rate": self.worker_crash_rate,
            "worker_hang_rate": self.worker_hang_rate,
            "worker_slow_rate": self.worker_slow_rate,
            "worker_error_rate": self.worker_error_rate,
            "hang_seconds": self.hang_seconds,
            "slow_seconds": self.slow_seconds,
            "targeted_worker_faults": {
                digest: list(kinds)
                for digest, kinds in self.targeted_worker_faults
            },
            "proxy_refuse_rate": self.proxy_refuse_rate,
            "proxy_reset_rate": self.proxy_reset_rate,
            "proxy_delay_rate": self.proxy_delay_rate,
            "proxy_truncate_rate": self.proxy_truncate_rate,
            "proxy_delay_seconds": self.proxy_delay_seconds,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        """Parse a fault-plan document (see ``docs/robustness.md``).

        Every field is optional; unknown fields are rejected so a typoed
        rate can never silently disable itself.
        """
        if not isinstance(doc, dict):
            raise ValueError("fault plan must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"fault plan has unknown fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(doc)
        if "node_outages" in kwargs:
            kwargs["node_outages"] = tuple(
                (entry[0], entry[1], entry[2])
                for entry in kwargs["node_outages"])
        targeted = kwargs.get("targeted_worker_faults")
        if targeted is not None:
            if not isinstance(targeted, dict):
                raise ValueError("targeted_worker_faults must be an object "
                                 "mapping digest -> [kind, ...]")
            kwargs["targeted_worker_faults"] = tuple(
                (digest, tuple(kinds)) for digest, kinds in sorted(targeted.items()))
        return cls(**kwargs)


class ActiveFaults:
    """A :class:`FaultPlan` bound to a concrete *n*-node network.

    Holds the lazily generated per-node outage timelines (the only fault
    source that needs memory between slots); everything else delegates to
    the plan's pure hash draws.  Built via :meth:`FaultPlan.compile`.
    """

    def __init__(self, plan: FaultPlan, n: int) -> None:
        """Bind *plan* to *n* nodes; timelines generate on first query."""
        self.plan = plan
        self.n = n
        self._scripted: dict[int, list[tuple[int, int | None]]] = {}
        for node, start, end in plan.node_outages:
            self._scripted.setdefault(node, []).append((start, end))
        # Stochastic timelines: per-node toggle slots (up -> down -> up ...),
        # generated ahead of the queried slot.  State at slot 0 is up.
        self._toggles: dict[int, list[int]] = {}
        self._horizon: dict[int, float] = {}
        self._rngs: dict[int, np.random.Generator] = {}

    def node_up(self, node: int, slot: int) -> bool:
        """Whether *node* is alive (powered, participating) in *slot*."""
        for start, end in self._scripted.get(node, ()):
            if start <= slot and (end is None or slot < end):
                return False
        if self.plan.node_crash_rate <= 0.0:
            return True
        toggles = self._extend_timeline(node, slot)
        return bisect_right(toggles, slot) % 2 == 0

    def down_count(self, slot: int) -> int:
        """Number of nodes down in *slot* (for metrics accounting)."""
        return sum(1 for x in range(self.n) if not self.node_up(x, slot))

    def link_delivers(self, slot: int, src: int, dst: int) -> bool:
        """Delegate to :meth:`FaultPlan.link_delivers`."""
        return self.plan.link_delivers(slot, src, dst)

    def outage_epochs(self, node: int, horizon: int
                      ) -> Iterator[tuple[int, int | None]]:
        """Yield the (start, end) downtime epochs of *node* up to *horizon*.

        Scripted epochs come first, then generated stochastic ones;
        useful for reporting and for asserting determinism in tests.
        """
        yield from self._scripted.get(node, ())
        if self.plan.node_crash_rate <= 0.0:
            return
        toggles = self._extend_timeline(node, horizon)
        for i in range(0, len(toggles) - 1, 2):
            yield toggles[i], toggles[i + 1]
        if len(toggles) % 2 == 1:
            yield toggles[-1], None

    def _extend_timeline(self, node: int, slot: int) -> list[int]:
        """Generate the node's toggle slots past *slot*; return them."""
        toggles = self._toggles.setdefault(node, [])
        horizon = self._horizon.get(node, 0.0)
        if horizon > slot:
            return toggles
        rng = self._rngs.get(node)
        if rng is None:
            rng = np.random.default_rng([self.plan.seed, 0xD0DE, node])
            self._rngs[node] = rng
        while horizon <= slot:
            if len(toggles) % 2 == 0:  # up at the horizon: sample uptime
                horizon += float(rng.geometric(self.plan.node_crash_rate))
                toggles.append(int(horizon))
            elif self.plan.node_recover_rate <= 0.0:  # down forever
                horizon = float("inf")
            else:  # down at the horizon: sample downtime
                horizon += float(rng.geometric(self.plan.node_recover_rate))
                toggles.append(int(horizon))
        self._horizon[node] = horizon
        return toggles
