#!/usr/bin/env python3
"""The energy knob: sweeping (alpha_T, alpha_R) against throughput.

Theorem 4 says the achievable average worst-case throughput of an
(alpha_T, alpha_R)-schedule is linear in alpha_R and saturates in alpha_T
around (n - D)/D.  This example makes that trade-off concrete for a
50-node class: for each budget it builds the Figure 2 schedule, reports
its awake fraction (energy) and exact throughput, and marks the points
where the construction provably attains the Theorem 4 optimum
(Theorem 8's equality condition).

Run:  python examples/duty_cycle_tradeoff.py
"""

from fractions import Fraction

from repro import (
    average_throughput,
    constrained_upper_bound,
    construct,
    optimal_transmitters_constrained,
    polynomial_schedule,
)
from repro.analysis import Table


def main() -> None:
    n, d = 50, 3
    source = polynomial_schedule(n, d)
    print(f"Class N_{n}^{d}; source: {source}")
    print(f"Source min per-slot transmitters: {min(source.tx_counts)} "
          "(Theorem 8 optimality needs >= alpha_T*)")
    print()

    table = Table("alpha_t", "alpha_r", "alpha_t_star", "L", "awake_frac",
                  "throughput", "thm4_bound", "optimal",
                  title="Energy budget vs achieved worst-case throughput")
    for alpha_t in (2, 4, 7, 10):
        for alpha_r in (5, 10, 20, 40):
            if alpha_t + alpha_r > n:
                continue
            duty = construct(source, d, alpha_t, alpha_r)
            thr = average_throughput(duty, d)
            bound = constrained_upper_bound(n, d, alpha_t, alpha_r)
            table.row(
                alpha_t=alpha_t,
                alpha_r=alpha_r,
                alpha_t_star=optimal_transmitters_constrained(n, d, alpha_t),
                L=duty.frame_length,
                awake_frac=float(duty.average_duty_cycle()),
                throughput=thr,
                thm4_bound=bound,
                optimal=(Fraction(thr, bound) == 1),
            )
    print(table.render())
    print()
    print("Reading the table: throughput scales ~linearly with alpha_R")
    print("(more listeners per slot).  Rows with alpha_T <= 7 are provably")
    print("optimal because the source satisfies min|T[i]| = 7 >= alpha_T*")
    print("(Theorem 8's equality condition); at alpha_T = 10 the source's")
    print("slots are too thin to fill the budget and the ratio drops below 1")
    print("— exactly the degradation Theorem 8 prices in.")


if __name__ == "__main__":
    main()
