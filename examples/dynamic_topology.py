#!/usr/bin/env python3
"""Why topology transparency: surviving churn without rescheduling.

A topology-dependent TDMA (greedy distance-2 colouring) is shorter-framed
and collision-free — for the one topology it was computed on.  This
example runs periodic sensing on a grid, then rewires edges mid-mission
(nodes moved within the class bound N_16^4) and keeps both schedules
unchanged, refreshing only the routing tables:

* the colouring schedule starts colliding on the new edges and loses
  reports deterministically, until a (costly, global) recolouring could
  be disseminated;
* the constructed topology-transparent schedule keeps every link's
  per-frame guarantee, because the guarantee quantifies over *every*
  topology in the class.

Run:  python examples/dynamic_topology.py
"""

import numpy as np

from repro import construct, is_topology_transparent, polynomial_schedule
from repro.analysis.experiments import _rewire  # reuse the studied rewiring
from repro.baselines import coloring_schedule
from repro.simulation import PeriodicSensingTraffic, Simulator
from repro.simulation.routing import sink_tree
from repro.simulation.topology import grid


def run_phase(schedule, topo, period, slots):
    traffic = PeriodicSensingTraffic(topo, sink=0, period=period)
    sim = Simulator(topo, schedule, traffic, next_hops=sink_tree(topo, 0))
    m = sim.run_slots(slots)
    return m.delivery_ratio(), m.total_collisions(), m.mean_latency()


def main() -> None:
    rows = cols = 4
    n, d = rows * cols, 4
    rng = np.random.default_rng(9)
    before = grid(rows, cols)
    after = _rewire(before, d, count=6, rng=rng)
    changed = len(before.edges ^ after.edges)
    print(f"Grid {rows}x{cols}; mid-mission rewiring touches {changed} edges "
          f"(max degree stays <= {d}).")
    print()

    tt = construct(polynomial_schedule(n, d), d, alpha_t=4, alpha_r=8)
    colored = coloring_schedule(before)
    print(f"Transparent schedule: L={tt.frame_length}, "
          f"TT for the whole class: {is_topology_transparent(tt, d)}")
    print(f"Colouring schedule:   L={colored.frame_length}, computed for the "
          "'before' topology only")
    print()

    period, slots = 400, 8000
    print(f"{'scheme':<18}{'phase':<9}{'delivery':>9}{'collisions':>12}"
          f"{'latency':>9}")
    for name, sched in (("transparent", tt), ("d2-colouring", colored)):
        for phase, topo in (("before", before), ("after", after)):
            ratio, coll, lat = run_phase(sched, topo, period, slots)
            print(f"{name:<18}{phase:<9}{ratio:>9.3f}{coll:>12}{lat:>9.1f}")
    print()
    print("The colouring's collision-freedom is a property of one topology;")
    print("the transparent schedule's guarantee is a property of the CLASS.")


if __name__ == "__main__":
    main()
