#!/usr/bin/env python3
"""Environment monitoring: periodic sensing to a sink on a unit-disk field.

The canonical WSN workload of the paper's introduction: battery-powered
nodes scattered over a field report readings to a sink every few seconds.
This example deploys 36 nodes, builds a topology-transparent duty-cycled
schedule for the class N_36^4 — *without looking at the deployed
topology* — and compares it against always-on TDMA on the same field:

* delivery ratio and end-to-end latency (slots);
* awake fraction and energy per delivered report;
* projected network lifetime for a 2xAA-class battery budget.

Run:  python examples/environment_monitoring.py
"""

import numpy as np

from repro import construct, polynomial_schedule, tdma_schedule
from repro.simulation import (
    EnergyModel,
    PeriodicSensingTraffic,
    Simulator,
)
from repro.simulation.routing import sink_tree
from repro.simulation.topology import unit_disk


def run_scheme(name, schedule, topo, sink, period, slots):
    traffic = PeriodicSensingTraffic(topo, sink=sink, period=period)
    sim = Simulator(topo, schedule, traffic,
                    energy_model=EnergyModel(),
                    next_hops=sink_tree(topo, sink))
    metrics = sim.run_slots(slots)
    # 2xAA at 3 V ~ 2500 mAh ~ 27 kJ; per-node budget in millijoules.
    budget_mj = 27_000_000.0
    lifetime_days = sim.energy.lifetime_slots(budget_mj) * 0.01 / 86_400
    print(f"  {name}")
    print(f"    frame length           : {schedule.frame_length} slots")
    print(f"    delivery ratio         : {metrics.delivery_ratio():.3f}")
    print(f"    mean / p95 latency     : {metrics.mean_latency():.0f} / "
          f"{metrics.latency_percentile(95):.0f} slots")
    print(f"    awake fraction         : {sim.energy.awake_fraction():.1%}")
    delivered = metrics.delivered or 1
    print(f"    energy per delivered   : {sim.energy.total_mj() / delivered:.2f} mJ")
    print(f"    projected lifetime     : {lifetime_days:.0f} days "
          "(first node dies, 10 ms slots)")
    print()


def main() -> None:
    n, d = 36, 4
    rng = np.random.default_rng(2026)
    # Deploy until the field is connected (sparse fields can fragment).
    while True:
        topo = unit_disk(n, d, radius=0.32, rng=rng)
        if topo.is_connected():
            break
    sink = 0
    print(f"Deployed {n}-node unit-disk field, max degree "
          f"{topo.max_degree} (class N_{n}^{d}), sink = node {sink}")
    print()

    period = 1200         # one report per node per 1200 slots (12 s at 10 ms)
    slots = 48_000

    # The paper's pipeline: TT non-sleeping substrate -> Figure 2.
    source = polynomial_schedule(n, d)
    duty = construct(source, d, alpha_t=4, alpha_r=10)

    print("Schemes under one report / node / 12 s:")
    run_scheme("always-on TDMA (baseline)", tdma_schedule(n), topo, sink,
               period, slots)
    run_scheme("topology-transparent duty cycling (this paper)", duty, topo,
               sink, period, slots)

    print("The duty-cycled schedule was built from (n, D) alone: redeploying,")
    print("adding or moving nodes needs NO schedule recomputation as long as")
    print("the field stays inside the class N_36^4.")


if __name__ == "__main__":
    main()
