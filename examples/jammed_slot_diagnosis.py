#!/usr/bin/env python3
"""Dual use of the substrate: diagnosing jammed slots by group testing.

The same cover-free families that make schedules topology-transparent are
d-disjunct group-testing designs (the paper traces them to the group-
testing literature).  Practical payoff for a WSN operator: suppose up to
``d`` of the frame's slots are being jammed by an interferer.  Each node
transmits in the slots of its block; after one frame of per-NODE delivery
observations ("did anything from node x get through clean?") the operator
can identify exactly WHICH slots are jammed — without any per-slot
spectrum sensing — by running the group-testing decoder on the dual
family (slots pooled by the nodes that use them).

This example jams slots at random, simulates the observation vector, and
recovers the jammed set exactly.

Run:  python examples/jammed_slot_diagnosis.py
"""

import numpy as np

from repro.combinatorics.coverfree import CoverFreeFamily
from repro.combinatorics.grouptesting import decode, run_tests


def dual_family(family: CoverFreeFamily) -> CoverFreeFamily:
    """Swap roles: items = slots, pools = nodes.

    Block of slot ``s`` is the set of nodes transmitting in ``s``; a node
    "tests positive" when at least one of its slots is jammed (it loses
    traffic it should have delivered).
    """
    blocks = []
    for s in range(family.ground):
        mask = 0
        for node, node_block in enumerate(family.blocks):
            if node_block >> s & 1:
                mask |= 1 << node
        blocks.append(mask)
    return CoverFreeFamily(family.size, tuple(blocks))


def main() -> None:
    # The polynomial family for N_25^3: 25 nodes, 25 slots, each node in
    # 5 slots, each slot used by 5 nodes, pairwise overlap <= 1.
    family = CoverFreeFamily.from_polynomial_code(5, 1, count=25)
    dual = dual_family(family)
    d = 3  # diagnosing up to 3 jammed slots
    print(f"Frame of {family.ground} slots, {family.size} nodes; "
          f"slot-dual family is {d}-cover-free: {dual.is_d_cover_free(d)}")
    print()

    rng = np.random.default_rng(42)
    trials = 5
    for trial in range(trials):
        jammed = set(int(s) for s in
                     rng.choice(family.ground, size=d, replace=False))
        # Observation: node tests positive iff a jammed slot touches it.
        observations = run_tests(dual, jammed)
        positives = [x for x in range(dual.ground) if observations >> x & 1]
        diagnosed = decode(dual, observations)
        status = "RECOVERED" if diagnosed == jammed else "MISMATCH"
        print(f"trial {trial}: jammed slots {sorted(jammed)} -> "
              f"{len(positives)}/{dual.ground} nodes affected -> "
              f"diagnosed {sorted(diagnosed)}  [{status}]")
        assert diagnosed == jammed
    print()
    print("Up to 3 jammed slots pinpointed from 25 one-bit per-node")
    print("observations — no spectrum sensing, same combinatorics that")
    print("guarantees the schedule's topology transparency.")


if __name__ == "__main__":
    main()
