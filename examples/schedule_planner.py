#!/usr/bin/env python3
"""From an energy budget to a flashable schedule in one call.

The deployment-facing workflow: you know your class bound (n, D) and how
much radio-on time the battery allows; the planner searches every substrate
family and every (alpha_T, alpha_R) split inside the budget, scores each
candidate with the exact Theorem 2 throughput, and returns the winner.
The chosen schedule is then serialized to JSON (what you would flash) and
its worst-case per-hop latency is quoted via the exact access-delay
analysis.

Run:  python examples/schedule_planner.py
"""

import json
import tempfile
from pathlib import Path

from repro import (
    is_topology_transparent,
    load_schedule,
    plan_schedule,
    save_schedule,
    worst_link_access_delay,
)
from repro.core.latency import frame_delay_bound


def main() -> None:
    n, d = 20, 2
    print(f"Class N_{n}^{d}: up to {n} nodes, degree <= {d}")
    print()

    for budget in (0.25, 0.40, 0.60):
        plan = plan_schedule(n, d, max_duty=budget)
        print(f"Budget: radio on <= {budget:.0%} of slots")
        print(f"  chosen family      : {plan.family}")
        print(f"  (alpha_T, alpha_R) : ({plan.alpha_t}, {plan.alpha_r})")
        print(f"  frame length       : {plan.frame_length} slots")
        print(f"  actual duty cycle  : {float(plan.duty_cycle):.1%}")
        print(f"  worst-case avg thr : {float(plan.throughput):.5f}")
        print()

    # Take the middle plan through the deployment steps.
    plan = plan_schedule(n, d, max_duty=0.40)
    assert is_topology_transparent(plan.schedule, d)

    delay = worst_link_access_delay(plan.schedule, d)
    print(f"Exact worst-case per-hop delay: {delay} slots "
          f"(vs the generic 2L-1 = {frame_delay_bound(plan.schedule)} bound)")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "deployment.json"
        save_schedule(plan.schedule, path, meta={
            "class_n": n, "class_d": d, "family": plan.family,
            "alpha_t": plan.alpha_t, "alpha_r": plan.alpha_r,
        })
        restored = load_schedule(path)
        assert restored == plan.schedule
        doc = json.loads(path.read_text())
        print(f"Serialized to {path.name}: {len(doc['tx'])} slots, "
              "round-trip verified.")


if __name__ == "__main__":
    main()
