#!/usr/bin/env python3
"""A mobile sensor fleet: one schedule, every topology the mission visits.

Robotic-exploration-style deployment (one of the application domains the
paper's introduction lists): nodes move continuously, so the connectivity
graph is different every time you look.  A topology-dependent schedule
would need global recomputation and dissemination at every change; the
topology-transparent schedule is computed ONCE from the class bound
(n, D) and keeps its per-frame delivery guarantee at every instant the
fleet stays inside the class.

This example drives a random-waypoint fleet across epochs and verifies,
per epoch, that every directed link of the current topology gets its
guaranteed slot — then runs a convergecast workload across the same
motion to show end-to-end service.

Run:  python examples/mobile_fleet.py
"""

import numpy as np

from repro import construct, polynomial_schedule
from repro.simulation.mobility import RandomWaypointMobility, run_with_mobility
from repro.simulation.engine import Simulator
from repro.simulation.traffic import PeriodicSensingTraffic, SaturatedTraffic


def main() -> None:
    n, d = 16, 4
    schedule = construct(polynomial_schedule(n, d), d, alpha_t=4, alpha_r=6)
    print(f"Fleet of {n} nodes, degree bound {d}; ONE schedule for the whole "
          f"mission: L={schedule.frame_length}, "
          f"duty={float(schedule.average_duty_cycle()):.0%}")
    print()

    # Phase 1: per-epoch guarantee check under worst-case traffic.
    mob = RandomWaypointMobility(n=n, d=d, radius=0.45, speed=0.15,
                                 rng=np.random.default_rng(7))
    print(f"{'epoch':<7}{'edges':<7}{'max deg':<9}{'links served':<14}")
    for epoch, topo in enumerate(mob.trajectory(6)):
        sim = Simulator(topo, schedule, SaturatedTraffic(topo))
        metrics = sim.run(frames=1)
        links = topo.directed_links()
        served = sum(1 for x, y in links
                     if metrics.successes.get((x, y), 0) >= 1)
        flag = "" if served == len(links) else "   <-- GUARANTEE BROKEN"
        print(f"{epoch:<7}{len(topo.edges):<7}{topo.max_degree:<9}"
              f"{served}/{len(links):<12}{flag}")
    print()

    # Phase 2: convergecast reports while the fleet keeps moving.
    mob2 = RandomWaypointMobility(n=n, d=d, radius=0.45, speed=0.1,
                                  rng=np.random.default_rng(11))
    metrics = run_with_mobility(
        schedule,
        lambda topo: PeriodicSensingTraffic(topo, sink=0, period=400),
        mob2, epochs=5, slots_per_epoch=2000, sink=0)
    print("Convergecast across 5 motion epochs (routing refreshed per epoch,")
    print("schedule untouched):")
    print(f"  reports generated : {metrics.generated}")
    print(f"  delivered         : {metrics.delivered} "
          f"({metrics.delivery_ratio():.1%})")
    print(f"  mean latency      : {metrics.mean_latency():.0f} slots")
    print()
    print("No recomputation, no dissemination protocol, no outage windows —")
    print("the guarantee is a property of the class N_16^4, not of any one")
    print("snapshot the fleet happens to form.")


if __name__ == "__main__":
    main()
