#!/usr/bin/env python3
"""Quickstart: build, verify and duty-cycle a topology-transparent schedule.

Walks the paper's pipeline end to end for a 25-node, degree-<=3 network
class:

1. build a topology-transparent *non-sleeping* schedule (the substrate the
   paper's construction consumes);
2. verify Requirement 1/2/3 transparency exactly;
3. run the Figure 2 construction for an energy budget ``(alpha_T, alpha_R)``;
4. compare achieved average worst-case throughput against the Theorem 3/4
   upper bounds and read off the energy saving.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    average_throughput,
    constrained_upper_bound,
    construct,
    general_upper_bound,
    is_topology_transparent,
    min_throughput,
    polynomial_schedule,
)


def main() -> None:
    n, d = 25, 3              # the network class N_n^D
    alpha_t, alpha_r = 4, 8   # energy budget: per-slot transmitters/receivers

    print(f"Network class: at most n={n} nodes, degree <= D={d}")
    print(f"Energy budget: <= {alpha_t} transmitters, <= {alpha_r} receivers per slot")
    print()

    # 1. A topology-transparent non-sleeping schedule <T> (polynomial family).
    source = polynomial_schedule(n, d)
    print(f"Source schedule: {source}")

    # 2. Exact transparency check (Requirement 2 via branch-and-bound cover).
    assert is_topology_transparent(source, d), "substrate must be TT"
    print("Source is topology-transparent: every node reaches every possible")
    print("neighbour collision-free at least once per frame, in EVERY network")
    print(f"of the class — frame length L = {source.frame_length} slots.")
    print()

    # 3. Figure 2: convert to an (alpha_T, alpha_R)-schedule.
    duty = construct(source, d, alpha_t, alpha_r)
    assert duty.is_alpha_schedule(alpha_t, alpha_r)
    assert is_topology_transparent(duty, d), "construction preserves transparency"
    print(f"Constructed duty-cycled schedule: {duty}")
    print(f"Average node duty cycle: {float(duty.average_duty_cycle()):.1%} "
          "(vs 100% for the non-sleeping source)")
    print()

    # 4. Throughput accounting.
    thr = average_throughput(duty, d)
    bound = constrained_upper_bound(n, d, alpha_t, alpha_r)
    print(f"Average worst-case throughput: {float(thr):.5f} "
          f"(= {thr})")
    print(f"Theorem 4 upper bound for this budget: {float(bound):.5f}")
    print(f"Optimality ratio: {float(Fraction(thr, bound)):.3f} "
          "(1.0 means the construction is provably optimal — Theorem 8)")
    print("Unconstrained (non-sleeping) optimum, Theorem 3: "
          f"{float(general_upper_bound(n, d)):.5f}")
    print("Minimum worst-case throughput (Definition 1): "
          f"{float(min_throughput(duty, d)):.5f} > 0 certifies transparency")


if __name__ == "__main__":
    main()
