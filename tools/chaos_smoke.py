"""The chaos drill CI runs: supervised server, fault proxy, kill -9.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py [--seed N] [--requests N]

One end-to-end pass over the chaos-hardened serve tier, all seeded:

1. start ``repro serve --supervise`` as a real subprocess (ready-file
   handshake, pid file, on-disk schedule store);
2. put a :class:`~repro.serve.chaos.ChaosProxy` with a ~5% fault mix in
   front of it and drive ~50 requests through a
   :class:`~repro.serve.failover.FailoverClient`;
3. halfway through, ``kill -9`` the serving child (pid file) and keep
   calling — the supervisor must restart it and the fleet must recover;
4. SIGTERM the supervisor and require a clean exit;
5. ``repro store scrub --metrics-out`` over the store the storm wrote —
   zero corrupt entries allowed — then validate the metrics snapshot
   with :mod:`tools.validate_metrics`.

Exit codes: 0 all invariants held, 1 an invariant failed.  Progress on
stderr; the scrub report lands on stdout for the CI log.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.faults import FaultPlan
from repro.serve.chaos import BackgroundProxy
from repro.serve.client import ServeError
from repro.serve.failover import FailoverClient

REPO = Path(__file__).resolve().parents[1]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _say(message: str) -> None:
    print(f"chaos-smoke: {message}", file=sys.stderr, flush=True)


def _wait_ready(proc: subprocess.Popen, ready: Path, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while not ready.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"supervisor exited early: {proc.returncode}")
        if time.monotonic() >= deadline:
            raise RuntimeError("server never became ready")
        time.sleep(0.05)


def drill(seed: int, requests: int, workdir: Path) -> int:
    ready = workdir / "ready.txt"
    pid_file = workdir / "pid.txt"
    cache = workdir / "cache"
    port = _free_port()
    plan = FaultPlan(seed=seed, proxy_refuse_rate=0.02,
                     proxy_reset_rate=0.01, proxy_truncate_rate=0.01,
                     proxy_delay_rate=0.01, proxy_delay_seconds=0.002)

    sup = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--supervise",
         "--port", str(port), "--jobs", "2",
         "--ready-file", str(ready), "--pid-file", str(pid_file),
         "--cache-dir", str(cache), "--restart-backoff-base", "0.05"],
        cwd=REPO)
    try:
        _wait_ready(sup, ready, timeout=30)
        _say(f"supervised server ready on port {port}")

        with BackgroundProxy("127.0.0.1", port, plan=plan) as bp:
            client = FailoverClient([(bp.host, bp.port)], retries=12,
                                    timeout=10.0, backoff_base=0.05,
                                    failure_threshold=4, breaker_reset_s=0.2,
                                    seed=seed)
            classes = [(12, 2, 0.5), (9, 3, 0.8), (16, 3, 0.5), (25, 4, 0.9)]
            kill_at = requests // 2
            killed_pid = None
            ok = 0
            for i in range(requests):
                if i == kill_at:
                    killed_pid = int(pid_file.read_text())
                    os.kill(killed_pid, signal.SIGKILL)
                    _say(f"killed serving child pid {killed_pid} "
                         f"at request {i}")
                n, d, duty = classes[i % len(classes)]
                try:
                    doc = client.plan(n, d, duty, include_schedule=False)
                    assert "request" in doc
                    ok += 1
                except ServeError as exc:
                    _say(f"request {i}: typed failure {exc.code}")
            faults = sum(1 for _i, kind in bp.fault_log if kind != "ok")
            _say(f"{ok}/{requests} requests succeeded "
                 f"({faults} proxy faults injected)")

        if ok < requests - 5:
            _say(f"FAIL: only {ok}/{requests} requests survived the drill")
            return 1
        new_pid = int(pid_file.read_text())
        if new_pid == killed_pid:
            _say("FAIL: pid file never changed — no restart happened")
            return 1
        _say(f"supervisor restarted the server (pid {killed_pid} "
             f"-> {new_pid})")
    finally:
        if sup.poll() is None:
            sup.send_signal(signal.SIGTERM)
            try:
                code = sup.wait(timeout=30)
            except subprocess.TimeoutExpired:
                sup.kill()
                sup.wait()
                _say("FAIL: supervisor ignored SIGTERM")
                return 1
            if code != 0:
                _say(f"FAIL: supervisor exited {code} on SIGTERM")
                return 1
            _say("supervisor drained and exited 0")

    metrics = workdir / "scrub-metrics.json"
    scrub = subprocess.run(
        [sys.executable, "-m", "repro", "store", "scrub",
         "--cache-dir", str(cache), "--metrics-out", str(metrics)],
        cwd=REPO)
    if scrub.returncode != 0:
        _say("FAIL: the store scrub found corrupt entries")
        return 1
    validate = subprocess.run(
        [sys.executable, str(REPO / "tools" / "validate_metrics.py"),
         str(metrics)], cwd=REPO)
    if validate.returncode != 0:
        _say("FAIL: the scrub metrics snapshot is malformed")
        return 1
    _say("store clean, metrics snapshot valid — all invariants held")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=13,
                        help="fault plan + client backoff seed (default 13)")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests to drive through the storm "
                             "(default 50)")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        return drill(args.seed, args.requests, Path(tmp))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
