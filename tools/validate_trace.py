"""Validate a ``--trace-out`` span dump against the documented schema.

Usage::

    python tools/validate_trace.py trace.jsonl [...]

Checks the structural contract of
:meth:`repro.obs.tracing.Tracer.to_jsonl` as documented in
docs/observability.md — every line is one span object — plus the
correlation invariants the trace-reassembly tooling (``repro obs
report``) depends on:

* every span carries a string ``name``, numeric ``start_s`` and a
  non-negative ``duration_s``;
* ``trace_id`` and ``span_id`` are present, non-empty strings;
  ``parent_id`` is a string or null; ``pid`` is an integer or null;
* span ids are unique within a file, and no span is its own ancestor —
  the parentage recorded for each trace is **acyclic** (a parent id
  pointing at a span absent from the dump is fine: that is how a child
  process's subtree references its remote caller);
* within one ``(trace_id, pid)`` a child span never starts before its
  parent — timestamps along every resolvable parent chain are
  monotone (``perf_counter`` epochs differ across processes, so the
  check is per-pid by design).

Collapsed-stack profile sidecars (``--sample-profile`` output) often
land in the same artefact directory and arrive via the same glob; a
file whose every line is ``frame;frame count`` is recognized, reported
as skipped, and never fails validation — profiles are not span dumps.

Exit codes: 0 valid, 1 invalid (problems on stderr), 2 unreadable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Required members and their accepted types (bool is never accepted).
_FIELDS = {
    "name": str,
    "start_s": (int, float),
    "duration_s": (int, float),
    "trace_id": str,
    "span_id": str,
}


def validate(span: object) -> list[str]:
    """All schema violations in one *span* record (empty list == valid)."""
    if not isinstance(span, dict):
        return [f"span must be a JSON object, got {type(span).__name__}"]
    problems: list[str] = []
    for name, kind in _FIELDS.items():
        value = span.get(name)
        if not isinstance(value, kind) or isinstance(value, bool):
            problems.append(f"'{name}' must be "
                            f"{getattr(kind, '__name__', 'numeric')}, "
                            f"got {value!r}")
        elif kind is str and not value:
            problems.append(f"'{name}' must be non-empty")
    duration = span.get("duration_s")
    if isinstance(duration, (int, float)) and duration < 0:
        problems.append(f"'duration_s' must be >= 0, got {duration!r}")
    parent = span.get("parent_id")
    if parent is not None and (not isinstance(parent, str) or not parent):
        problems.append(f"'parent_id' must be a non-empty string or null, "
                        f"got {parent!r}")
    pid = span.get("pid")
    if pid is not None and (not isinstance(pid, int) or isinstance(pid, bool)):
        problems.append(f"'pid' must be an integer or null, got {pid!r}")
    attrs = span.get("attrs")
    if attrs is not None and not isinstance(attrs, dict):
        problems.append(f"'attrs' must be an object, got {attrs!r}")
    return problems


def _graph_errors(spans: list[dict]) -> list[str]:
    """Cross-span invariants: unique ids, acyclic parentage, per-pid
    parent-before-child timestamps."""
    problems: list[str] = []
    by_id: dict[str, dict] = {}
    for span in spans:
        sid = span["span_id"]
        if sid in by_id:
            problems.append(f"span id {sid!r} appears more than once")
        by_id[sid] = span
    for span in spans:
        seen = {span["span_id"]}
        node = span
        while True:
            parent = by_id.get(node.get("parent_id") or "")
            if parent is None:
                break  # root, or a remote parent outside this dump
            if parent["span_id"] in seen:
                problems.append(f"span {span['span_id']!r} "
                                f"({span['name']}): parentage cycle via "
                                f"{parent['span_id']!r}")
                break
            seen.add(parent["span_id"])
            node = parent
        parent = by_id.get(span.get("parent_id") or "")
        if parent is not None \
                and parent.get("trace_id") == span.get("trace_id") \
                and parent.get("pid") == span.get("pid") \
                and span["start_s"] < parent["start_s"]:
            problems.append(
                f"span {span['span_id']!r} ({span['name']}) starts at "
                f"{span['start_s']} before its parent "
                f"{parent['span_id']!r} at {parent['start_s']}")
    return problems


def is_collapsed_profile(text: str) -> bool:
    """Whether *text* is collapsed-stack profiler output, not spans.

    Every non-blank line must be ``stack count`` where the stack holds
    at least one ``;``-joined frame and the count is a bare integer —
    a shape no span JSONL line can take (those start with ``{``).
    Self-contained on purpose: this tool runs without ``PYTHONPATH=src``.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return False
    for line in lines:
        if line.lstrip().startswith("{"):
            return False
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            return False
    return True


def validate_lines(text: str) -> list[str]:
    """Validate a whole JSONL document; problems are line-prefixed."""
    problems: list[str] = []
    spans: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            problems.append(f"line {lineno}: blank line")
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: unparseable: {exc}")
            continue
        line_problems = validate(span)
        problems.extend(f"line {lineno}: {p}" for p in line_problems)
        if not line_problems:
            spans.append(span)
    problems.extend(_graph_errors(spans))
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point: validate each path argument; 0 iff all valid.

    The cross-span checks run over all files together, so a client dump
    and a server dump of the same trace validate as one graph.
    """
    if not argv:
        print("usage: validate_trace.py TRACE.jsonl [...]", file=sys.stderr)
        return 2
    code = 0
    texts: list[tuple[str, str]] = []
    for arg in argv:
        try:
            texts.append((arg, Path(arg).read_text()))
        except OSError as exc:
            print(f"{arg}: unreadable: {exc}", file=sys.stderr)
            return 2
    all_spans: list[dict] = []
    for arg, text in texts:
        if is_collapsed_profile(text):
            print(f"{arg}: skipped (collapsed-stack profile, not a span "
                  "dump)")
            continue
        problems = []
        spans: list[dict] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                problems.append(f"line {lineno}: blank line")
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: unparseable: {exc}")
                continue
            line_problems = validate(span)
            problems.extend(f"line {lineno}: {p}" for p in line_problems)
            if not line_problems:
                spans.append(span)
        for problem in problems:
            print(f"{arg}: {problem}", file=sys.stderr)
            code = 1
        all_spans.extend(spans)
    for problem in _graph_errors(all_spans):
        print(f"(merged): {problem}", file=sys.stderr)
        code = 1
    if code == 0:
        traces = {s["trace_id"] for s in all_spans}
        pids = {s.get("pid") for s in all_spans}
        print(f"valid ({len(all_spans)} spans, {len(traces)} traces, "
              f"{len(pids)} processes)")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
