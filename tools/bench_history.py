#!/usr/bin/env python3
"""Append the current benchmark sidecars to the bench history JSONL.

CI runs this after every benchmark job::

    python tools/bench_history.py --results-dir benchmarks/results \
        --out benchmarks/results/history.jsonl

Each ``repro-bench-summary`` sidecar under ``--results-dir`` becomes one
``repro-bench-history`` record (keyed by bench name + git sha, stamped
with a unix timestamp) appended to ``--out`` — the trajectory ``repro
obs bench-diff`` gates against.  The sha defaults to ``git rev-parse
HEAD`` (``unknown`` outside a checkout); override with ``--sha``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

try:
    from repro.obs import bench
except ImportError:  # run from the checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import bench


def current_sha() -> str:
    """``git rev-parse HEAD`` of the working directory, or ``unknown``."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", default="benchmarks/results",
                        help="directory holding the repro-bench-summary "
                             "sidecars (default benchmarks/results)")
    parser.add_argument("--out", default="benchmarks/results/history.jsonl",
                        help="history JSONL to append to "
                             "(default benchmarks/results/history.jsonl)")
    parser.add_argument("--sha", default=None,
                        help="git sha to stamp on the records "
                             "(default: git rev-parse HEAD)")
    args = parser.parse_args(argv)
    sha = args.sha if args.sha else current_sha()
    try:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        appended = bench.append_history(args.results_dir, args.out,
                                        git_sha=sha)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not appended:
        print(f"error: no {bench.SUMMARY_FORMAT} sidecars under "
              f"{args.results_dir} (run the benchmarks first)",
              file=sys.stderr)
        return 1
    print(f"appended {appended} record(s) at {sha[:12]} to {args.out}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
