"""Validate a ``--metrics-out`` snapshot against the documented schema.

Usage::

    python tools/validate_metrics.py metrics.json

Checks the structural contract of :meth:`repro.obs.metrics.MetricsRegistry.
snapshot` as documented in docs/observability.md — the format/version
header, the three metric sections, and the per-series shapes (labels are
string->string, counters/gauges carry ``value``, histograms carry a
metric-level ``buckets`` list and per-series ``count``/``counts``/``sum``
with ``len(counts) == len(buckets) + 1`` for the +Inf bucket).  A
histogram series may also carry ``exemplars``: one entry per bucket
(null, or an object with numeric ``value`` and a ``trace_id`` that is a
string or null).

``repro obs slo`` reports (format ``repro-slo``), ``GET
/metrics/history`` payloads (format ``repro-metrics-history``, each
sample's snapshot validated recursively) and ``repro-bench-history``
JSONL files (one record per line) are validated too — :func:`main`
dispatches on the document's ``format`` header (sniffing JSONL for the
bench history), so CI runs one tool over every artefact; the unit tests
import :func:`validate`, :func:`validate_slo`,
:func:`validate_history` and :func:`validate_bench_history` directly.

Exit codes: 0 valid, 1 invalid (problems on stderr), 2 unreadable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

EXPECTED_FORMAT = "repro-metrics"
EXPECTED_VERSION = 1

SLO_FORMAT = "repro-slo"
SLO_VERSION = 1

HISTORY_FORMAT = "repro-metrics-history"
HISTORY_VERSION = 1

BENCH_HISTORY_FORMAT = "repro-bench-history"
BENCH_HISTORY_VERSION = 1

#: Required members of one ``objectives[i].objective`` sub-document.
_OBJECTIVE_FIELDS = {"name": str, "kind": str, "metric": str,
                     "target": (int, float)}

#: Required numeric members of one ``objectives[i]`` result entry.
_RESULT_FIELDS = ("good", "total", "compliance", "budget_burn")


def _series_errors(name: str, kind: str, metric: dict) -> list[str]:
    """Validate one metric's ``series`` list; returns problem strings."""
    problems: list[str] = []
    series = metric.get("series")
    if not isinstance(series, list):
        return [f"{name}: 'series' must be a list, got {type(series).__name__}"]
    buckets = metric.get("buckets")
    if kind == "histograms" and (
            not isinstance(buckets, list)
            or not all(isinstance(b, (int, float)) for b in buckets)):
        problems.append(f"{name}: 'buckets' must be a numeric list")
        buckets = None
    for i, entry in enumerate(series):
        where = f"{name}.series[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        labels = entry.get("labels")
        if not isinstance(labels, dict) or \
                not all(isinstance(k, str) and isinstance(v, str)
                        for k, v in labels.items()):
            problems.append(f"{where}: 'labels' must map strings to strings")
        if kind in ("counters", "gauges"):
            if not isinstance(entry.get("value"), (int, float)):
                problems.append(f"{where}: missing numeric 'value'")
        else:  # histograms
            counts = entry.get("counts")
            if not isinstance(counts, list) or \
                    not all(isinstance(c, int) for c in counts):
                problems.append(f"{where}: 'counts' must be an integer list")
            elif buckets is not None and len(counts) != len(buckets) + 1:
                problems.append(
                    f"{where}: len(counts)={len(counts)} != "
                    f"len(buckets)+1={len(buckets) + 1}")
            if not isinstance(entry.get("count"), int):
                problems.append(f"{where}: missing integer 'count'")
            if not isinstance(entry.get("sum"), (int, float)):
                problems.append(f"{where}: missing numeric 'sum'")
            if "exemplars" in entry:
                problems.extend(_exemplar_errors(where, entry["exemplars"],
                                                 buckets))
    return problems


def _exemplar_errors(where: str, exemplars: object,
                     buckets: list | None) -> list[str]:
    """Validate one histogram series' optional ``exemplars`` list."""
    if not isinstance(exemplars, list):
        return [f"{where}: 'exemplars' must be a list"]
    problems: list[str] = []
    if buckets is not None and len(exemplars) != len(buckets) + 1:
        problems.append(f"{where}: len(exemplars)={len(exemplars)} != "
                        f"len(buckets)+1={len(buckets) + 1}")
    for j, ex in enumerate(exemplars):
        if ex is None:
            continue
        spot = f"{where}.exemplars[{j}]"
        if not isinstance(ex, dict):
            problems.append(f"{spot}: must be null or an object")
            continue
        if not isinstance(ex.get("value"), (int, float)) or \
                isinstance(ex.get("value"), bool):
            problems.append(f"{spot}: missing numeric 'value'")
        if "trace_id" not in ex or not (
                ex["trace_id"] is None or isinstance(ex["trace_id"], str)):
            problems.append(f"{spot}: 'trace_id' must be a string or null")
    return problems


def validate(doc: object) -> list[str]:
    """All schema violations in *doc* (empty list == valid snapshot)."""
    if not isinstance(doc, dict):
        return [f"snapshot must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("format") != EXPECTED_FORMAT:
        problems.append(f"'format' must be {EXPECTED_FORMAT!r}, "
                        f"got {doc.get('format')!r}")
    if doc.get("version") != EXPECTED_VERSION:
        problems.append(f"'version' must be {EXPECTED_VERSION}, "
                        f"got {doc.get('version')!r}")
    for kind in ("counters", "gauges", "histograms"):
        section = doc.get(kind)
        if not isinstance(section, dict):
            problems.append(f"missing '{kind}' object")
            continue
        for name, metric in section.items():
            if not isinstance(metric, dict):
                problems.append(f"{name}: must be an object")
                continue
            if not isinstance(metric.get("help"), str):
                problems.append(f"{name}: missing 'help' string")
            problems.extend(_series_errors(name, kind, metric))
    return problems


def validate_slo(doc: object) -> list[str]:
    """All schema violations in a ``repro-slo`` report (empty == valid)."""
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("format") != SLO_FORMAT:
        problems.append(f"'format' must be {SLO_FORMAT!r}, "
                        f"got {doc.get('format')!r}")
    if doc.get("version") != SLO_VERSION:
        problems.append(f"'version' must be {SLO_VERSION}, "
                        f"got {doc.get('version')!r}")
    if not isinstance(doc.get("ok"), bool):
        problems.append("missing boolean 'ok'")
    entries = doc.get("objectives")
    if not isinstance(entries, list):
        return problems + ["missing 'objectives' list"]
    for i, entry in enumerate(entries):
        where = f"objectives[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        objective = entry.get("objective")
        if not isinstance(objective, dict):
            problems.append(f"{where}: missing 'objective' object")
        else:
            for name, kind in _OBJECTIVE_FIELDS.items():
                value = objective.get(name)
                if not isinstance(value, kind) or isinstance(value, bool):
                    problems.append(f"{where}.objective.{name}: must be "
                                    f"{getattr(kind, '__name__', 'numeric')}, "
                                    f"got {value!r}")
        for name in _RESULT_FIELDS:
            value = entry.get(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}.{name}: must be numeric, "
                                f"got {value!r}")
        if not isinstance(entry.get("ok"), bool):
            problems.append(f"{where}: missing boolean 'ok'")
    return problems


def validate_history(doc: object) -> list[str]:
    """All violations in a ``repro-metrics-history`` document (the
    ``GET /metrics/history`` payload); each sample's snapshot is
    validated with :func:`validate` recursively."""
    if not isinstance(doc, dict):
        return [f"history must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("format") != HISTORY_FORMAT:
        problems.append(f"'format' must be {HISTORY_FORMAT!r}, "
                        f"got {doc.get('format')!r}")
    if doc.get("version") != HISTORY_VERSION:
        problems.append(f"'version' must be {HISTORY_VERSION}, "
                        f"got {doc.get('version')!r}")
    capacity = doc.get("capacity")
    if not isinstance(capacity, int) or isinstance(capacity, bool) \
            or capacity < 1:
        problems.append(f"'capacity' must be a positive integer, "
                        f"got {capacity!r}")
    if "interval_s" in doc and (
            not isinstance(doc["interval_s"], (int, float))
            or isinstance(doc["interval_s"], bool)
            or doc["interval_s"] <= 0):
        problems.append(f"'interval_s' must be positive, "
                        f"got {doc['interval_s']!r}")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        return problems + ["missing 'samples' list"]
    if isinstance(capacity, int) and not isinstance(capacity, bool) \
            and len(samples) > max(capacity, 0):
        problems.append(f"{len(samples)} samples exceed capacity {capacity}")
    last_t = None
    for i, sample in enumerate(samples):
        where = f"samples[{i}]"
        if not isinstance(sample, dict):
            problems.append(f"{where}: must be an object")
            continue
        t = sample.get("t_unix")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            problems.append(f"{where}: missing numeric 't_unix'")
        else:
            if last_t is not None and t < last_t:
                problems.append(f"{where}: t_unix went backwards "
                                f"({t} < {last_t})")
            last_t = t
        problems.extend(f"{where}.snapshot: {p}"
                        for p in validate(sample.get("snapshot")))
    return problems


def validate_bench_history(records: object) -> list[str]:
    """All violations in a list of ``repro-bench-history`` records
    (the parsed lines of ``benchmarks/results/history.jsonl``)."""
    if not isinstance(records, list):
        return [f"expected a list of records, got {type(records).__name__}"]
    problems: list[str] = []
    for i, record in enumerate(records):
        where = f"record[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: must be an object")
            continue
        if record.get("format") != BENCH_HISTORY_FORMAT:
            problems.append(f"{where}: 'format' must be "
                            f"{BENCH_HISTORY_FORMAT!r}, "
                            f"got {record.get('format')!r}")
        if record.get("version") != BENCH_HISTORY_VERSION:
            problems.append(f"{where}: 'version' must be "
                            f"{BENCH_HISTORY_VERSION}, "
                            f"got {record.get('version')!r}")
        for name, kind in (("bench", str), ("git_sha", str)):
            if not isinstance(record.get(name), kind):
                problems.append(f"{where}: missing string {name!r}")
        recorded = record.get("recorded_unix")
        if not isinstance(recorded, (int, float)) or isinstance(recorded,
                                                                bool):
            problems.append(f"{where}: missing numeric 'recorded_unix'")
        rows = record.get("results")
        if not isinstance(rows, list):
            problems.append(f"{where}: missing 'results' list")
            continue
        for j, row in enumerate(rows):
            spot = f"{where}.results[{j}]"
            if not isinstance(row, dict):
                problems.append(f"{spot}: must be an object")
                continue
            if not isinstance(row.get("key"), str) or not row["key"]:
                problems.append(f"{spot}: missing non-empty string 'key'")
            if not isinstance(row.get("name"), str):
                problems.append(f"{spot}: missing string 'name'")
            headline = row.get("headline")
            if headline is not None:
                if not isinstance(headline, dict) \
                        or not isinstance(headline.get("metric"), str) \
                        or not isinstance(headline.get("value"),
                                          (int, float)) \
                        or isinstance(headline.get("value"), bool):
                    problems.append(f"{spot}: 'headline' must carry a "
                                    "string 'metric' and numeric 'value'")
    return problems


def _read_bench_history_lines(text: str) -> list | None:
    """Parse *text* as bench-history JSONL; None when it is not that.

    A file qualifies when every non-blank line is a JSON object and the
    first one declares the ``repro-bench-history`` format — the sniff
    :func:`main` uses to route ``history.jsonl`` artefacts.
    """
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not records and (not isinstance(doc, dict) or
                            doc.get("format") != BENCH_HISTORY_FORMAT):
            return None
        records.append(doc)
    return records if records else None


def main(argv: list[str]) -> int:
    """CLI entry point: validate each path argument; 0 iff all valid.

    Dispatches on each document's ``format`` header: ``repro-metrics``
    snapshots, ``repro-slo`` reports, ``repro-metrics-history`` payloads
    and ``repro-bench-history`` JSONL files are all accepted.
    """
    if not argv:
        print("usage: validate_metrics.py SNAPSHOT.json [...]",
              file=sys.stderr)
        return 2
    code = 0
    for arg in argv:
        try:
            text = Path(arg).read_text()
        except OSError as exc:
            print(f"{arg}: unreadable: {exc}", file=sys.stderr)
            return 2
        bench_records = _read_bench_history_lines(text)
        if bench_records is not None:
            problems = validate_bench_history(bench_records)
            kind = "bench history"
            summary = (f"valid bench history ({len(bench_records)} "
                       f"record(s))")
            doc = None
        else:
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                print(f"{arg}: unreadable: {exc}", file=sys.stderr)
                return 2
            fmt = doc.get("format") if isinstance(doc, dict) else None
            if fmt == SLO_FORMAT:
                problems, kind = validate_slo(doc), "slo"
            elif fmt == HISTORY_FORMAT:
                problems, kind = validate_history(doc), "history"
            else:
                problems, kind = validate(doc), "snapshot"
        for problem in problems:
            print(f"{arg}: {problem}", file=sys.stderr)
            code = 1
        if problems:
            continue
        if kind == "slo":
            burned = sum(1 for e in doc["objectives"] if not e.get("ok"))
            print(f"{arg}: valid slo report ({len(doc['objectives'])} "
                  f"objectives, {burned} burned)")
        elif kind == "history":
            print(f"{arg}: valid metrics history "
                  f"({len(doc['samples'])} sample(s), "
                  f"capacity {doc['capacity']})")
        elif kind == "bench history":
            print(f"{arg}: {summary}")
        else:
            counters = sum(len(m.get("series", []))
                           for m in doc["counters"].values())
            print(f"{arg}: valid ({len(doc['counters'])} counters, "
                  f"{len(doc['gauges'])} gauges, "
                  f"{len(doc['histograms'])} histograms; "
                  f"{counters} counter series)")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
