"""Validate a ``--metrics-out`` snapshot against the documented schema.

Usage::

    python tools/validate_metrics.py metrics.json

Checks the structural contract of :meth:`repro.obs.metrics.MetricsRegistry.
snapshot` as documented in docs/observability.md — the format/version
header, the three metric sections, and the per-series shapes (labels are
string->string, counters/gauges carry ``value``, histograms carry a
metric-level ``buckets`` list and per-series ``count``/``counts``/``sum``
with ``len(counts) == len(buckets) + 1`` for the +Inf bucket).
CI runs it over the snapshot a tiny ``repro provision`` emits; the unit
tests import :func:`validate` directly.

Exit codes: 0 valid, 1 invalid (problems on stderr), 2 unreadable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

EXPECTED_FORMAT = "repro-metrics"
EXPECTED_VERSION = 1


def _series_errors(name: str, kind: str, metric: dict) -> list[str]:
    """Validate one metric's ``series`` list; returns problem strings."""
    problems: list[str] = []
    series = metric.get("series")
    if not isinstance(series, list):
        return [f"{name}: 'series' must be a list, got {type(series).__name__}"]
    buckets = metric.get("buckets")
    if kind == "histograms" and (
            not isinstance(buckets, list)
            or not all(isinstance(b, (int, float)) for b in buckets)):
        problems.append(f"{name}: 'buckets' must be a numeric list")
        buckets = None
    for i, entry in enumerate(series):
        where = f"{name}.series[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        labels = entry.get("labels")
        if not isinstance(labels, dict) or \
                not all(isinstance(k, str) and isinstance(v, str)
                        for k, v in labels.items()):
            problems.append(f"{where}: 'labels' must map strings to strings")
        if kind in ("counters", "gauges"):
            if not isinstance(entry.get("value"), (int, float)):
                problems.append(f"{where}: missing numeric 'value'")
        else:  # histograms
            counts = entry.get("counts")
            if not isinstance(counts, list) or \
                    not all(isinstance(c, int) for c in counts):
                problems.append(f"{where}: 'counts' must be an integer list")
            elif buckets is not None and len(counts) != len(buckets) + 1:
                problems.append(
                    f"{where}: len(counts)={len(counts)} != "
                    f"len(buckets)+1={len(buckets) + 1}")
            if not isinstance(entry.get("count"), int):
                problems.append(f"{where}: missing integer 'count'")
            if not isinstance(entry.get("sum"), (int, float)):
                problems.append(f"{where}: missing numeric 'sum'")
    return problems


def validate(doc: object) -> list[str]:
    """All schema violations in *doc* (empty list == valid snapshot)."""
    if not isinstance(doc, dict):
        return [f"snapshot must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("format") != EXPECTED_FORMAT:
        problems.append(f"'format' must be {EXPECTED_FORMAT!r}, "
                        f"got {doc.get('format')!r}")
    if doc.get("version") != EXPECTED_VERSION:
        problems.append(f"'version' must be {EXPECTED_VERSION}, "
                        f"got {doc.get('version')!r}")
    for kind in ("counters", "gauges", "histograms"):
        section = doc.get(kind)
        if not isinstance(section, dict):
            problems.append(f"missing '{kind}' object")
            continue
        for name, metric in section.items():
            if not isinstance(metric, dict):
                problems.append(f"{name}: must be an object")
                continue
            if not isinstance(metric.get("help"), str):
                problems.append(f"{name}: missing 'help' string")
            problems.extend(_series_errors(name, kind, metric))
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point: validate each path argument; 0 iff all valid."""
    if not argv:
        print("usage: validate_metrics.py SNAPSHOT.json [...]",
              file=sys.stderr)
        return 2
    code = 0
    for arg in argv:
        try:
            doc = json.loads(Path(arg).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{arg}: unreadable: {exc}", file=sys.stderr)
            return 2
        problems = validate(doc)
        for problem in problems:
            print(f"{arg}: {problem}", file=sys.stderr)
            code = 1
        if not problems:
            counters = sum(len(m.get("series", []))
                           for m in doc["counters"].values())
            print(f"{arg}: valid ({len(doc['counters'])} counters, "
                  f"{len(doc['gauges'])} gauges, "
                  f"{len(doc['histograms'])} histograms; "
                  f"{counters} counter series)")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
