"""Validate ``repro sweep`` output against the documented row schema.

Usage::

    python tools/validate_sweep.py results.jsonl

Checks the structural contract of the sweep engine's result rows
(:mod:`repro.analysis.sweeps`, documented in docs/sweeps.md): every line
is a JSON object carrying the versioned ``repro-sweep-result`` envelope,
a fully typed ``point`` (family, n, d, traffic, seed) and exactly one of
``metrics`` (with the required numeric fields) or ``error`` (a string).
CI runs it over the JSONL a tiny ``repro sweep`` emits; the unit tests
import :func:`validate` and :func:`validate_lines` directly.

Exit codes: 0 valid, 1 invalid (problems on stderr), 2 unreadable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

EXPECTED_FORMAT = "repro-sweep-result"
EXPECTED_VERSION = 1

#: Required ``point`` members and their types.
_POINT_FIELDS = {"family": str, "n": int, "d": int, "traffic": str,
                 "seed": int}

#: Required ``metrics`` members; True marks fields that may also be null
#: (e.g. mean latency when nothing was delivered).
_METRIC_FIELDS = {
    "slots": False, "frame_length": False, "duty_cycle": False,
    "attempts": False, "successes": False, "collisions": False,
    "mean_link_throughput": False, "min_link_throughput": False,
    "delivery_ratio": False, "dropped": False,
    "mean_latency_slots": True, "awake_fraction": False,
    "total_energy_mj": False, "energy_fairness": False,
}


def validate(row: object) -> list[str]:
    """All schema violations in one result *row* (empty list == valid)."""
    if not isinstance(row, dict):
        return [f"row must be a JSON object, got {type(row).__name__}"]
    problems: list[str] = []
    if row.get("format") != EXPECTED_FORMAT:
        problems.append(f"'format' must be {EXPECTED_FORMAT!r}, "
                        f"got {row.get('format')!r}")
    if row.get("version") != EXPECTED_VERSION:
        problems.append(f"'version' must be {EXPECTED_VERSION}, "
                        f"got {row.get('version')!r}")
    point = row.get("point")
    if not isinstance(point, dict):
        problems.append("missing 'point' object")
    else:
        for name, kind in _POINT_FIELDS.items():
            value = point.get(name)
            if not isinstance(value, kind) or isinstance(value, bool):
                problems.append(f"point.{name}: must be {kind.__name__}, "
                                f"got {value!r}")
    has_metrics = "metrics" in row
    has_error = "error" in row
    if has_metrics == has_error:
        problems.append("row must carry exactly one of 'metrics'/'error'")
    if has_error and not isinstance(row["error"], str):
        problems.append("'error' must be a string")
    if has_metrics:
        metrics = row["metrics"]
        if not isinstance(metrics, dict):
            problems.append("'metrics' must be an object")
        else:
            for name, nullable in _METRIC_FIELDS.items():
                if name not in metrics:
                    problems.append(f"metrics.{name}: missing")
                    continue
                value = metrics[name]
                if value is None and nullable:
                    continue
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    problems.append(f"metrics.{name}: must be numeric, "
                                    f"got {value!r}")
    return problems


def validate_lines(text: str) -> list[str]:
    """Validate a whole JSONL document; problems are line-prefixed."""
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            problems.append(f"line {lineno}: blank line")
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: unparseable: {exc}")
            continue
        problems.extend(f"line {lineno}: {p}" for p in validate(row))
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point: validate each path argument; 0 iff all valid."""
    if not argv:
        print("usage: validate_sweep.py RESULTS.jsonl [...]", file=sys.stderr)
        return 2
    code = 0
    for arg in argv:
        try:
            text = Path(arg).read_text()
        except OSError as exc:
            print(f"{arg}: unreadable: {exc}", file=sys.stderr)
            return 2
        problems = validate_lines(text)
        for problem in problems:
            print(f"{arg}: {problem}", file=sys.stderr)
            code = 1
        if not problems:
            rows = [json.loads(line) for line in text.splitlines()
                    if line.strip()]
            errors = sum(1 for row in rows if "error" in row)
            print(f"{arg}: valid ({len(rows)} rows, {errors} error rows)")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
