# Convenience targets for the reproduction workflow.

PYTHON ?= python3

.PHONY: install test bench examples outputs clean

install:
	$(PYTHON) -m pip install -e .

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

# The final artefacts EXPERIMENTS.md points at.
outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
