"""The asyncio schedule server: coalescing, admission, deadlines, drain.

These are the acceptance tests of the serving layer:

(a) N concurrent identical requests trigger exactly one planner
    evaluation (``TestCoalescing``);
(b) requests beyond the admission bound get an explicit overload
    response instead of queueing unboundedly (``TestAdmission``);
(c) a drain (the SIGTERM path) answers in-flight requests before exit
    (``TestDrain``).

Deterministic concurrency comes from injected ``plan_fn`` fakes that
block on events; one end-to-end test runs the real planner.
"""

import http.client
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.nonsleeping import mols_schedule
from repro.core.planner import GridPoint, evaluate_grid_point
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import parse_collapsed
from repro.obs.timeseries import counter_delta, counter_total, parse_history
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import BackgroundServer, ServeConfig
from repro.service.api import ProvisionRequest, ProvisionResult
from repro.service.store import ScheduleStore

sys.path.insert(0, str(Path(__file__).parents[2] / "tools"))
try:
    from validate_metrics import validate, validate_history
finally:
    sys.path.pop(0)


@pytest.fixture(scope="module")
def tiny_plan():
    """One real, cheap plan to hand out from fake plan functions."""
    point = GridPoint("mols", mols_schedule(12, 2), 2, 4)
    return evaluate_grid_point(point, 2)


def _counting_plan_fn(tiny_plan, delay=0.0, release=None):
    """A plan_fn that counts calls; optionally sleeps or blocks."""
    calls = []
    lock = threading.Lock()

    def fn(request: ProvisionRequest) -> ProvisionResult:
        with lock:
            calls.append(request)
        if release is not None:
            assert release.wait(timeout=30.0)
        elif delay:
            time.sleep(delay)
        return ProvisionResult(request, tiny_plan)

    fn.calls = calls
    return fn


class TestEndpoints:
    def test_healthz_and_metrics(self, tiny_plan):
        reg = MetricsRegistry()
        fn = _counting_plan_fn(tiny_plan)
        with BackgroundServer(ServeConfig(port=0), registry=reg,
                              plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            health = client.health()
            assert health["ok"] is True
            assert health["status"] == "serving"
            client.provision([{"n": 12, "d": 2, "max_duty": 0.5}],
                             include_schedules=False)
            # The JSON snapshot passes the shipped schema validator.
            snap = client.metrics_snapshot()
            assert validate(snap) == []
            assert "repro_serve_requests_total" in snap["counters"]
            # The Prometheus text carries the same series.
            text = client.metrics_text()
            assert "# TYPE repro_serve_requests_total counter" in text
            assert 'endpoint="/provision"' in text

    def test_http_errors_are_versioned_json(self, tiny_plan):
        with BackgroundServer(ServeConfig(port=0),
                              plan_fn=_counting_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            for method, path, body, status, code in [
                    ("GET", "/nope", None, 404, "not-found"),
                    ("POST", "/healthz", None, 405, "method-not-allowed"),
                    ("POST", "/provision", {"requests": []}, 400,
                     "bad-request"),
            ]:
                got_status, data, _ct = client.request(method, path, body)
                doc = json.loads(data)
                assert got_status == status
                assert doc["ok"] is False
                assert doc["error"]["code"] == code
                assert doc["protocol"] == 1

    def test_malformed_json_and_oversized_body(self, tiny_plan):
        config = ServeConfig(port=0, max_body_bytes=128)
        with BackgroundServer(config,
                              plan_fn=_counting_plan_fn(tiny_plan)) as bs:
            conn = http.client.HTTPConnection(bs.host, bs.port, timeout=10)
            conn.request("POST", "/provision", body=b"{broken",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            doc = json.loads(resp.read())
            conn.close()
            assert resp.status == 400
            assert doc["error"]["code"] == "bad-request"

            conn = http.client.HTTPConnection(bs.host, bs.port, timeout=10)
            conn.request("POST", "/provision", body=b"x" * 4096,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            doc = json.loads(resp.read())
            conn.close()
            assert resp.status == 413
            assert doc["error"]["code"] == "payload-too-large"


class TestCoalescing:
    def test_concurrent_identical_requests_one_evaluation(self, tiny_plan):
        """(a) N identical in-flight requests -> exactly 1 planner call."""
        release = threading.Event()
        fn = _counting_plan_fn(tiny_plan, release=release)
        reg = MetricsRegistry()
        n_clients = 8
        with BackgroundServer(ServeConfig(port=0, jobs=4, max_inflight=32),
                              registry=reg, plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            doc = {"n": 12, "d": 2, "max_duty": 0.5}

            def call():
                return client.provision([doc], include_schedules=False)

            with ThreadPoolExecutor(n_clients) as pool:
                futures = [pool.submit(call) for _ in range(n_clients)]
                # Wait until every request is admitted and parked on the
                # single coalesced flight, then release the planner.
                deadline = time.monotonic() + 20
                while bs.server.active < n_clients:
                    assert time.monotonic() < deadline, "admission stalled"
                    time.sleep(0.005)
                release.set()
                results = [f.result(timeout=30) for f in futures]

            assert len(fn.calls) == 1  # the acceptance criterion
            for res in results:
                assert res[0]["family"] == "mols"
            counter = reg.get("repro_serve_coalesce_total")
            assert counter.value(result="led") == 1
            assert counter.value(result="joined") == n_clients - 1

    def test_joined_waiters_get_their_own_request_echo(self, tiny_plan):
        """Same signature, different spelling: each caller sees its own."""
        release = threading.Event()
        fn = _counting_plan_fn(tiny_plan, release=release)
        with BackgroundServer(ServeConfig(port=0, jobs=2), plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            docs = [{"n": 12, "d": 2, "max_duty": 0.5},
                    {"n": 12, "d": 2, "max_duty": "1/2"}]

            with ThreadPoolExecutor(2) as pool:
                futures = [pool.submit(
                    lambda d=d: client.provision([d],
                                                 include_schedules=False))
                    for d in docs]
                deadline = time.monotonic() + 20
                while bs.server.active < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                release.set()
                results = [f.result(timeout=30) for f in futures]
            assert len(fn.calls) == 1  # "1/2" == 0.5 by signature
            echoes = sorted(str(r[0]["request"]["max_duty"])
                            for r in results)
            assert echoes == ["0.5", "1/2"]


class TestAdmission:
    def test_overload_is_explicit_not_queued(self, tiny_plan):
        """(b) beyond max_inflight -> immediate 503 overloaded."""
        release = threading.Event()
        fn = _counting_plan_fn(tiny_plan, release=release)
        config = ServeConfig(port=0, jobs=1, max_inflight=2)
        with BackgroundServer(config, plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            # Distinct signatures so nothing coalesces.
            docs = [{"n": 12, "d": 2, "max_duty": 0.5},
                    {"n": 15, "d": 2, "max_duty": 0.5}]
            with ThreadPoolExecutor(2) as pool:
                futures = [pool.submit(
                    lambda d=d: client.provision([d],
                                                 include_schedules=False))
                    for d in docs]
                deadline = time.monotonic() + 20
                while bs.server.active < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                # The bound is reached: the next request is refused NOW,
                # while the first two are still in flight.
                t0 = time.monotonic()
                with pytest.raises(ServeError) as excinfo:
                    client.provision([{"n": 16, "d": 3, "max_duty": 0.5}])
                refusal_latency = time.monotonic() - t0
                assert excinfo.value.code == "overloaded"
                assert excinfo.value.status == 503
                assert refusal_latency < 5.0  # refused, not queued
                release.set()
                # The admitted requests still complete normally.
                for f in futures:
                    assert f.result(timeout=30)[0]["family"] == "mols"

    def test_ops_endpoints_bypass_admission(self, tiny_plan):
        release = threading.Event()
        fn = _counting_plan_fn(tiny_plan, release=release)
        config = ServeConfig(port=0, jobs=1, max_inflight=1)
        with BackgroundServer(config, plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(
                    lambda: client.provision(
                        [{"n": 12, "d": 2, "max_duty": 0.5}],
                        include_schedules=False))
                deadline = time.monotonic() + 20
                while bs.server.active < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                # Saturated — but health and metrics still answer.
                health = client.health()
                assert health["inflight"] == 1
                assert validate(client.metrics_snapshot()) == []
                release.set()
                future.result(timeout=30)


class TestDeadline:
    def test_deadline_exceeded_is_504(self, tiny_plan):
        fn = _counting_plan_fn(tiny_plan, delay=1.0)
        config = ServeConfig(port=0, request_deadline_s=0.05)
        with BackgroundServer(config, plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with pytest.raises(ServeError) as excinfo:
                client.provision([{"n": 12, "d": 2, "max_duty": 0.5}])
            assert excinfo.value.code == "deadline-exceeded"
            assert excinfo.value.status == 504


class TestDrain:
    def test_drain_answers_inflight_then_refuses_and_exits(self, tiny_plan):
        """(c) drain: in-flight completes, new work refused, server exits."""
        release = threading.Event()
        fn = _counting_plan_fn(tiny_plan, release=release)
        bs = BackgroundServer(ServeConfig(port=0, jobs=2), plan_fn=fn)
        with bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(
                    lambda: client.provision(
                        [{"n": 12, "d": 2, "max_duty": 0.5}],
                        include_schedules=False))
                deadline = time.monotonic() + 20
                while bs.server.active < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)

                # SIGTERM path: begin_drain is what the handler calls.
                bs.loop.call_soon_threadsafe(bs.server.begin_drain)
                deadline = time.monotonic() + 20
                while not bs.server.draining:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)

                # New provisioning work is refused with the draining code.
                with pytest.raises(ServeError) as excinfo:
                    client.provision([{"n": 15, "d": 2, "max_duty": 0.5}])
                assert excinfo.value.code == "draining"
                # Health reports the drain while it is in progress.
                assert client.health()["status"] == "draining"

                # The in-flight request still gets its real answer.
                release.set()
                assert future.result(timeout=30)[0]["family"] == "mols"
        # Exiting the context joined the thread: the server fully exited
        # only after the in-flight response was delivered.
        assert not bs._thread.is_alive()

    def test_drain_with_idle_server_exits_immediately(self, tiny_plan):
        bs = BackgroundServer(ServeConfig(port=0),
                              plan_fn=_counting_plan_fn(tiny_plan))
        with bs:
            pass  # __exit__ drains; an idle server must not hang
        assert not bs._thread.is_alive()


class TestRealPlanner:
    def test_end_to_end_with_store(self, tmp_path):
        """The default plan_fn: real planner, hot store, cache hits."""
        reg = MetricsRegistry()
        store = ScheduleStore(tmp_path / "cache", registry=reg)
        with BackgroundServer(ServeConfig(port=0, jobs=2), store=store,
                              registry=reg) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            results = client.provision_results(
                [{"n": 12, "d": 2, "max_duty": 0.5}])
            assert results[0].plan is not None
            assert results[0].plan.duty_cycle <= 0.5
            # Round-trip through the interchange format is exact.
            doc = results[0].to_dict()
            assert ProvisionResult.from_dict(doc).to_dict() == doc
            # Second call: served from the hot plan cache.
            again = client.provision_results(
                [{"n": 12, "d": 2, "max_duty": 0.5}])
            assert again[0].from_cache is True
            assert again[0].plan == results[0].plan

    def test_domain_errors_are_per_request_not_transport(self, tiny_plan):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            # n=2 with duty below 2/n is infeasible: a 200 with an error
            # result, exactly like a bad `repro provision` line.
            docs = client.provision([{"n": 2, "d": 1, "max_duty": 0.1}],
                                    include_schedules=False)
            assert "error" in docs[0]
            assert "request" in docs[0]


class TestObservabilityEndpoints:
    def test_metrics_history_accumulates_and_validates(self, tiny_plan):
        fn = _counting_plan_fn(tiny_plan)
        config = ServeConfig(port=0, history_interval_s=0.05,
                             history_capacity=16)
        with BackgroundServer(config, plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            client.provision([{"n": 12, "d": 2, "max_duty": 0.5}],
                             include_schedules=False)
            deadline = time.monotonic() + 20
            while True:
                doc = client.metrics_history()
                samples = parse_history(doc)
                # Wait for a scrape that has seen the provision above.
                if len(samples) >= 2 and counter_total(
                        samples[-1]["snapshot"],
                        "repro_serve_requests_total") > 0:
                    break
                assert time.monotonic() < deadline
                time.sleep(0.02)
        # The payload passes the shipped schema validator end to end.
        assert validate_history(doc) == []
        assert doc["capacity"] == 16
        assert doc["interval_s"] == 0.05
        # The ring's snapshots support the delta math obs top runs on.
        delta = counter_delta(samples[0]["snapshot"], samples[-1]["snapshot"],
                              "repro_serve_requests_total")
        assert delta >= 0.0

    def test_history_ring_is_bounded(self, tiny_plan):
        config = ServeConfig(port=0, history_interval_s=0.01,
                             history_capacity=3)
        with BackgroundServer(config,
                              plan_fn=_counting_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            deadline = time.monotonic() + 20
            while len(parse_history(client.metrics_history())) < 3:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            time.sleep(0.1)  # many more scrapes than the ring holds
            assert len(parse_history(client.metrics_history())) == 3

    def test_profilez_sees_the_worker_pool_under_load(self, tiny_plan):
        """Acceptance: a loaded server's profile shows worker-pool frames."""
        release = threading.Event()
        fn = _counting_plan_fn(tiny_plan, release=release)
        with BackgroundServer(ServeConfig(port=0, jobs=2),
                              plan_fn=fn) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(
                    lambda: client.provision(
                        [{"n": 12, "d": 2, "max_duty": 0.5}],
                        include_schedules=False))
                deadline = time.monotonic() + 20
                while bs.server.active < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                # The pool thread is parked inside the plan_fn: profile it.
                text = client.profilez(seconds=0.3, hz=200)
                release.set()
                future.result(timeout=30)
        counts = parse_collapsed(text)
        assert counts  # non-empty and parseable
        pool_stacks = [s for s in counts
                       if s[0].startswith("thread:repro-serve-plan")]
        assert pool_stacks
        # The blocked plan function itself is on a pool stack.
        assert any("fn" in label for stack in pool_stacks
                   for label in stack)

    def test_profilez_validates_its_query(self, tiny_plan):
        config = ServeConfig(port=0, profilez_max_seconds=1.0)
        with BackgroundServer(config,
                              plan_fn=_counting_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            for query in ("seconds=999", "seconds=0", "seconds=nope",
                          "hz=0", "hz=99999", "hz=1.5"):
                status, data, _ct = client.request("GET",
                                                   f"/profilez?{query}")
                assert status == 400, query
                doc = json.loads(data.decode("utf-8"))
                assert doc["error"]["code"] == "bad-request"
            with pytest.raises(ServeError) as excinfo:
                client.profilez(seconds=999)
            assert excinfo.value.code == "bad-request"

    def test_profilez_default_window_answers(self, tiny_plan):
        with BackgroundServer(ServeConfig(port=0),
                              plan_fn=_counting_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            status, data, content_type = client.request(
                "GET", "/profilez?seconds=0.05")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert parse_collapsed(data.decode("utf-8"))

    def test_obs_top_once_renders_a_live_server(self, tiny_plan, capsys):
        from repro.cli import main as cli_main

        config = ServeConfig(port=0, history_interval_s=0.05)
        with BackgroundServer(config,
                              plan_fn=_counting_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            client.provision([{"n": 12, "d": 2, "max_duty": 0.5}],
                             include_schedules=False)
            deadline = time.monotonic() + 20
            while True:
                samples = parse_history(client.metrics_history())
                if len(samples) >= 2 and counter_total(
                        samples[-1]["snapshot"],
                        "repro_serve_requests_total") > 0:
                    break
                assert time.monotonic() < deadline
                time.sleep(0.02)
            rc = cli_main(["obs", "top", "--host", bs.host,
                           "--port", str(bs.port), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "requests" in out and "p99" in out and "breakers" in out

    def test_obs_top_unreachable_server_errors(self, capsys):
        import socket

        from repro.cli import main as cli_main

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        rc = cli_main(["obs", "top", "--port", str(port), "--once"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
