"""The failover client: circuit breakers, endpoint rotation, budgets."""

import socket

import pytest

from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeError
from repro.serve.failover import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    FailoverClient,
)
from repro.serve.server import BackgroundServer, ServeConfig


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("a:1", failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker("a:1", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker("a:1", failure_threshold=1,
                                 reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()  # timeout not yet elapsed
        clock.now = breaker.seconds_until_probe() + 0.001
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # nothing else while it is in flight

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker("a:1", failure_threshold=1, clock=clock)
        breaker.record_failure()
        clock.now = 100.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_seeded_delay(self):
        clock = FakeClock()
        breaker = CircuitBreaker("a:1", failure_threshold=1,
                                 reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        first = breaker.seconds_until_probe()
        clock.now = first + 0.001
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2
        assert breaker.seconds_until_probe() == pytest.approx(
            breaker.reset_delay(2), abs=0.01)

    def test_reset_delay_is_seeded_per_endpoint(self):
        plan = FaultPlan(seed=5)
        a = CircuitBreaker("a:1", plan=plan)
        b = CircuitBreaker("a:1", plan=FaultPlan(seed=5))
        other = CircuitBreaker("b:1", plan=plan)
        assert [a.reset_delay(k) for k in (1, 2, 3)] \
            == [b.reset_delay(k) for k in (1, 2, 3)]
        assert [a.reset_delay(k) for k in (1, 2, 3)] \
            != [other.reset_delay(k) for k in (1, 2, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("a:1", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("a:1", reset_timeout_s=0.0)


class TestFailoverClient:
    def test_endpoint_specs(self):
        fc = FailoverClient(["h:1", ("other", 2)])
        assert fc.endpoints == ["h:1", "other:2"]
        with pytest.raises(ValueError):
            FailoverClient([])
        with pytest.raises(ValueError):
            FailoverClient(["no-port"])

    def test_survives_a_dead_endpoint(self):
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0)) as bs:
            dead = f"127.0.0.1:{_free_port()}"
            live = f"{bs.host}:{bs.port}"
            fc = FailoverClient([dead, live], retries=4, timeout=5.0,
                                backoff_base=0.001, failure_threshold=2,
                                registry=reg)
            for _ in range(6):
                assert fc.health()["ok"] is True
            # The dead endpoint's breaker opened; the live one is closed.
            states = fc.breaker_states()
            assert states[live] == BREAKER_CLOSED
            assert states[dead] == BREAKER_OPEN
            requests = reg.get("repro_failover_requests_total")
            assert requests.value(endpoint=live, outcome="ok") == 6
            assert requests.value(endpoint=dead, outcome="failed") >= 2
            gauge = reg.get("repro_failover_breaker_open")
            assert gauge.value(endpoint=dead) == 1.0

    def test_open_breaker_skips_the_endpoint(self):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            dead = f"127.0.0.1:{_free_port()}"
            fc = FailoverClient([dead, f"{bs.host}:{bs.port}"],
                                retries=4, timeout=5.0, backoff_base=0.001,
                                failure_threshold=1, breaker_reset_s=60.0)
            fc.health()
            assert fc.breaker(dead).state == BREAKER_OPEN
            # With the breaker open the dead endpoint is never dialled:
            # every further call succeeds on the first attempt.
            requests_before = fc.breaker(dead).opens
            for _ in range(5):
                assert fc.health()["ok"] is True
            assert fc.breaker(dead).opens == requests_before

    def test_non_retryable_verdict_raises_immediately(self):
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0)) as bs:
            name = f"{bs.host}:{bs.port}"
            fc = FailoverClient([name], retries=5, backoff_base=0.001,
                                registry=reg)
            with pytest.raises(ServeError) as excinfo:
                fc.call("GET", "/no-such-endpoint")
            assert excinfo.value.code == "not-found"
            requests = reg.get("repro_failover_requests_total")
            assert requests.value(endpoint=name, outcome="rejected") == 1
            # An authoritative answer is endpoint health, not failure.
            assert fc.breaker(name).state == BREAKER_CLOSED

    def test_all_endpoints_dead_raises_last_error(self):
        sleeps = []
        fc = FailoverClient([f"127.0.0.1:{_free_port()}"], retries=2,
                            timeout=2.0, backoff_base=0.001,
                            sleep=sleeps.append)
        with pytest.raises(ServeError) as excinfo:
            fc.health()
        assert excinfo.value.code == "unavailable"
        assert len(sleeps) == 2

    def test_retry_budget_stops_the_storm(self):
        clock = FakeClock()
        sleeps = []

        def sleeping(delay):
            sleeps.append(delay)
            clock.now += delay

        fc = FailoverClient([f"127.0.0.1:{_free_port()}"], retries=50,
                            timeout=2.0, backoff_base=10.0,
                            retry_budget_s=0.5, clock=clock, sleep=sleeping)
        with pytest.raises(ServeError):
            fc.health()
        # The first sleep (~10s * jitter) would already overrun the
        # 0.5s budget, so no sleep ever happens.
        assert sleeps == []

    def test_exhausted_counter_and_determinism(self):
        reg = MetricsRegistry()
        port = _free_port()
        a = FailoverClient([f"127.0.0.1:{port}"], retries=3, seed=4,
                           timeout=2.0, registry=reg, sleep=lambda _d: None)
        b = FailoverClient([f"127.0.0.1:{port}"], retries=3, seed=4,
                           timeout=2.0, sleep=lambda _d: None)
        assert [a.backoff_delay("/healthz", k) for k in (1, 2, 3)] \
            == [b.backoff_delay("/healthz", k) for k in (1, 2, 3)]
        with pytest.raises(ServeError):
            a.health()
        assert reg.get("repro_failover_exhausted_total").value() == 1
