"""The chaos proxy: seeded fault draws, injected faults, determinism."""

import socket

import pytest

from repro.faults import PROXY_FAULT_KINDS, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve.chaos import BackgroundProxy
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import BackgroundServer, ServeConfig


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestProxyDraws:
    def test_fault_draw_is_deterministic(self):
        plan = FaultPlan(seed=7, proxy_refuse_rate=0.2, proxy_reset_rate=0.2,
                         proxy_delay_rate=0.2, proxy_truncate_rate=0.2)
        twin = FaultPlan(seed=7, proxy_refuse_rate=0.2, proxy_reset_rate=0.2,
                         proxy_delay_rate=0.2, proxy_truncate_rate=0.2)
        draws = [plan.proxy_fault(i) for i in range(64)]
        assert draws == [twin.proxy_fault(i) for i in range(64)]
        assert set(draws) > {None}  # at 80% total rate some faults landed

    def test_distinct_seeds_distinct_sequences(self):
        kwargs = dict(proxy_refuse_rate=0.25, proxy_reset_rate=0.25,
                      proxy_delay_rate=0.25, proxy_truncate_rate=0.25)
        a = FaultPlan(seed=1, **kwargs)
        b = FaultPlan(seed=2, **kwargs)
        assert [a.proxy_fault(i) for i in range(64)] \
            != [b.proxy_fault(i) for i in range(64)]

    def test_full_rate_forces_each_kind(self):
        for kind in PROXY_FAULT_KINDS:
            plan = FaultPlan(**{f"proxy_{kind}_rate": 1.0})
            assert all(plan.proxy_fault(i) == kind for i in range(16))

    def test_rates_validate(self):
        with pytest.raises(ValueError, match="proxy_reset_rate"):
            FaultPlan(proxy_reset_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(proxy_reset_rate=0.6, proxy_refuse_rate=0.6)
        with pytest.raises(ValueError, match="proxy_delay_seconds"):
            FaultPlan(proxy_delay_seconds=-1.0)

    def test_delay_and_cut_are_seeded_and_bounded(self):
        plan = FaultPlan(seed=3, proxy_delay_rate=1.0,
                         proxy_delay_seconds=0.2)
        for i in range(32):
            assert plan.proxy_delay(i) == plan.proxy_delay(i)
            assert 0.1 <= plan.proxy_delay(i) < 0.3  # 0.2 * [0.5, 1.5)
            assert 0 <= plan.proxy_cut(i, 64) < 64

    def test_round_trips_through_dict(self):
        plan = FaultPlan(seed=9, proxy_reset_rate=0.1,
                         proxy_truncate_rate=0.2, proxy_delay_seconds=0.5)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.proxy_active

    def test_clean_plan_is_inactive(self):
        assert not FaultPlan().proxy_active
        assert FaultPlan().proxy_fault(0) is None


class TestPassThrough:
    def test_clean_proxy_is_transparent(self):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            with BackgroundProxy("127.0.0.1", bs.port) as bp:
                client = ServeClient(bp.host, bp.port, retries=0)
                doc = client.health()
                assert doc["ok"] is True
                results = client.provision(
                    [{"n": 12, "d": 2, "max_duty": 0.5}],
                    include_schedules=False)
                assert "error" not in results[0]
                assert all(kind == "ok" for _i, kind in bp.fault_log)

    def test_connection_indices_count_up(self):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            with BackgroundProxy("127.0.0.1", bs.port) as bp:
                client = ServeClient(bp.host, bp.port, retries=0)
                for _ in range(3):
                    client.health()
                assert [i for i, _k in bp.fault_log] == [0, 1, 2]


class TestInjectedFaults:
    def test_refuse_storm_is_client_visible(self):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            plan = FaultPlan(proxy_refuse_rate=1.0)
            with BackgroundProxy("127.0.0.1", bs.port, plan=plan) as bp:
                client = ServeClient(bp.host, bp.port, retries=1,
                                     backoff_base=0.001)
                with pytest.raises(ServeError) as excinfo:
                    client.health()
                assert excinfo.value.code == "unavailable"
                assert all(kind == "refuse" for _i, kind in bp.fault_log)

    @pytest.mark.parametrize("kind", ["reset", "truncate"])
    def test_severed_response_is_client_visible(self, kind):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            plan = FaultPlan(**{f"proxy_{kind}_rate": 1.0})
            with BackgroundProxy("127.0.0.1", bs.port, plan=plan) as bp:
                client = ServeClient(bp.host, bp.port, retries=0)
                with pytest.raises(ServeError) as excinfo:
                    client.health()
                assert excinfo.value.code == "unavailable"

    def test_delay_only_slows_but_succeeds(self):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            plan = FaultPlan(proxy_delay_rate=1.0, proxy_delay_seconds=0.01)
            with BackgroundProxy("127.0.0.1", bs.port, plan=plan) as bp:
                client = ServeClient(bp.host, bp.port, retries=0)
                assert client.health()["ok"] is True
                assert bp.fault_log == [(0, "delay")]

    def test_dead_upstream_counts_as_upstream_failure(self):
        reg = MetricsRegistry()
        with BackgroundProxy("127.0.0.1", _free_port(),
                             registry=reg) as bp:
            client = ServeClient(bp.host, bp.port, retries=0, timeout=5.0)
            with pytest.raises(ServeError):
                client.health()
            counter = reg.get("repro_chaos_upstream_failures_total")
            assert counter.value() == 1

    def test_connection_metrics_by_fault(self):
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0)) as bs:
            plan = FaultPlan(proxy_delay_rate=1.0, proxy_delay_seconds=0.001)
            with BackgroundProxy("127.0.0.1", bs.port, plan=plan,
                                 registry=reg) as bp:
                ServeClient(bp.host, bp.port, retries=0).health()
        counter = reg.get("repro_chaos_connections_total")
        assert counter.value(fault="delay") == 1


class TestDeterminism:
    def test_same_seed_same_fault_log(self):
        """The acceptance property: seed + accept order => fault sequence."""
        plan = FaultPlan(seed=11, proxy_refuse_rate=0.2,
                         proxy_reset_rate=0.2, proxy_truncate_rate=0.2)
        logs = []
        with BackgroundServer(ServeConfig(port=0)) as bs:
            for _run in range(2):
                with BackgroundProxy("127.0.0.1", bs.port, plan=plan) as bp:
                    client = ServeClient(bp.host, bp.port, retries=0,
                                         timeout=5.0)
                    for _ in range(12):
                        try:
                            client.health()
                        except ServeError:
                            pass
                    logs.append(bp.fault_log)
        assert logs[0] == logs[1]
        assert any(kind != "ok" for _i, kind in logs[0])
