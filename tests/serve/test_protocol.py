"""Wire protocol: strict parsing, versioned error codes, envelopes."""

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    ERROR_STATUS,
    MAX_BATCH,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ProtocolError,
    error_doc,
    ok_doc,
    parse_body,
    parse_plan_body,
    parse_provision_body,
)


class TestEnvelopes:
    def test_ok_doc_carries_version_and_payload(self):
        doc = ok_doc(results=[1, 2])
        assert doc == {"protocol": PROTOCOL_VERSION, "ok": True,
                       "results": [1, 2]}

    def test_error_doc_shape(self):
        doc = error_doc(protocol.ERR_OVERLOADED, "busy")
        assert doc["ok"] is False
        assert doc["protocol"] == PROTOCOL_VERSION
        assert doc["error"] == {"code": "overloaded", "message": "busy"}

    def test_every_code_has_a_status(self):
        for code in (protocol.ERR_BAD_REQUEST, protocol.ERR_NOT_FOUND,
                     protocol.ERR_METHOD_NOT_ALLOWED,
                     protocol.ERR_PAYLOAD_TOO_LARGE, protocol.ERR_OVERLOADED,
                     protocol.ERR_DRAINING, protocol.ERR_DEADLINE_EXCEEDED,
                     protocol.ERR_INTERNAL):
            assert code in ERROR_STATUS

    def test_retryable_codes_are_the_never_processed_ones(self):
        assert RETRYABLE_CODES == {"overloaded", "draining"}

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="unknown protocol error code"):
            ProtocolError("made-up", "nope")

    def test_protocol_error_status_and_doc(self):
        exc = ProtocolError(protocol.ERR_DEADLINE_EXCEEDED, "too slow")
        assert exc.status == 504
        assert exc.to_doc()["error"]["code"] == "deadline-exceeded"


class TestParseBody:
    def test_rejects_empty_and_invalid_json(self):
        with pytest.raises(ProtocolError, match="body required"):
            parse_body(b"")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_body(b"{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_body(b"[1, 2]")

    def test_accepts_object(self):
        assert parse_body(b'{"a": 1}') == {"a": 1}


GOOD = {"n": 12, "d": 2, "max_duty": 0.5}


class TestParseProvisionBody:
    def test_happy_path(self):
        reqs, include = parse_provision_body(
            {"requests": [GOOD, {**GOOD, "balanced": True}]})
        assert [r.n for r in reqs] == [12, 12]
        assert reqs[1].balanced is True
        assert include is True

    def test_include_schedules_flag(self):
        _, include = parse_provision_body(
            {"requests": [GOOD], "include_schedules": False})
        assert include is False
        with pytest.raises(ProtocolError, match="include_schedules"):
            parse_provision_body({"requests": [GOOD],
                                  "include_schedules": "yes"})

    def test_rejects_unknown_top_level_keys(self):
        with pytest.raises(ProtocolError, match="unknown fields.*extra"):
            parse_provision_body({"requests": [GOOD], "extra": 1})

    def test_rejects_missing_or_empty_requests(self):
        with pytest.raises(ProtocolError, match="non-empty list"):
            parse_provision_body({})
        with pytest.raises(ProtocolError, match="non-empty list"):
            parse_provision_body({"requests": []})
        with pytest.raises(ProtocolError, match="non-empty list"):
            parse_provision_body({"requests": GOOD})

    def test_rejects_oversized_batch(self):
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            parse_provision_body({"requests": [GOOD] * (MAX_BATCH + 1)})

    def test_element_errors_name_the_index(self):
        with pytest.raises(ProtocolError, match=r"requests\[1\]"):
            parse_provision_body({"requests": [GOOD, {"n": 12}]})

    def test_element_type_errors_surface(self):
        with pytest.raises(ProtocolError, match="'n' must be an integer"):
            parse_provision_body({"requests": [{**GOOD, "n": "12"}]})


class TestParsePlanBody:
    def test_happy_path(self):
        req, include = parse_plan_body({**GOOD, "include_schedule": False})
        assert (req.n, req.d, req.max_duty) == (12, 2, 0.5)
        assert include is False

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            parse_plan_body({**GOOD, "wat": 1})

    def test_round_trips_through_json(self):
        # The docs promise the error envelope is plain JSON.
        doc = error_doc(protocol.ERR_DRAINING, "bye")
        assert json.loads(json.dumps(doc)) == doc


class TestRetryAfter:
    """The additive retry_after_s hint (still protocol version 1)."""

    def test_error_doc_embeds_the_hint(self):
        doc = error_doc(protocol.ERR_OVERLOADED, "busy", retry_after_s=0.25)
        assert doc["protocol"] == PROTOCOL_VERSION  # additive, not v2
        assert doc["error"]["retry_after_s"] == 0.25

    def test_error_doc_omits_the_hint_by_default(self):
        doc = error_doc(protocol.ERR_OVERLOADED, "busy")
        assert "retry_after_s" not in doc["error"]

    def test_protocol_error_carries_the_hint_into_its_doc(self):
        exc = ProtocolError(protocol.ERR_DRAINING, "bye", retry_after_s=1.5)
        assert exc.retry_after_s == 1.5
        assert exc.to_doc()["error"]["retry_after_s"] == 1.5
        bare = ProtocolError(protocol.ERR_DRAINING, "bye")
        assert bare.retry_after_s is None
        assert "retry_after_s" not in bare.to_doc()["error"]

    def test_hint_parser_accepts_only_sane_values(self):
        hint = protocol.retry_after_hint
        assert hint(error_doc(protocol.ERR_OVERLOADED, "b",
                              retry_after_s=0.5)) == 0.5
        assert hint(error_doc(protocol.ERR_OVERLOADED, "b",
                              retry_after_s=0)) == 0.0
        assert hint(error_doc(protocol.ERR_OVERLOADED, "b")) is None
        assert hint(None) is None
        assert hint({"error": {"retry_after_s": "soon"}}) is None
        assert hint({"error": {"retry_after_s": True}}) is None
        assert hint({"error": {"retry_after_s": -1.0}}) is None
        assert hint({"error": "nope"}) is None
