"""The process supervisor: restarts, crash loops, seeded backoff."""

import argparse
import sys

import pytest

from repro.faults import FaultPlan
from repro.serve.supervisor import (
    CRASH_LOOP_EXIT_CODE,
    Supervisor,
    SupervisorConfig,
    serve_child_argv,
)


class FakeChild:
    """A scripted child process: exits with a fixed code when waited on."""

    _pids = iter(range(1000, 9999))

    def __init__(self, code, on_wait=None):
        self.pid = next(self._pids)
        self._code = code
        self._on_wait = on_wait
        self._done = False

    def wait(self):
        if self._on_wait is not None:
            self._on_wait()
        self._done = True
        return self._code

    def poll(self):
        return self._code if self._done else None

    def send_signal(self, _sig):
        pass


class FakePopen:
    """Hands out scripted FakeChild processes in order."""

    def __init__(self, codes, on_spawn=None):
        self.codes = list(codes)
        self.spawned = 0
        self._on_spawn = on_spawn

    def __call__(self, argv):
        if self._on_spawn is not None:
            self._on_spawn()
        self.spawned += 1
        return FakeChild(self.codes.pop(0))


def _supervisor(codes, *, config=None, on_spawn=None, **kwargs):
    sleeps = []
    clock = {"now": 0.0}

    def sleep(delay):
        sleeps.append(delay)
        clock["now"] += delay

    popen = FakePopen(codes, on_spawn=on_spawn)
    sup = Supervisor([sys.executable, "-c", "pass"], config=config,
                     clock=lambda: clock["now"], sleep=sleep, popen=popen,
                     **kwargs)
    return sup, popen, sleeps


class TestRestarts:
    def test_crashes_restart_until_clean_exit(self):
        sup, popen, sleeps = _supervisor([1, -9, 0])
        assert sup.run() == 0
        assert popen.spawned == 3
        assert sup.restarts == 2
        assert len(sleeps) == 2
        kinds = [kind for kind, _detail in sup.events]
        assert kinds == ["start", "exit", "backoff",
                         "start", "exit", "backoff", "start", "exit"]

    def test_immediate_clean_exit_never_restarts(self):
        sup, popen, sleeps = _supervisor([0])
        assert sup.run() == 0
        assert popen.spawned == 1
        assert sup.restarts == 0
        assert sleeps == []

    def test_crash_loop_exits_nonzero(self):
        config = SupervisorConfig(max_restarts=2, backoff_base_s=0.0)
        sup, popen, _sleeps = _supervisor([1, 1, 1, 1, 1], config=config)
        assert sup.run() == CRASH_LOOP_EXIT_CODE
        # initial start + 2 tolerated restarts, then give up.
        assert popen.spawned == 3
        assert sup.events[-1][0] == "crash-loop"

    def test_old_crashes_age_out_of_the_window(self):
        # Window of 10s, crashes 100s apart: the counter never exceeds 1,
        # so even max_restarts=1 keeps restarting forever.
        config = SupervisorConfig(max_restarts=1, restart_window_s=10.0,
                                  backoff_base_s=100.0, backoff_cap_s=100.0)
        sup, popen, _sleeps = _supervisor([1, 1, 1, 0], config=config)
        assert sup.run() == 0
        assert popen.spawned == 4

    def test_ready_file_cleared_before_each_start(self, tmp_path):
        ready = tmp_path / "ready.txt"

        def spawn_check():
            assert not ready.exists()
            ready.write_text("host port\n")  # the child publishes it

        sup, popen, _sleeps = _supervisor([1, 0], on_spawn=spawn_check,
                                          ready_file=ready)
        assert sup.run() == 0
        assert popen.spawned == 2

    def test_stop_request_ends_supervision(self):
        # The child dies from the forwarded SIGTERM (-15); a stopping
        # supervisor maps that to a clean exit and never restarts.
        sup, popen, _sleeps = _supervisor([-15, 1])

        def stopping_spawn():
            sup.request_stop()

        popen._on_spawn = stopping_spawn
        assert sup.run() == 0
        assert popen.spawned == 1


class TestBackoff:
    def test_backoff_is_seeded_and_deterministic(self):
        config = SupervisorConfig(seed=9, backoff_base_s=0.2,
                                  backoff_cap_s=5.0)
        a = Supervisor(["x"], config=config)
        b = Supervisor(["x"], config=config)
        delays = [a.backoff_delay(k) for k in (1, 2, 3, 4)]
        assert delays == [b.backoff_delay(k) for k in (1, 2, 3, 4)]
        jitter = FaultPlan(seed=9)
        for k, delay in enumerate(delays, start=1):
            expected = min(5.0, 0.2 * 2.0 ** (k - 1)) \
                * jitter.backoff_jitter("supervisor", k)
            assert delay == expected

    def test_distinct_seeds_distinct_schedules(self):
        a = Supervisor(["x"], config=SupervisorConfig(seed=1))
        b = Supervisor(["x"], config=SupervisorConfig(seed=2))
        assert [a.backoff_delay(k) for k in (1, 2, 3)] \
            != [b.backoff_delay(k) for k in (1, 2, 3)]

    def test_sleeps_match_the_published_schedule(self):
        config = SupervisorConfig(seed=3, backoff_base_s=0.01)
        sup, _popen, sleeps = _supervisor([1, 1, 0], config=config)
        sup.run()
        assert sleeps == [sup.backoff_delay(1), sup.backoff_delay(2)]


class TestConfigAndArgv:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(restart_window_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            Supervisor([])

    def test_serve_child_argv_strips_supervisor_flags(self):
        args = argparse.Namespace(
            host="127.0.0.1", port=0, jobs=1, max_inflight=8, deadline=30.0,
            cache_dir="/tmp/c", no_cache=False, ready_file="ready.txt",
            pid_file="pid.txt", log_level="info", log_format="json",
            supervise=True, max_restarts=5, restart_window=60.0,
            restart_backoff_base=0.2, restart_seed=0)
        argv = serve_child_argv(args)
        assert argv[:4] == [sys.executable, "-m", "repro", "serve"]
        assert "--supervise" not in argv
        assert "--max-restarts" not in argv
        assert "--ready-file" in argv and "--pid-file" in argv
        assert argv[argv.index("--log-format") + 1] == "json"
