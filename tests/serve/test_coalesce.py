"""The coalescer: single-flight semantics, failure fan-out, shielding."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_identical_keys_share_one_computation(self):
        async def main():
            calls = []
            started = asyncio.Event()
            release = asyncio.Event()

            async def compute():
                calls.append(1)
                started.set()
                await release.wait()
                return "plan"

            c = Coalescer()
            tasks = [asyncio.ensure_future(c.run("k", compute))
                     for _ in range(10)]
            await started.wait()
            assert c.inflight() == 1
            release.set()
            results = await asyncio.gather(*tasks)
            assert results == ["plan"] * 10
            assert len(calls) == 1
            assert (c.led, c.joined) == (1, 9)
            assert c.hit_rate == pytest.approx(0.9)
            assert c.inflight() == 0

        run(main())

    def test_distinct_keys_compute_independently(self):
        def value(v):
            async def compute():
                return v
            return compute

        async def main():
            c = Coalescer()
            a, b = await asyncio.gather(c.run("a", value("A")),
                                        c.run("b", value("B")))
            assert (a, b) == ("A", "B")
            assert (c.led, c.joined) == (2, 0)

        run(main())

    def test_sequential_requests_do_not_coalesce(self):
        async def main():
            c = Coalescer()
            calls = []

            async def compute():
                calls.append(1)
                return len(calls)

            assert await c.run("k", compute) == 1
            assert await c.run("k", compute) == 2
            assert (c.led, c.joined) == (2, 0)

        run(main())


class TestFailures:
    def test_exception_fans_out_and_is_not_cached(self):
        async def main():
            c = Coalescer()
            attempts = []
            release = asyncio.Event()

            async def boom():
                attempts.append(1)
                await release.wait()
                raise RuntimeError("planner exploded")

            tasks = [asyncio.ensure_future(c.run("k", boom))
                     for _ in range(4)]
            await asyncio.sleep(0.01)
            release.set()
            for task in tasks:
                with pytest.raises(RuntimeError, match="planner exploded"):
                    await task
            assert len(attempts) == 1  # one flight served all four failures

            async def fine():
                return "recovered"

            # Failures are not cached: the next request leads afresh.
            assert await c.run("k", fine) == "recovered"

        run(main())

    def test_one_waiter_cancellation_spares_the_flight(self):
        async def main():
            c = Coalescer()
            release = asyncio.Event()

            async def compute():
                await release.wait()
                return "shared"

            leader = asyncio.ensure_future(c.run("k", compute))
            joiner = asyncio.ensure_future(c.run("k", compute))
            await asyncio.sleep(0.01)
            joiner.cancel()
            with pytest.raises(asyncio.CancelledError):
                await joiner
            release.set()
            # The flight survives its cancelled waiter.
            assert await leader == "shared"

        run(main())


class TestMetrics:
    def test_counters_live_in_the_given_registry(self):
        async def main():
            reg = MetricsRegistry()
            c = Coalescer(reg)

            async def compute():
                return 1

            await c.run("k", compute)
            counter = reg.get("repro_serve_coalesce_total")
            assert counter is not None
            assert counter.value(result="led") == 1.0
            assert counter.value(result="joined") == 0.0

        run(main())
