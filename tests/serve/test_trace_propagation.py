"""End-to-end request correlation through the serve tier.

The acceptance tests of the tracing layer: one trace id minted (or
forwarded) per logical request survives the client retry loop, the
failover rotation, the asyncio server, the coalescer and the thread
pool, and everything the request touched is reassemblable from the span
dump alone.
"""

import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.nonsleeping import mols_schedule
from repro.core.planner import GridPoint, evaluate_grid_point
from repro.obs import context as ctx
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, assemble_traces, set_default_tracer
from repro.serve.client import ServeClient
from repro.serve.failover import FailoverClient
from repro.serve.server import BackgroundServer, ServeConfig
from repro.service.api import ProvisionRequest, ProvisionResult

sys.path.insert(0, str(Path(__file__).parents[2] / "tools"))
try:
    from validate_trace import validate_lines as validate_trace_lines
finally:
    sys.path.pop(0)


@pytest.fixture(scope="module")
def tiny_plan():
    """One real, cheap plan to hand out from fake plan functions."""
    point = GridPoint("mols", mols_schedule(12, 2), 2, 4)
    return evaluate_grid_point(point, 2)


@pytest.fixture
def tracer():
    """A fresh default tracer per test, restored afterwards."""
    mine = Tracer()
    old = set_default_tracer(mine)
    try:
        yield mine
    finally:
        set_default_tracer(old)


def _plan_fn(tiny_plan, release=None):
    def fn(request: ProvisionRequest) -> ProvisionResult:
        if release is not None:
            assert release.wait(timeout=30.0)
        return ProvisionResult(request, tiny_plan)
    return fn


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


PLAN_DOC = {"n": 12, "d": 2, "max_duty": 0.5, "include_schedule": False}


class TestEndToEnd:
    def test_server_echoes_the_callers_trace_id(self, tiny_plan, tracer):
        with BackgroundServer(ServeConfig(port=0),
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with ctx.trace_context() as tc:
                doc = client.call("POST", "/plan", dict(PLAN_DOC))
            assert doc["trace_id"] == tc.trace_id

    def test_one_trace_spans_client_server_coalescer_pool(self, tiny_plan,
                                                          tracer):
        with BackgroundServer(ServeConfig(port=0),
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            doc = client.call("POST", "/plan", dict(PLAN_DOC))
        tid = doc["trace_id"]
        names = {s.name for s in tracer.spans if s.trace_id == tid}
        assert {"client.call", "serve.request", "serve.plan",
                "serve.coalesce.lead"} <= names
        # The dump reassembles into one tree rooted at the client span.
        trees = assemble_traces([s for s in tracer.spans
                                 if s.trace_id == tid])
        roots = trees[tid]
        assert len(roots) == 1
        assert roots[0]["record"].name == "client.call"

    def test_span_dump_passes_the_shipped_validator(self, tiny_plan,
                                                    tracer, tmp_path):
        with BackgroundServer(ServeConfig(port=0),
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            client.call("POST", "/plan", dict(PLAN_DOC))
        out = tmp_path / "trace.jsonl"
        tracer.to_jsonl(out)
        assert validate_trace_lines(out.read_text()) == []


class TestCoalescedTraces:
    def test_followers_record_the_leaders_trace_id(self, tiny_plan, tracer):
        """N concurrent identical requests: one execution under the
        leader's trace, join spans tying each follower to it."""
        release = threading.Event()
        n_clients = 4
        with BackgroundServer(ServeConfig(port=0, jobs=2, max_inflight=16),
                              plan_fn=_plan_fn(tiny_plan,
                                               release=release)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)

            def call():
                return client.call("POST", "/plan", dict(PLAN_DOC))

            with ThreadPoolExecutor(n_clients) as pool:
                futures = [pool.submit(call) for _ in range(n_clients)]
                deadline = time.monotonic() + 20
                while bs.server.active < n_clients:
                    assert time.monotonic() < deadline, "admission stalled"
                    time.sleep(0.005)
                release.set()
                docs = [f.result(timeout=30) for f in futures]

        trace_ids = {doc["trace_id"] for doc in docs}
        assert len(trace_ids) == n_clients  # every caller has its own
        leads = [s for s in tracer.spans if s.name == "serve.coalesce.lead"]
        joins = [s for s in tracer.spans if s.name == "serve.coalesce.join"]
        assert len(leads) == 1
        assert len(joins) == n_clients - 1
        leader_tid = leads[0].trace_id
        assert leader_tid in trace_ids
        for join in joins:
            assert join.attrs["leader_trace_id"] == leader_tid
            assert join.trace_id != leader_tid
            assert join.trace_id in trace_ids


class TestFailoverTrace:
    def test_one_trace_across_rotated_endpoints(self, tiny_plan, tracer):
        """A request that fails over keeps one trace id end to end."""
        dead = f"127.0.0.1:{_free_port()}"
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0),
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            fc = FailoverClient([dead, f"{bs.host}:{bs.port}"],
                                retries=2, timeout=5.0, registry=reg,
                                sleep=lambda _s: None)
            doc = fc.call("POST", "/plan", dict(PLAN_DOC))
        tid = doc["trace_id"]
        failover = [s for s in tracer.spans if s.name == "client.failover"]
        assert len(failover) == 1
        assert failover[0].trace_id == tid
        # Every endpoint attempt and the server's work share the trace.
        for name in ("client.call", "serve.request"):
            spans = [s for s in tracer.spans if s.name == name]
            assert spans and all(s.trace_id == tid for s in spans)


class TestSloEndpoint:
    def test_slo_reports_objectives_and_burn_rates(self, tiny_plan, tracer):
        # Own registry: the shared default one may hold 503s from other
        # tests' refusal drills, which would (correctly) burn the SLO.
        with BackgroundServer(ServeConfig(port=0), registry=MetricsRegistry(),
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            client.call("POST", "/plan", dict(PLAN_DOC))
            doc = client.slo()
            report = doc["slo"]
            assert report["format"] == "repro-slo"
            assert report["ok"] is True
            by_name = {r["objective"]["name"]: r
                       for r in report["objectives"]}
            assert by_name["serve-latency"]["total"] >= 1
            assert "burn_rates" in by_name["serve-latency"]


class TestDebugz:
    def test_flight_recorder_holds_hop_timelines(self, tiny_plan, tracer):
        with BackgroundServer(ServeConfig(port=0, flight_capacity=8),
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            answer = client.call("POST", "/plan", dict(PLAN_DOC))
            doc = client.debugz()
        assert doc["capacity"] == 8
        flights = doc["requests"]
        assert flights  # newest first
        flight = flights[0]
        assert flight["endpoint"] == "/plan"
        assert flight["status"] == 200
        assert flight["trace_id"] == answer["trace_id"]
        hops = [h["hop"] for h in flight["hops"]]
        assert hops[0] == "admit"
        # The leader's timeline: coalesce verdict, then the pool hop.
        assert (hops.index("coalesce") < hops.index("pool.submit")
                < hops.index("pool.done"))
        offsets = [h["t_s"] for h in flight["hops"]]
        assert offsets == sorted(offsets)

    def test_refusals_are_recorded_too(self, tiny_plan, tracer):
        release = threading.Event()
        config = ServeConfig(port=0, jobs=1, max_inflight=1,
                             flight_capacity=8)
        with BackgroundServer(config,
                              plan_fn=_plan_fn(tiny_plan,
                                               release=release)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(
                    lambda: client.call("POST", "/plan", dict(PLAN_DOC)))
                deadline = time.monotonic() + 20
                while bs.server.active < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                status, _data, _ct = client.request(
                    "POST", "/plan",
                    {"n": 15, "d": 2, "max_duty": 0.5})
                assert status == 503
                release.set()
                future.result(timeout=30)
            doc = client.debugz()
        refused = [f for f in doc["requests"]
                   if any(h["hop"] == "refused" for h in f["hops"])]
        assert refused
        assert refused[0]["status"] == 503
        assert refused[0]["error"] == "overloaded"


class TestExemplars:
    def test_latency_exemplars_link_back_to_a_trace(self, tiny_plan,
                                                    tracer):
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0), registry=reg,
                              plan_fn=_plan_fn(tiny_plan)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            answer = client.call("POST", "/plan", dict(PLAN_DOC))
            snap = client.metrics_snapshot()
        series = snap["histograms"]["repro_serve_request_seconds"]["series"]
        exemplars = [ex for entry in series
                     for ex in entry.get("exemplars", []) if ex]
        assert exemplars
        assert answer["trace_id"] in {ex["trace_id"] for ex in exemplars}
