"""`repro serve` and `repro call`, end to end over loopback."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.serve.server import BackgroundServer, ServeConfig
from repro.service.api import ProvisionResult


@pytest.fixture(scope="module")
def server():
    """One background server shared by the `repro call` tests."""
    with BackgroundServer(ServeConfig(port=0, jobs=2)) as bs:
        yield bs


def _call(server, *argv):
    return main(["call", *argv, "--host", server.host,
                 "--port", str(server.port)])


class TestCall:
    def test_health(self, server, capsys):
        assert _call(server, "health") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "serving"

    def test_plan_writes_schedule_file(self, server, tmp_path, capsys):
        out = tmp_path / "sched.json"
        rc = _call(server, "plan", "-n", "12", "-d", "2",
                   "--max-duty", "1/2", "-o", str(out))
        captured = capsys.readouterr()
        assert rc == 0
        doc = json.loads(captured.out)
        assert "schedule" not in doc  # moved into the file
        assert doc["request"]["max_duty"] == "1/2"
        saved = json.loads(out.read_text())
        assert saved["format"] == "repro-schedule"

    def test_plan_missing_args_is_usage_error(self, server, capsys):
        assert _call(server, "plan", "-n", "12") == 2
        assert "needs -n, -d and --max-duty" in capsys.readouterr().err

    def test_plan_infeasible_budget_exits_1(self, server, capsys):
        rc = _call(server, "plan", "-n", "12", "-d", "2",
                   "--max-duty", "0.05")
        assert rc == 1
        assert "error" in json.loads(capsys.readouterr().out)

    def test_provision_round_trips_jsonl(self, server, tmp_path, capsys):
        infile = tmp_path / "reqs.jsonl"
        outfile = tmp_path / "res.jsonl"
        infile.write_text(
            '{"n": 12, "d": 2, "max_duty": 0.5}\n'
            '{"n": 9, "d": 3, "max_duty": 0.9}\n')
        rc = _call(server, "provision", "-i", str(infile), "-o", str(outfile))
        assert rc == 0
        assert "provisioned 2/2" in capsys.readouterr().err
        lines = outfile.read_text().splitlines()
        results = [ProvisionResult.from_dict(json.loads(s)) for s in lines]
        assert all(r.plan is not None for r in results)
        assert [r.request.n for r in results] == [12, 9]

    def test_provision_failed_request_exits_1(self, server, tmp_path, capsys):
        infile = tmp_path / "reqs.jsonl"
        infile.write_text('{"n": 12, "d": 2, "max_duty": 0.01}\n')
        rc = _call(server, "provision", "-i", str(infile),
                   "-o", "-", "--no-schedules")
        captured = capsys.readouterr()
        assert rc == 1
        assert "error" in json.loads(captured.out.splitlines()[0])

    def test_provision_bad_input_line_exits_2(self, server, tmp_path, capsys):
        infile = tmp_path / "reqs.jsonl"
        infile.write_text('{"n": 12, "d": 2, "max_duty": 0.5, "wat": 1}\n')
        assert _call(server, "provision", "-i", str(infile)) == 2
        assert "unknown fields" in capsys.readouterr().err

    def test_metrics_json_snapshot(self, server, capsys):
        assert _call(server, "metrics", "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-metrics"

    def test_unreachable_server_exits_4(self, capsys):
        rc = main(["call", "health", "--port", "1", "--retries", "0",
                   "--timeout", "1"])
        assert rc == 4
        assert "error: server" in capsys.readouterr().err


class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The deployment path: real process, ready-file, SIGTERM."""
        ready = tmp_path / "ready"
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--no-cache", "--ready-file", str(ready)],
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert proc.poll() is None, proc.stderr.read()
                assert time.monotonic() < deadline, "server never became ready"
                time.sleep(0.05)
            host, port = ready.read_text().split()

            rc = main(["call", "plan", "-n", "9", "-d", "3",
                       "--max-duty", "0.8", "--host", host, "--port", port])
            assert rc == 0

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            stderr = proc.stderr.read()
            assert "serving on http://" in stderr
            assert "drained; exiting" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
