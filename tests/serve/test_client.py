"""The serve client: seeded backoff, retry policy, failure reporting."""

import socket
import time

import pytest

from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import BackgroundServer, ServeConfig
from repro.service.api import ProvisionRequest


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackoff:
    def test_delay_is_seeded_and_deterministic(self):
        a = ServeClient(port=1, seed=7)
        b = ServeClient(port=1, seed=7)
        delays = [a.backoff_delay("/provision", k) for k in (1, 2, 3)]
        assert delays == [b.backoff_delay("/provision", k) for k in (1, 2, 3)]

    def test_delay_matches_the_fault_plan_jitter(self):
        client = ServeClient(port=1, seed=3, backoff_base=0.1,
                             backoff_cap=10.0)
        jitter = FaultPlan(seed=3)
        for attempt in (1, 2, 3):
            expected = 0.1 * 2.0 ** (attempt - 1) \
                * jitter.backoff_jitter("/plan", attempt)
            assert client.backoff_delay("/plan", attempt) == expected

    def test_delay_grows_then_caps(self):
        client = ServeClient(port=1, seed=0, backoff_base=0.1,
                             backoff_cap=0.4)
        # The jitter factor is in [0.5, 1.5): the capped delay never
        # exceeds cap * 1.5 no matter how deep the ladder goes.
        for attempt in (1, 2, 3, 4, 5):
            assert client.backoff_delay("/x", attempt) < 0.4 * 1.5

    def test_distinct_seeds_distinct_schedules(self):
        a = ServeClient(port=1, seed=1)
        b = ServeClient(port=1, seed=2)
        assert [a.backoff_delay("/p", k) for k in (1, 2, 3)] \
            != [b.backoff_delay("/p", k) for k in (1, 2, 3)]


class TestRetries:
    def test_unreachable_server_raises_unavailable(self):
        client = ServeClient(port=_free_port(), timeout=1.0, retries=1,
                             backoff_base=0.001)
        with pytest.raises(ServeError) as excinfo:
            client.health()
        assert excinfo.value.code == "unavailable"
        assert excinfo.value.status == 0

    def test_retry_clears_transient_overload(self, monkeypatch):
        """A 503 overloaded response is retried; the retry succeeds."""
        # max_inflight=0 refuses every provisioning request outright.
        with BackgroundServer(ServeConfig(port=0, max_inflight=0)) as bs:
            client = ServeClient(bs.host, bs.port, retries=3,
                                 backoff_base=0.001)
            attempts = []

            def lifting_delay(path, attempt, *, retry_after_s=None):
                # First backoff sleep: lift the overload so the retry
                # lands on a healthy admission bound.  ServeConfig is
                # frozen; tests may pry it open.
                attempts.append((attempt, retry_after_s))
                object.__setattr__(bs.server.config, "max_inflight", 64)
                return 0.001

            monkeypatch.setattr(client, "retry_delay", lifting_delay)
            results = client.provision(
                [ProvisionRequest(12, 2, 0.5)], include_schedules=False)
            assert "error" not in results[0]
            assert len(attempts) == 1  # exactly one retry was needed
            attempt, hint = attempts[0]
            assert attempt == 1
            assert hint is not None and hint > 0  # the server sent a hint

    def test_overload_without_retries_raises_immediately(self):
        with BackgroundServer(ServeConfig(port=0, max_inflight=0)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with pytest.raises(ServeError) as excinfo:
                client.provision([ProvisionRequest(12, 2, 0.5)])
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.status == 503

    def test_non_retryable_errors_hit_the_server_once(self):
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0), registry=reg) as bs:
            client = ServeClient(bs.host, bs.port, retries=3,
                                 backoff_base=0.001)
            with pytest.raises(ServeError) as excinfo:
                client.call("GET", "/no-such-endpoint")
            assert excinfo.value.code == "not-found"
            counter = reg.get("repro_serve_requests_total")
            assert counter.value(endpoint="/no-such-endpoint",
                                 code="404") == 1  # no retries happened


class TestRetryAfterHint:
    def test_hint_overrides_the_seeded_backoff(self):
        client = ServeClient(port=1, seed=0, backoff_cap=2.0)
        assert client.retry_delay("/p", 1, retry_after_s=0.25) == 0.25
        assert client.retry_delay("/p", 1, retry_after_s=99.0) == 2.0  # cap
        assert client.retry_delay("/p", 1) == client.backoff_delay("/p", 1)

    def test_overloaded_error_carries_the_hint(self):
        with BackgroundServer(ServeConfig(port=0, max_inflight=0)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with pytest.raises(ServeError) as excinfo:
                client.provision([ProvisionRequest(12, 2, 0.5)])
            exc = excinfo.value
            assert exc.code == "overloaded"
            assert exc.retryable
            assert exc.retry_after_s is not None and exc.retry_after_s > 0

    def test_non_retryable_errors_have_no_hint(self):
        with BackgroundServer(ServeConfig(port=0)) as bs:
            client = ServeClient(bs.host, bs.port, retries=0)
            with pytest.raises(ServeError) as excinfo:
                client.call("GET", "/no-such-endpoint")
            assert not excinfo.value.retryable
            assert excinfo.value.retry_after_s is None


class TestRetryBudget:
    def test_budget_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retry_budget_s"):
            ServeClient(port=1, retry_budget_s=-1.0)

    def test_spent_budget_surfaces_the_final_outcome(self):
        """With a zero budget no retry sleep fits: one attempt only."""
        reg = MetricsRegistry()
        with BackgroundServer(ServeConfig(port=0, max_inflight=0),
                              registry=reg) as bs:
            client = ServeClient(bs.host, bs.port, retries=5,
                                 retry_budget_s=0.0)
            with pytest.raises(ServeError) as excinfo:
                client.provision([ProvisionRequest(12, 2, 0.5)])
            assert excinfo.value.code == "overloaded"
            counter = reg.get("repro_serve_requests_total")
            assert counter.value(endpoint="/provision", code="503") == 1

    def test_budget_bounds_unreachable_retries(self):
        client = ServeClient(port=_free_port(), timeout=1.0, retries=50,
                             backoff_base=10.0, retry_budget_s=0.5)
        start = time.monotonic()
        with pytest.raises(ServeError) as excinfo:
            client.health()
        assert excinfo.value.code == "unavailable"
        assert time.monotonic() - start < 5.0
