"""The metrics registry: instruments, snapshots, merge, exports."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    default_registry,
    set_default_registry,
)


class TestInstruments:
    def test_counter_increments_and_totals(self):
        reg = MetricsRegistry()
        lookups = reg.counter("lookups_total", "Lookups by result.")
        hits = lookups.labels(result="hit")
        hits.inc()
        hits.inc(2)
        lookups.inc(result="miss")
        assert lookups.value(result="hit") == 3
        assert lookups.value(result="miss") == 1
        assert lookups.value(result="never") == 0
        assert lookups.total() == 4

    def test_counters_only_go_up(self):
        series = MetricsRegistry().counter("c").labels()
        with pytest.raises(ValueError):
            series.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(5.0)
        gauge.set(2.5)
        assert gauge.value() == 2.5

    def test_histogram_buckets_observations(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        series = hist.labels()
        for value in (0.05, 0.1, 0.5, 5.0, 50.0):
            series.observe(value)
        # cumulative semantics: le=0.1 catches 0.05 and 0.1 exactly
        assert series.counts == [2, 1, 1, 1]
        assert series.count == 5
        assert series.sum == pytest.approx(55.65)

    def test_histogram_validates_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("a", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("b", buckets=(1.0, 1.0))

    def test_accessors_are_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        assert reg.names() == ["x"]
        assert reg.get("x").kind == "counter"
        assert reg.get("missing") is None


class TestSnapshotMerge:
    def _worker_registry(self):
        reg = MetricsRegistry()
        reg.counter("tasks_total", "Tasks.").labels(status="ok").inc(3)
        reg.gauge("rate").labels().set(7.0)
        reg.histogram("exec_s", buckets=(0.1, 1.0)).labels().observe(0.05)
        return reg

    def test_snapshot_is_self_describing_json(self):
        snap = self._worker_registry().snapshot()
        assert snap["format"] == SNAPSHOT_FORMAT
        assert snap["version"] == SNAPSHOT_VERSION
        json.dumps(snap)  # plain data, no custom types
        assert snap["counters"]["tasks_total"]["series"] == [
            {"labels": {"status": "ok"}, "value": 3.0}]
        hist = snap["histograms"]["exec_s"]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["series"][0]["counts"] == [1, 0, 0]

    def test_merge_adds_counters_and_buckets(self):
        parent = MetricsRegistry()
        parent.counter("tasks_total").labels(status="ok").inc(1)
        parent.merge(self._worker_registry().snapshot())
        parent.merge(self._worker_registry().snapshot())
        assert parent.counter("tasks_total").value(status="ok") == 7
        series = parent.histogram("exec_s").labels()
        assert series.counts == [2, 0, 0]
        assert series.count == 2
        # gauges take the incoming value instead of adding
        assert parent.gauge("rate").value() == 7.0

    def test_merge_matches_jobs1_totals(self):
        # The process-pool contract: merging N worker snapshots equals
        # recording every event in one registry.
        inline = MetricsRegistry()
        merged = MetricsRegistry()
        for _ in range(4):
            inline.counter("tasks_total", "Tasks.") \
                .labels(status="ok").inc(3)
            inline.histogram("exec_s", buckets=(0.1, 1.0)) \
                .labels().observe(0.05)
            merged.merge(self._worker_registry().snapshot())
        inline_doc = inline.snapshot()
        merged_doc = merged.snapshot()
        assert inline_doc["counters"] == merged_doc["counters"]
        assert inline_doc["histograms"] == merged_doc["histograms"]

    def test_merge_rejects_foreign_documents(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.merge({"format": "something-else"})
        with pytest.raises(ValueError):
            reg.merge({"format": SNAPSHOT_FORMAT, "version": 99})

    def test_merge_rejects_bucket_mismatch(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(0.5,)).labels().observe(0.1)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())


class TestExports:
    def test_write_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "help text").labels(kind="a").inc(2)
        path = tmp_path / "m.json"
        reg.write_json(path)
        doc = json.loads(path.read_text())
        assert doc == reg.snapshot()

    def test_snapshot_passes_the_shipped_validator(self, tmp_path):
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).parents[2] / "tools"))
        try:
            from validate_metrics import validate
        finally:
            sys.path.pop(0)
        reg = MetricsRegistry()
        reg.counter("c", "help").labels(status="ok").inc()
        reg.gauge("g", "help").labels().set(1.0)
        reg.histogram("h", "help").labels().observe(0.2)
        assert validate(reg.snapshot()) == []
        assert validate({"format": "nope"}) != []

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests.").labels(code="200").inc(5)
        reg.histogram("lat", buckets=(0.1, 1.0)).labels().observe(0.05)
        text = reg.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 5' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum" in text and "lat_count" in text

    def test_prometheus_escapes_label_values(self):
        # Request-derived labels (paths, error strings) may carry any of
        # the three characters the exposition format reserves.
        reg = MetricsRegistry()
        reg.counter("c", "help").labels(
            path='a\\b"c\nd', code="200").inc()
        text = reg.to_prometheus()
        assert 'path="a\\\\b\\"c\\nd"' in text
        # The series line itself stays a single physical line.
        series_lines = [ln for ln in text.splitlines() if ln.startswith("c{")]
        assert len(series_lines) == 1

    def test_prometheus_escapes_help_text(self):
        reg = MetricsRegistry()
        reg.counter("c", "first\nsecond \\ done").labels().inc()
        text = reg.to_prometheus()
        assert "# HELP c first\\nsecond \\\\ done" in text
        assert sum(1 for ln in text.splitlines()
                   if ln.startswith("# HELP")) == 1

    def test_prometheus_plain_labels_untouched(self):
        reg = MetricsRegistry()
        reg.counter("c", "h").labels(endpoint="/provision").inc(3)
        assert 'c{endpoint="/provision"} 3' in reg.to_prometheus()

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_prometheus_exemplar_histogram_exports_clean(self):
        # Exemplars live in the JSON snapshot only; the text exposition
        # of an exemplar-bearing histogram must stay plain and parseable.
        reg = MetricsRegistry()
        series = reg.histogram("lat", "h", buckets=(0.1, 1.0),
                               exemplars=True).labels(endpoint="/plan")
        series.observe(0.05, trace_id="ab" * 8)
        series.observe(5.0, trace_id="cd" * 8)
        text = reg.to_prometheus()
        assert 'lat_bucket{endpoint="/plan",le="0.1"} 1' in text
        assert 'lat_bucket{endpoint="/plan",le="+Inf"} 2' in text
        assert "trace_id" not in text  # exemplars never leak into text
        # ...but they do surface in the snapshot, validator-clean.
        entry = reg.snapshot()["histograms"]["lat"]["series"][0]
        assert any(ex and ex["trace_id"] == "cd" * 8
                   for ex in entry["exemplars"])

    def test_prometheus_label_with_backslash_and_quote(self):
        # Both escapes in one value: the backslash must be escaped
        # first, or the quote's escape gets double-escaped.  Asserted by
        # round-trip: a standard exposition-format unescape of the
        # emitted label recovers the original value exactly.
        import re

        value = 'C:\\tmp\\"x"'
        reg = MetricsRegistry()
        reg.counter("c", "h").labels(path=value).inc()
        series_lines = [ln for ln in reg.to_prometheus().splitlines()
                        if ln.startswith("c{")]
        assert len(series_lines) == 1
        match = re.search(r'path="((?:[^"\\]|\\.)*)"', series_lines[0])
        assert match is not None

        def unescape(s):
            out, i = [], 0
            while i < len(s):
                if s[i] == "\\" and i + 1 < len(s):
                    out.append("\n" if s[i + 1] == "n" else s[i + 1])
                    i += 2
                else:
                    out.append(s[i])
                    i += 1
            return "".join(out)

        assert unescape(match.group(1)) == value

    def test_prometheus_empty_registry_is_comment_only(self):
        text = MetricsRegistry().to_prometheus()
        assert text  # never a zero-byte scrape body
        assert text.endswith("\n")
        assert all(line.startswith("#")
                   for line in text.splitlines() if line.strip())

    def test_histogram_buckets_are_per_instance(self):
        reg = MetricsRegistry()
        fine = reg.histogram("fine", "h", buckets=(0.0001, 0.001, 0.01))
        coarse = reg.histogram("coarse", "h", buckets=(1.0, 10.0))
        fine.labels().observe(0.0005)
        coarse.labels().observe(0.0005)
        snap = reg.snapshot()
        assert snap["histograms"]["fine"]["buckets"] == [0.0001, 0.001, 0.01]
        assert snap["histograms"]["coarse"]["buckets"] == [1.0, 10.0]
        # The same observation lands in different buckets per layout.
        assert snap["histograms"]["fine"]["series"][0]["counts"] == [0, 1,
                                                                     0, 0]
        assert snap["histograms"]["coarse"]["series"][0]["counts"] == [1, 0,
                                                                       0]

    def test_serve_latency_buckets_resolve_sub_millisecond(self):
        from repro.serve.server import SERVE_LATENCY_BUCKETS

        assert list(SERVE_LATENCY_BUCKETS) == sorted(SERVE_LATENCY_BUCKETS)
        # Sub-ms resolution for the coalesced fast path, and 1.0s still a
        # bound so the default SLO threshold lands exactly on a bucket.
        assert sum(1 for b in SERVE_LATENCY_BUCKETS if b < 0.001) >= 3
        assert 1.0 in SERVE_LATENCY_BUCKETS


class TestDefaultRegistry:
    def test_set_default_registry_swaps_and_returns_old(self):
        mine = MetricsRegistry()
        old = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(old)
        assert default_registry() is old
