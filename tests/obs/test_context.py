"""Request-scoped trace context: ids, nesting, determinism, hand-off."""

import contextvars
import threading

from repro.obs import context as ctx


class TestIdGeneration:
    def test_ids_are_16_hex_and_distinct(self):
        a, b = ctx.new_trace_id(), ctx.new_span_id()
        assert len(a) == ctx.ID_HEX_LEN and len(b) == ctx.ID_HEX_LEN
        assert set(a + b) <= set("0123456789abcdef")
        assert a != b

    def test_deterministic_ids_replay_by_seed(self):
        with ctx.deterministic_ids(7):
            first = [ctx.new_span_id() for _ in range(4)]
        with ctx.deterministic_ids(7):
            second = [ctx.new_span_id() for _ in range(4)]
        with ctx.deterministic_ids(8):
            other = [ctx.new_span_id() for _ in range(4)]
        assert first == second
        assert first != other

    def test_deterministic_ids_restore_randomness(self):
        with ctx.deterministic_ids(0):
            seeded = ctx.new_span_id()
        assert ctx.new_span_id() != seeded  # back to os.urandom

    def test_deterministic_ids_nest(self):
        with ctx.deterministic_ids(1):
            outer_first = ctx.new_span_id()
            with ctx.deterministic_ids(2):
                inner = ctx.new_span_id()
            outer_second = ctx.new_span_id()
        with ctx.deterministic_ids(1):
            replay = [ctx.new_span_id() for _ in range(2)]
        assert [outer_first, outer_second] == replay
        assert inner not in replay


class TestTraceContext:
    def test_no_context_outside_any_scope(self):
        assert ctx.current() is None
        assert ctx.current_trace_id() is None

    def test_new_trace_has_fresh_ids_and_resets(self):
        with ctx.trace_context() as tc:
            assert ctx.current() is tc
            assert ctx.current_trace_id() == tc.trace_id
            assert tc.parent_id is None
        assert ctx.current() is None

    def test_nested_scope_is_a_passthrough(self):
        with ctx.trace_context() as outer:
            with ctx.trace_context() as inner:
                assert inner is outer
            assert ctx.current() is outer

    def test_adopting_a_remote_trace_positions_at_the_parent(self):
        # The forwarded parent span id becomes the ambient position, so
        # the first local span parents directly under the remote caller.
        with ctx.trace_context(trace_id="t" * 16, parent_id="p" * 16) as tc:
            assert tc.trace_id == "t" * 16
            assert tc.span_id == "p" * 16
            child, token = ctx.enter_span()
            assert child.trace_id == "t" * 16
            assert child.parent_id == "p" * 16
            ctx.exit_span(token)

    def test_reset_survives_exceptions(self):
        try:
            with ctx.trace_context():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert ctx.current() is None

    def test_to_dict_shape(self):
        with ctx.trace_context() as tc:
            doc = tc.to_dict()
        assert doc == {"trace_id": tc.trace_id, "span_id": tc.span_id,
                       "parent_id": None}


class TestSpans:
    def test_enter_span_roots_a_trace_when_none_active(self):
        span, token = ctx.enter_span()
        try:
            assert span.parent_id is None
            assert ctx.current() is span
        finally:
            ctx.exit_span(token)
        assert ctx.current() is None

    def test_nested_spans_chain_parentage(self):
        with ctx.trace_context() as tc:
            a, ta = ctx.enter_span()
            b, tb = ctx.enter_span()
            assert a.trace_id == b.trace_id == tc.trace_id
            assert a.parent_id == tc.span_id
            assert b.parent_id == a.span_id
            ctx.exit_span(tb)
            assert ctx.current() is a
            ctx.exit_span(ta)
            assert ctx.current() is tc


class TestHandOff:
    def test_copy_context_carries_the_trace_across_threads(self):
        # The executor hop in the serve tier: copy_context().run on the
        # worker thread sees the submitting request's context.
        seen = []
        with ctx.trace_context() as tc:
            snapshot = contextvars.copy_context()
        worker = threading.Thread(
            target=lambda: seen.append(snapshot.run(ctx.current_trace_id)))
        worker.start()
        worker.join()
        assert seen == [tc.trace_id]

    def test_plain_threads_do_not_inherit_the_trace(self):
        seen = []
        with ctx.trace_context():
            worker = threading.Thread(
                target=lambda: seen.append(ctx.current_trace_id()))
            worker.start()
            worker.join()
        assert seen == [None]
