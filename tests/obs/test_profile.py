"""The sampling profiler: stacks, collapsed format, lifecycle, CLI flag.

The profiler is statistical, so the tests pin what is deterministic —
the collapsed-stack format round-trip, the thread-root labelling, the
top-table accounting, the lifecycle contract (single-use, idempotent
stop, guaranteed final sample) — and only ask "did it see the busy
function at all" of the sampling itself, with a worker thread that
spins long enough to be unmissable.
"""

import sys
import threading
import time

import pytest

from repro.obs.profile import (
    MAX_HZ,
    MAX_STACK_DEPTH,
    Profile,
    SamplingProfiler,
    looks_like_collapsed,
    parse_collapsed,
    profile_wait,
    sample_profile,
)


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(200))


class TestSampling:
    def test_profile_sees_a_busy_named_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,),
                                  name="busy-worker", daemon=True)
        worker.start()
        try:
            profile = profile_wait(0.25, hz=200)
        finally:
            stop.set()
            worker.join()
        assert profile.samples > 0
        text = profile.collapsed()
        assert "thread:busy-worker" in text
        # The stack reaches the spinning function itself.
        assert any(stack[0] == "thread:busy-worker"
                   and any("_spin" in label for label in stack)
                   for stack in parse_collapsed(text))

    def test_sampler_excludes_its_own_thread(self):
        profiler = SamplingProfiler(hz=50).start()
        time.sleep(0.1)
        profile = profiler.stop()
        assert all(stack[0] != "thread:repro-profiler"
                   for stack in profile.counts)

    def test_sub_period_session_still_yields_samples(self):
        # 1 hz and an immediate stop: only the final synchronous pass
        # can have run, and it must be enough.
        profiler = SamplingProfiler(hz=1).start()
        profile = profiler.stop()
        assert profile.samples > 0
        assert any(stack[0] == "thread:MainThread"
                   for stack in profile.counts)

    def test_deep_recursion_is_depth_bounded(self):
        def recurse(depth):
            if depth == 0:
                profiler = SamplingProfiler(hz=10)
                profiler.sample_once()
                return profiler
            return recurse(depth - 1)

        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, MAX_STACK_DEPTH + 200))
        try:
            profiler = recurse(MAX_STACK_DEPTH + 50)
        finally:
            sys.setrecursionlimit(limit)
        stacks = [s for s in profiler._counts if s[0] == "thread:MainThread"]
        assert stacks
        # thread root + "..." marker + MAX_STACK_DEPTH frames at most.
        assert all(len(s) <= MAX_STACK_DEPTH + 2 for s in stacks)
        assert any("..." in s for s in stacks)


class TestLifecycle:
    def test_double_start_raises(self):
        profiler = SamplingProfiler(hz=10).start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            SamplingProfiler(hz=10).stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=10).start()
        first = profiler.stop()
        assert profiler.stop() is first

    @pytest.mark.parametrize("hz", [0, -1, MAX_HZ + 1])
    def test_hz_out_of_range_raises(self, hz):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=hz)

    @pytest.mark.parametrize("hz", [1.5, "100", True])
    def test_hz_wrong_type_raises(self, hz):
        with pytest.raises(TypeError):
            SamplingProfiler(hz=hz)

    def test_context_manager_writes_even_on_raise(self, tmp_path):
        out = tmp_path / "crash.collapsed"
        with pytest.raises(RuntimeError):
            with sample_profile(hz=10, out=out):
                raise RuntimeError("boom")
        assert parse_collapsed(out.read_text())


class TestCollapsedFormat:
    def test_round_trip(self):
        counts = {("thread:MainThread", "m.f", "m.g"): 3,
                  ("thread:w", "m.h"): 1}
        profile = Profile()
        profile.counts.update(counts)
        profile.samples = 4
        assert parse_collapsed(profile.collapsed()) == counts

    def test_collapsed_is_sorted_with_trailing_newline(self):
        profile = Profile()
        profile.counts[("b",)] = 1
        profile.counts[("a",)] = 2
        assert profile.collapsed() == "a 2\nb 1\n"

    def test_empty_profile_collapses_to_empty_string(self):
        assert Profile().collapsed() == ""

    def test_parse_rejects_bad_lines(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_collapsed("a;b 3\nnot a stack line\n")
        with pytest.raises(ValueError, match="line 1"):
            parse_collapsed("a;b minus3")

    def test_frame_labels_never_contain_separators(self):
        # A pathological function name with ';' and ' ' must not corrupt
        # the format: labels are scrubbed at walk time.
        namespace = {}
        exec("def evil(): return sum(range(10))", namespace)
        namespace["evil"].__code__ = \
            namespace["evil"].__code__.replace(co_name="has;semi colon")
        done = threading.Event()

        def run():
            while not done.is_set():
                namespace["evil"]()

        worker = threading.Thread(target=run, name="evil-worker",
                                  daemon=True)
        worker.start()
        try:
            profile = profile_wait(0.2, hz=200)
        finally:
            done.set()
            worker.join()
        parse_collapsed(profile.collapsed())  # must not raise

    def test_looks_like_collapsed(self):
        assert looks_like_collapsed("a;b 3\n")
        assert not looks_like_collapsed("")
        assert not looks_like_collapsed('{"name": "span"}')


class TestTopTable:
    def test_self_and_cumulative_accounting(self):
        profile = Profile()
        profile.counts[("thread:t", "m.outer", "m.inner")] = 6
        profile.counts[("thread:t", "m.outer")] = 4
        profile.samples = 10
        rows = {r["frame"]: r for r in profile.top(10)}
        assert rows["m.inner"]["self"] == 6
        assert rows["m.outer"]["self"] == 4
        assert rows["m.outer"]["cum"] == 10  # on every stack
        assert rows["m.inner"]["cum_pct"] == pytest.approx(60.0)

    def test_recursive_frames_count_once_per_stack(self):
        profile = Profile()
        profile.counts[("thread:t", "m.rec", "m.rec", "m.rec")] = 5
        profile.samples = 5
        rows = {r["frame"]: r for r in profile.top(10)}
        assert rows["m.rec"]["cum"] == 5

    def test_table_renders(self):
        profile = Profile()
        profile.counts[("thread:t", "m.f")] = 2
        profile.samples = 2
        profile.duration_s = 0.5
        text = profile.top_table(5)
        assert "m.f" in text
        assert "2 samples" in text
