"""Bench history records and the regression-gate diff logic."""

import json

import pytest

from repro.obs.bench import (
    HISTORY_FORMAT,
    HISTORY_VERSION,
    append_history,
    diff,
    history_record,
    latest_by_bench,
    load_sidecars,
    lower_is_better,
    read_history,
    result_key,
)


def _sidecar(bench="bench_x", rows=None):
    return {
        "benchmark": bench,
        "format": "repro-bench-summary",
        "version": 1,
        "results": rows if rows is not None else [
            {"name": "test_a", "key": "test_a", "params": {},
             "wall_clock_s": 1.0,
             "headline": {"metric": "mean_s", "value": 0.5}},
        ],
    }


def _write_sidecar(path, doc):
    path.write_text(json.dumps(doc))


class TestDirection:
    @pytest.mark.parametrize("metric", ["warm_p50_ms", "mean_s",
                                        "overhead_pct", "delay_us"])
    def test_durations_regress_upward(self, metric):
        assert lower_is_better(metric)

    @pytest.mark.parametrize("metric", ["plans_per_s", "hit_rate",
                                        "vector_speedup", "coalesce_ratio"])
    def test_rates_regress_downward(self, metric):
        assert not lower_is_better(metric)

    def test_unclassified_defaults_to_lower_better(self):
        assert lower_is_better("mystery_metric")


class TestResultKey:
    def test_precomputed_key_wins(self):
        assert result_key({"name": "t", "key": "t[x=1]"}) == "t[x=1]"

    def test_recomputed_from_sorted_params(self):
        row = {"name": "t", "params": {"b": 2, "a": 1}}
        assert result_key(row) == "t[a=1,b=2]"

    def test_no_params_is_just_the_name(self):
        assert result_key({"name": "t", "params": {}}) == "t"


class TestHistoryIO:
    def test_append_wraps_each_sidecar(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        _write_sidecar(results / "bench_x.json", _sidecar("bench_x"))
        _write_sidecar(results / "bench_y.json", _sidecar("bench_y"))
        # Foreign artefacts in the same directory are skipped.
        (results / "serve_load.json").write_text(
            json.dumps({"format": "repro-serve-load", "version": 1}))
        (results / "table.csv").write_text("a,b\n1,2\n")
        out = tmp_path / "history.jsonl"
        assert append_history(results, out, git_sha="abc123",
                              recorded_unix=100.0) == 2
        records = read_history(out)
        assert [r["bench"] for r in records] == ["bench_x", "bench_y"]
        assert all(r["format"] == HISTORY_FORMAT
                   and r["version"] == HISTORY_VERSION
                   and r["git_sha"] == "abc123" for r in records)

    def test_append_is_append_only(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        _write_sidecar(results / "bench_x.json", _sidecar())
        out = tmp_path / "history.jsonl"
        append_history(results, out, git_sha="one", recorded_unix=1.0)
        append_history(results, out, git_sha="two", recorded_unix=2.0)
        records = read_history(out)
        assert len(records) == 2
        latest = latest_by_bench(records)
        assert latest["bench_x"]["git_sha"] == "two"

    def test_read_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="line"):
            read_history(path)
        path.write_text(json.dumps({"format": "wrong"}) + "\n")
        with pytest.raises(ValueError):
            read_history(path)

    def test_record_keys_every_row(self):
        sidecar = _sidecar(rows=[{"name": "t", "params": {"n": 5},
                                  "headline": {"metric": "mean_s",
                                               "value": 1.0}}])
        record = history_record(sidecar, git_sha="sha", recorded_unix=5.0)
        assert record["results"][0]["key"] == "t[n=5]"

    def test_load_sidecars_ignores_unreadable_files(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        _write_sidecar(tmp_path / "bench_x.json", _sidecar())
        assert list(load_sidecars(tmp_path)) == ["bench_x"]


class TestDiff:
    def _pair(self, base_value, current_value, metric="mean_s"):
        baseline = {"bench_x": _sidecar(rows=[
            {"name": "t", "key": "t", "params": {},
             "headline": {"metric": metric, "value": base_value}}])}
        current = {"bench_x": _sidecar(rows=[
            {"name": "t", "key": "t", "params": {},
             "headline": {"metric": metric, "value": current_value}}])}
        return current, baseline

    def test_identical_runs_pass(self):
        current, baseline = self._pair(0.5, 0.5)
        report = diff(current, baseline)
        assert report.ok
        assert len(report.compared) == 1

    def test_doubled_duration_regresses_at_default_threshold(self):
        current, baseline = self._pair(0.5, 1.0)
        report = diff(current, baseline)
        assert not report.ok
        assert report.regressions[0].metric == "mean_s"

    def test_within_threshold_is_noise(self):
        current, baseline = self._pair(0.5, 0.7)
        assert diff(current, baseline).ok

    def test_higher_better_regresses_downward(self):
        current, baseline = self._pair(100.0, 40.0, metric="plans_per_s")
        assert not diff(current, baseline).ok
        # An *increase* of a rate is never a regression.
        current, baseline = self._pair(100.0, 400.0, metric="plans_per_s")
        assert diff(current, baseline).ok

    def test_per_metric_threshold_overrides_default(self):
        current, baseline = self._pair(0.5, 0.7)
        report = diff(current, baseline, per_metric={"mean_s": 1.1})
        assert not report.ok

    def test_new_and_gone_rows_are_reported_not_failed(self):
        baseline = {"bench_x": _sidecar(rows=[
            {"name": "old", "key": "old", "params": {},
             "headline": {"metric": "mean_s", "value": 1.0}}])}
        current = {"bench_x": _sidecar(rows=[
            {"name": "new", "key": "new", "params": {},
             "headline": {"metric": "mean_s", "value": 1.0}}]),
            "bench_new": _sidecar("bench_new")}
        report = diff(current, baseline)
        assert report.ok
        assert "bench_x:new" in report.missing_in_baseline
        assert "bench_new" in report.missing_in_baseline
        assert "bench_x:old" in report.missing_in_current

    def test_zero_baseline_is_infinite_ratio(self):
        current, baseline = self._pair(0.0, 1.0)
        report = diff(current, baseline)
        assert report.compared[0].ratio == float("inf")
        assert not report.ok

    def test_bad_threshold_raises(self):
        current, baseline = self._pair(1.0, 1.0)
        with pytest.raises(ValueError):
            diff(current, baseline, threshold=0.5)
        with pytest.raises(ValueError):
            diff(current, baseline, per_metric={"mean_s": 0.9})

    def test_report_serializes(self):
        current, baseline = self._pair(0.5, 2.0)
        doc = diff(current, baseline).to_dict()
        assert doc["ok"] is False
        assert doc["regressions"] == 1
        json.dumps(doc)  # must be JSON-clean
