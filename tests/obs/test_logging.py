"""Structured logging: formats, configuration, the library contract."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    FORMATS,
    HumanFormatter,
    JsonFormatter,
    LEVELS,
    configure,
    get_logger,
)


@pytest.fixture
def isolated_root():
    """Snapshot and restore the ``repro`` root logger around a test."""
    root = logging.getLogger("repro")
    state = (root.level, list(root.handlers), root.propagate)
    yield root
    root.setLevel(state[0])
    root.handlers[:] = state[1]
    root.propagate = state[2]


class TestGetLogger:
    def test_names_are_namespaced_under_repro(self):
        assert get_logger("service.store").name == "repro.service.store"
        assert get_logger("repro.service.store") is \
            get_logger("service.store")
        assert get_logger("repro").name == "repro"


class TestConfigure:
    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError):
            configure(level="loud")
        with pytest.raises(ValueError):
            configure(format="xml")
        assert set(LEVELS) == {"debug", "info", "warning", "error"}
        assert FORMATS == ("human", "json")

    def test_json_lines_carry_structured_fields(self, isolated_root):
        stream = io.StringIO()
        configure(level="info", format="json", stream=stream)
        get_logger("unit.test").info(
            "task_completed", extra={"digest": "abc123", "attempts": 2})
        doc = json.loads(stream.getvalue())
        assert doc["event"] == "task_completed"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.unit.test"
        assert doc["digest"] == "abc123"
        assert doc["attempts"] == 2
        assert isinstance(doc["ts"], float)

    def test_human_lines_append_key_values(self, isolated_root):
        stream = io.StringIO()
        configure(level="info", format="human", stream=stream)
        get_logger("unit.test").warning(
            "store_corrupt", extra={"entry": "x.json"})
        line = stream.getvalue().strip()
        assert "WARNING" in line
        assert "repro.unit.test: store_corrupt" in line
        assert "entry=x.json" in line

    def test_level_filters(self, isolated_root):
        stream = io.StringIO()
        configure(level="warning", format="human", stream=stream)
        log = get_logger("unit.test")
        log.info("quiet")
        log.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_reconfigure_replaces_the_handler(self, isolated_root):
        first, second = io.StringIO(), io.StringIO()
        configure(level="info", format="human", stream=first)
        configure(level="info", format="human", stream=second)
        get_logger("unit.test").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1


class TestFormatters:
    def _record(self, **extra):
        record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                                   "an_event", (), None)
        for key, value in extra.items():
            setattr(record, key, value)
        return record

    def test_json_formatter_sorts_keys(self):
        out = JsonFormatter().format(self._record(zeta=1, alpha=2))
        doc = json.loads(out)
        keys = list(doc)
        assert keys == sorted(keys)
        assert doc["alpha"] == 2 and doc["zeta"] == 1

    def test_human_formatter_without_extras_is_plain(self):
        line = HumanFormatter().format(self._record())
        assert line.endswith("repro.x: an_event")
