"""The shipped trace validator: schema, parentage, timestamp checks."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parents[2] / "tools"))
try:
    from validate_trace import is_collapsed_profile, validate, validate_lines
    from validate_trace import main as validate_trace_main
finally:
    sys.path.pop(0)


def _span(**overrides):
    span = {"name": "op", "start_s": 1.0, "duration_s": 0.5,
            "trace_id": "t" * 16, "span_id": "a" * 16,
            "parent_id": None, "pid": 42, "attrs": {}}
    span.update(overrides)
    return span


def _lines(*spans):
    return "\n".join(json.dumps(s) for s in spans)


class TestSpanSchema:
    def test_valid_span_passes(self):
        assert validate(_span()) == []

    def test_missing_trace_id_is_flagged(self):
        span = _span()
        del span["trace_id"]
        assert any("trace_id" in p for p in validate(span))

    def test_empty_ids_and_negative_durations_are_flagged(self):
        assert any("trace_id" in p for p in validate(_span(trace_id="")))
        assert any("duration_s" in p
                   for p in validate(_span(duration_s=-0.1)))

    def test_parent_and_pid_may_be_null_but_not_junk(self):
        assert validate(_span(parent_id=None, pid=None)) == []
        assert any("parent_id" in p for p in validate(_span(parent_id=7)))
        assert any("pid" in p for p in validate(_span(pid="42")))


class TestGraphInvariants:
    def test_chain_and_remote_parent_are_valid(self):
        parent = _span(span_id="a" * 16, parent_id="remote" + "0" * 10)
        child = _span(span_id="b" * 16, parent_id="a" * 16, start_s=1.2)
        assert validate_lines(_lines(parent, child)) == []

    def test_parentage_cycle_is_flagged(self):
        a = _span(span_id="a" * 16, parent_id="b" * 16)
        b = _span(span_id="b" * 16, parent_id="a" * 16)
        assert any("cycle" in p for p in validate_lines(_lines(a, b)))

    def test_duplicate_span_ids_are_flagged(self):
        problems = validate_lines(_lines(_span(), _span(start_s=2.0)))
        assert any("more than once" in p for p in problems)

    def test_child_starting_before_its_parent_is_flagged(self):
        parent = _span(span_id="a" * 16, start_s=5.0)
        child = _span(span_id="b" * 16, parent_id="a" * 16, start_s=4.0)
        problems = validate_lines(_lines(parent, child))
        assert any("before its parent" in p for p in problems)

    def test_cross_process_timestamps_are_not_compared(self):
        # perf_counter epochs differ per process: a server span may
        # "start before" its client parent on the raw numbers.
        parent = _span(span_id="a" * 16, start_s=5000.0, pid=1)
        child = _span(span_id="b" * 16, parent_id="a" * 16,
                      start_s=4.0, pid=2)
        assert validate_lines(_lines(parent, child)) == []


class TestLines:
    def test_unparseable_and_blank_lines_are_flagged(self):
        text = json.dumps(_span()) + "\n\n{nope\n"
        problems = validate_lines(text)
        assert any("blank" in p for p in problems)
        assert any("unparseable" in p for p in problems)


class TestProfileSidecars:
    def test_collapsed_profiles_are_recognized(self):
        text = ("thread:MainThread;repro.cli.main;repro.cli._cmd_sweep 42\n"
                "thread:repro-serve-plan;m.f 7\n")
        assert is_collapsed_profile(text)
        assert not is_collapsed_profile(json.dumps(_span()) + "\n")
        assert not is_collapsed_profile("")
        assert not is_collapsed_profile("just some words\nno counts here\n")

    def test_sampling_profiler_output_is_recognized(self):
        from repro.obs.profile import profile_wait

        profile = profile_wait(0.05, hz=50)
        assert is_collapsed_profile(profile.collapsed())

    def test_main_skips_profiles_passed_via_glob(self, tmp_path, capsys):
        # An artefact directory mixes span dumps and profile sidecars;
        # the validator must accept the glob and ignore the profiles.
        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps(_span()) + "\n")
        profile = tmp_path / "sweep.collapsed"
        profile.write_text("thread:MainThread;m.f 3\n")
        assert validate_trace_main([str(trace), str(profile)]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out
        assert "1 spans" in out
