"""The snapshot ring and its reset-aware delta/rate/quantile math."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    HISTORY_FORMAT,
    HISTORY_VERSION,
    SnapshotRing,
    counter_delta,
    counter_total,
    gauge_values,
    histogram_delta,
    histogram_quantile,
    parse_history,
)


def _snapshot(requests=0.0, errors=0.0, observations=()):
    """A real registry snapshot with a counter and a histogram."""
    registry = MetricsRegistry()
    counter = registry.counter("req_total", "requests")
    if requests:
        counter.inc(requests, code="200")
    if errors:
        counter.inc(errors, code="500")
    hist = registry.histogram("lat_seconds", "latency",
                              buckets=(0.1, 1.0)).labels()
    for value in observations:
        hist.observe(value)
    return registry.snapshot()


class TestSnapshotRing:
    def test_capacity_bounds_the_ring(self):
        ring = SnapshotRing(capacity=3, clock=lambda: 1.0)
        for i in range(5):
            ring.append({}, t_unix=float(i))
        assert len(ring) == 3
        assert [s["t_unix"] for s in ring.samples()] == [2.0, 3.0, 4.0]

    def test_doc_declares_format_and_parses_back(self):
        ring = SnapshotRing(capacity=4, clock=lambda: 7.5)
        ring.append(_snapshot(requests=1))
        doc = ring.to_doc(interval_s=5.0)
        assert doc["format"] == HISTORY_FORMAT
        assert doc["version"] == HISTORY_VERSION
        assert doc["capacity"] == 4
        assert doc["interval_s"] == 5.0
        samples = parse_history(doc)
        assert len(samples) == 1
        assert samples[0]["t_unix"] == 7.5

    @pytest.mark.parametrize("capacity", [0, -1, 1.5, True])
    def test_bad_capacity_raises(self, capacity):
        with pytest.raises(ValueError):
            SnapshotRing(capacity=capacity)

    def test_parse_history_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            parse_history({"format": "repro-metrics", "version": 1})
        with pytest.raises(ValueError):
            parse_history({"format": HISTORY_FORMAT, "version": 99,
                           "samples": []})


class TestCounterMath:
    def test_total_and_label_filter(self):
        snap = _snapshot(requests=10, errors=3)
        assert counter_total(snap, "req_total") == 13.0
        assert counter_total(snap, "req_total",
                             where={"code": "500"}) == 3.0
        assert counter_total(snap, "missing_total") == 0.0

    def test_delta_is_per_series(self):
        older = _snapshot(requests=10, errors=3)
        newer = _snapshot(requests=25, errors=4)
        assert counter_delta(older, newer, "req_total") == 16.0
        assert counter_delta(older, newer, "req_total",
                             where={"code": "200"}) == 15.0

    def test_reset_clamps_that_series_only(self):
        older = _snapshot(requests=100, errors=3)
        newer = _snapshot(requests=5, errors=8)  # requests restarted
        # The restarted series reads 0, the live one its real +5.
        assert counter_delta(older, newer, "req_total") == 5.0

    def test_new_series_counts_from_zero(self):
        older = _snapshot(requests=10)
        newer = _snapshot(requests=10, errors=2)
        assert counter_delta(older, newer, "req_total") == 2.0


class TestHistogramMath:
    def test_delta_subtracts_per_bucket(self):
        older = _snapshot(observations=[0.05, 0.5])
        newer = _snapshot(observations=[0.05, 0.5, 0.05, 2.0])
        bounds, deltas, count, total = histogram_delta(
            older, newer, "lat_seconds")
        assert bounds == [0.1, 1.0]
        assert deltas == [1, 0, 1]
        assert count == 2
        assert total == pytest.approx(2.05)

    def test_reset_series_counts_as_fresh(self):
        older = _snapshot(observations=[0.05] * 10)
        newer = _snapshot(observations=[0.5, 2.0])  # restarted
        _bounds, deltas, count, _total = histogram_delta(
            older, newer, "lat_seconds")
        assert deltas == [0, 1, 1]
        assert count == 2

    def test_missing_metric_is_empty(self):
        assert histogram_delta({}, {}, "lat_seconds") == ([], [], 0, 0.0)


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        # 10 observations in (0.1, 1.0]: p50 lands mid-bucket.
        assert histogram_quantile([0.1, 1.0], [0, 10, 0], 0.5) \
            == pytest.approx(0.55)

    def test_first_bucket_interpolates_from_zero(self):
        assert histogram_quantile([0.1, 1.0], [10, 0, 0], 1.0) \
            == pytest.approx(0.1)

    def test_inf_bucket_reports_last_bound(self):
        assert histogram_quantile([0.1, 1.0], [0, 0, 5], 0.99) == 1.0

    def test_empty_returns_none(self):
        assert histogram_quantile([0.1, 1.0], [0, 0, 0], 0.5) is None

    def test_bad_q_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile([0.1], [1, 0], 1.5)


class TestGauges:
    def test_values_by_label_key(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("breaker_open", "breaker state")
        gauge.set(1.0, endpoint="a:1")
        gauge.set(0.0, endpoint="b:2")
        values = gauge_values(registry.snapshot(), "breaker_open")
        assert values[(("endpoint", "a:1"),)] == 1.0
        assert values[(("endpoint", "b:2"),)] == 0.0
