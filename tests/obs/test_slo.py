"""SLO evaluation: objectives, compliance, burn rates — all pure."""

import sys
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO_REPORT_FORMAT,
    SLO_REPORT_VERSION,
    BurnRateTracker,
    Objective,
    default_serve_objectives,
    evaluate,
    good_total,
)

sys.path.insert(0, str(Path(__file__).parents[2] / "tools"))
try:
    from validate_metrics import validate as validate_metrics
    from validate_metrics import validate_slo
finally:
    sys.path.pop(0)


def _snapshot(*, fast=0, slow=0, ok=0, errors=0):
    """A real registry snapshot: *fast* 0.2s and *slow* 2.0s latency
    observations, *ok* 200s and *errors* 503s."""
    reg = MetricsRegistry()
    hist = reg.histogram("repro_serve_request_seconds", "latency",
                         buckets=(0.5, 1.0, 2.5))
    for _ in range(fast):
        hist.labels(endpoint="/plan").observe(0.2)
    for _ in range(slow):
        hist.labels(endpoint="/plan").observe(2.0)
    counter = reg.counter("repro_serve_requests_total", "requests")
    for _ in range(ok):
        counter.labels(code="200").inc()
    for _ in range(errors):
        counter.labels(code="503").inc()
    return reg.snapshot()


class TestObjective:
    def test_rejects_unknown_kind_and_bad_target(self):
        with pytest.raises(ValueError, match="kind"):
            Objective(name="x", kind="throughput", metric="m", target=0.9)
        with pytest.raises(ValueError, match="target"):
            Objective(name="x", kind="availability", metric="m", target=1.0)

    def test_latency_requires_a_positive_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            Objective(name="x", kind="latency", metric="m", target=0.9)

    def test_dict_round_trip(self):
        obj = Objective(name="lat", kind="latency", metric="m", target=0.95,
                        threshold_s=0.5)
        assert Objective.from_dict(obj.to_dict()) == obj
        avail = Objective(name="ok", kind="availability", metric="c",
                          target=0.999, code_label="status")
        assert Objective.from_dict(avail.to_dict()) == avail

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown objective field"):
            Objective.from_dict({"name": "x", "kind": "availability",
                                 "metric": "m", "target": 0.9,
                                 "window": 60})


class TestGoodTotal:
    def test_latency_counts_at_the_threshold_bucket(self):
        snap = _snapshot(fast=90, slow=10)
        obj = Objective(name="lat", kind="latency",
                        metric="repro_serve_request_seconds",
                        target=0.99, threshold_s=1.0)
        assert good_total(obj, snap) == (90.0, 100.0)

    def test_availability_classifies_5xx_as_bad(self):
        snap = _snapshot(ok=95, errors=5)
        obj = Objective(name="ok", kind="availability",
                        metric="repro_serve_requests_total", target=0.999)
        assert good_total(obj, snap) == (95.0, 100.0)

    def test_absent_metric_counts_nothing(self):
        obj = Objective(name="ok", kind="availability",
                        metric="nope_total", target=0.9)
        assert good_total(obj, _snapshot()) == (0.0, 0.0)


class TestEvaluate:
    def test_burned_objectives_flip_ok_and_report_burn(self):
        snap = _snapshot(fast=90, slow=10, ok=95, errors=5)
        report = evaluate(default_serve_objectives(), snap)
        assert report["format"] == SLO_REPORT_FORMAT
        assert report["version"] == SLO_REPORT_VERSION
        assert report["ok"] is False
        by_name = {r["objective"]["name"]: r for r in report["objectives"]}
        latency = by_name["serve-latency"]
        assert latency["compliance"] == pytest.approx(0.9)
        # 10% bad against a 1% budget: burning 10x too fast.
        assert latency["budget_burn"] == pytest.approx(10.0)
        availability = by_name["serve-availability"]
        assert availability["compliance"] == pytest.approx(0.95)
        assert availability["ok"] is False

    def test_empty_service_has_violated_nothing(self):
        report = evaluate(default_serve_objectives(), _snapshot())
        assert report["ok"] is True
        for entry in report["objectives"]:
            assert entry["compliance"] == 1.0
            assert entry["budget_burn"] == 0.0

    def test_report_passes_the_shipped_validator(self):
        snap = _snapshot(fast=99, slow=1, ok=100)
        assert validate_slo(evaluate(default_serve_objectives(), snap)) == []

    def test_burn_rates_fold_into_the_report(self):
        obj = default_serve_objectives()[1]
        report = evaluate([obj], _snapshot(ok=10),
                          burn_rates={obj.name: {"60s": 2.5}})
        assert report["objectives"][0]["burn_rates"] == {"60s": 2.5}


class TestBurnRateTracker:
    def test_needs_two_samples_per_window(self):
        obj = default_serve_objectives()[1]
        tracker = BurnRateTracker([obj], windows_s=(60.0,),
                                  clock=lambda: 0.0)
        assert tracker.burn_rates() == {obj.name: {"60s": None}}
        tracker.sample(_snapshot(ok=10))
        assert tracker.burn_rates() == {obj.name: {"60s": None}}

    def test_rolling_burn_from_deltas(self):
        obj = Objective(name="ok", kind="availability",
                        metric="repro_serve_requests_total", target=0.99)
        now = [0.0]
        tracker = BurnRateTracker([obj], windows_s=(60.0, 600.0),
                                  clock=lambda: now[0])
        tracker.sample(_snapshot(ok=100))           # t=0: all good
        now[0] = 90.0
        tracker.sample(_snapshot(ok=150, errors=50))  # t=90: 50 bad / 100
        rates = tracker.burn_rates()[obj.name]
        # The 60s window holds only the newest sample -> no delta.
        assert rates["60s"] is None
        # Over 600s: 50 bad of 100 new events against a 1% budget.
        assert rates["600s"] == pytest.approx(50.0)

    def test_no_new_events_reports_none(self):
        obj = default_serve_objectives()[1]
        now = [0.0]
        tracker = BurnRateTracker([obj], windows_s=(60.0,),
                                  clock=lambda: now[0])
        tracker.sample(_snapshot(ok=10))
        now[0] = 10.0
        tracker.sample(_snapshot(ok=10))
        assert tracker.burn_rates()[obj.name]["60s"] is None

    def test_counter_reset_never_reports_negative_burn(self):
        # A supervised restart re-reports counters from zero, so a
        # later sample's totals go *down*; every negative delta must
        # clamp to zero and never surface as a negative burn.
        obj = Objective(name="ok", kind="availability",
                        metric="repro_serve_requests_total", target=0.99)
        reg = MetricsRegistry()
        now = [0.0]
        tracker = BurnRateTracker([obj], windows_s=(600.0,),
                                  clock=lambda: now[0], registry=reg)
        tracker.sample(_snapshot(ok=100, errors=50))  # before the crash
        now[0] = 30.0
        tracker.sample(_snapshot(ok=5))               # restarted: 5 < 150
        rates = tracker.burn_rates()[obj.name]
        # Total went down: no window delta, never a negative burn.
        assert rates["600s"] is None
        now[0] = 60.0
        tracker.sample(_snapshot(ok=40, errors=1))
        rates = tracker.burn_rates()[obj.name]
        assert rates["600s"] is not None
        assert rates["600s"] >= 0.0

    def test_counter_reset_is_counted_per_objective(self):
        obj = default_serve_objectives()[1]
        reg = MetricsRegistry()
        now = [0.0]
        tracker = BurnRateTracker([obj], windows_s=(60.0,),
                                  clock=lambda: now[0], registry=reg)
        tracker.sample(_snapshot(ok=100))
        now[0] = 10.0
        tracker.sample(_snapshot(ok=3))  # restart
        now[0] = 20.0
        tracker.sample(_snapshot(ok=50))  # normal growth: no new reset
        counter = reg.get("repro_slo_counter_resets")
        assert counter is not None
        assert counter.value(objective=obj.name) == 1.0


class TestExemplars:
    def test_exemplars_capture_the_worst_recent_observation(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", "latency", buckets=(0.5, 1.0),
                             exemplars=True)
        series = hist.labels(endpoint="/plan")
        series.observe(0.2, trace_id="aaaa")
        series.observe(0.4, trace_id="bbbb")  # worse in the same bucket
        series.observe(0.3, trace_id="cccc")  # not worse: kept out
        series.observe(2.0, trace_id="dddd")  # +Inf bucket
        snap = reg.snapshot()
        entry = snap["histograms"]["h_seconds"]["series"][0]
        assert entry["exemplars"][0] == {"value": 0.4, "trace_id": "bbbb"}
        assert entry["exemplars"][1] is None
        assert entry["exemplars"][2] == {"value": 2.0, "trace_id": "dddd"}
        # The extended snapshot still passes the shipped validator.
        assert validate_metrics(snap) == []

    def test_merge_keeps_the_worse_exemplar(self):
        def build(value, trace_id):
            reg = MetricsRegistry()
            hist = reg.histogram("h_seconds", "x", buckets=(1.0,),
                                 exemplars=True)
            hist.labels().observe(value, trace_id=trace_id)
            return reg

        target = build(0.2, "aaaa")
        target.merge(build(0.7, "bbbb").snapshot())
        entry = target.snapshot()["histograms"]["h_seconds"]["series"][0]
        assert entry["exemplars"][0] == {"value": 0.7, "trace_id": "bbbb"}

    def test_validator_flags_malformed_exemplars(self):
        snap = _snapshot(fast=1)
        entry = snap["histograms"]["repro_serve_request_seconds"]["series"][0]
        entry["exemplars"] = [{"value": "slow", "trace_id": 7}]
        problems = validate_metrics(snap)
        assert any("exemplars" in p for p in problems)
